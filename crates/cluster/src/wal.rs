//! Write-ahead log for the KV tier (the durability half of §III-E's
//! "data partitions stored on disk").
//!
//! Every successful mutation of a [`crate::KvStore`] running in
//! [`crate::kvstore::Durability::Wal`] mode appends one logical operation
//! to the log before the mutation is acknowledged. A log is a sequence of
//! framed records:
//!
//! ```text
//! [u32 len LE][u32 crc32 LE][payload]
//! payload: u8 op_tag, u32 key_len, key bytes, then per op:
//!   0 = SET:         u32 val_len, value bytes
//!   1 = RPUSH:       u32 val_len, value bytes
//!   2 = INCR:        (nothing)
//!   3 = SETCOUNTER:  i64 LE
//!   4 = DEL:         (nothing)
//! ```
//!
//! The CRC32 (IEEE polynomial, the zlib/Ethernet one) covers the payload
//! only; the length prefix lets replay skip to the next frame and detect a
//! *torn tail* — an incomplete final record from a crash mid-write — which
//! is tolerated and reported, while a checksum mismatch on a *complete*
//! record is hard corruption and fails the replay. Segments rotate once
//! the active segment exceeds a size threshold; [`Wal::truncate`] (called
//! by checkpoint compaction) drops all of them at once.
//!
//! Replay is deterministic: the same byte stream always yields the same
//! operation sequence, so `recover(snapshot, wal)` reproduces a
//! bit-identical store (see `tests/tests/durability.rs`).

use bytes::Bytes;

/// Labels for the five loggable operations, indexed by wire tag. Shared
/// by [`WalStats`] and the `pareto_wal_records_total{op}` counter.
pub const WAL_OP_LABELS: [&str; 5] = ["set", "rpush", "incr", "set_counter", "del"];

/// Default segment-rotation threshold (bytes of framed records).
pub const DEFAULT_SEGMENT_BYTES: usize = 64 * 1024;

/// One logical, replayable store mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// `SET key value`.
    Set {
        /// Target key.
        key: String,
        /// The byte value written.
        value: Bytes,
    },
    /// `RPUSH key value`.
    RPush {
        /// Target key.
        key: String,
        /// The appended element.
        value: Bytes,
    },
    /// `INCR key` (the barrier primitive).
    Incr {
        /// Target key.
        key: String,
    },
    /// Absolute counter write (snapshot-restore path).
    SetCounter {
        /// Target key.
        key: String,
        /// The value assigned.
        value: i64,
    },
    /// `DEL key` (logged only when the key existed).
    Del {
        /// Target key.
        key: String,
    },
}

impl WalOp {
    /// Wire tag (index into [`WAL_OP_LABELS`]).
    fn tag(&self) -> u8 {
        match self {
            WalOp::Set { .. } => 0,
            WalOp::RPush { .. } => 1,
            WalOp::Incr { .. } => 2,
            WalOp::SetCounter { .. } => 3,
            WalOp::Del { .. } => 4,
        }
    }

    /// Human/metric label for this operation kind.
    pub fn label(&self) -> &'static str {
        WAL_OP_LABELS[self.tag() as usize]
    }

    /// Encode the record payload (everything the CRC covers).
    fn encode_payload(&self) -> Vec<u8> {
        let (key, extra) = match self {
            WalOp::Set { key, value } | WalOp::RPush { key, value } => (key, 4 + value.len()),
            WalOp::SetCounter { key, .. } => (key, 8),
            WalOp::Incr { key } | WalOp::Del { key } => (key, 0),
        };
        let mut out = Vec::with_capacity(1 + 4 + key.len() + extra);
        out.push(self.tag());
        out.extend_from_slice(&(key.len() as u32).to_le_bytes());
        out.extend_from_slice(key.as_bytes());
        match self {
            WalOp::Set { value, .. } | WalOp::RPush { value, .. } => {
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                out.extend_from_slice(value);
            }
            WalOp::SetCounter { value, .. } => out.extend_from_slice(&value.to_le_bytes()),
            WalOp::Incr { .. } | WalOp::Del { .. } => {}
        }
        out
    }

    /// Decode a record payload; `record` is the record's ordinal for
    /// error reporting.
    fn decode_payload(payload: &[u8], record: u64) -> Result<WalOp, WalError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], WalError> {
            if *pos + n > payload.len() {
                return Err(WalError::TruncatedPayload { record });
            }
            let s = &payload[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let tag = take(&mut pos, 1)?[0];
        let key_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        let key = String::from_utf8(take(&mut pos, key_len)?.to_vec())
            .map_err(|_| WalError::BadKey { record })?;
        let op = match tag {
            0 | 1 => {
                let len =
                    u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
                let value = Bytes::copy_from_slice(take(&mut pos, len)?);
                if tag == 0 {
                    WalOp::Set { key, value }
                } else {
                    WalOp::RPush { key, value }
                }
            }
            2 => WalOp::Incr { key },
            3 => {
                let value = i64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
                WalOp::SetCounter { key, value }
            }
            4 => WalOp::Del { key },
            other => return Err(WalError::BadTag { record, tag: other }),
        };
        if pos != payload.len() {
            return Err(WalError::TruncatedPayload { record });
        }
        Ok(op)
    }
}

/// Errors from WAL replay. A torn *tail* is not an error (see
/// [`WalReplay::torn_tail_bytes`]); these are hard corruption inside
/// complete records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// A complete record's checksum does not match its payload.
    ChecksumMismatch {
        /// Ordinal of the bad record (0-based).
        record: u64,
        /// CRC32 stored in the frame.
        stored: u32,
        /// CRC32 computed over the payload.
        computed: u32,
    },
    /// Unknown operation tag inside a checksum-valid record.
    BadTag {
        /// Ordinal of the bad record.
        record: u64,
        /// The unknown tag byte.
        tag: u8,
    },
    /// Payload shorter/longer than its operation's encoding demands.
    TruncatedPayload {
        /// Ordinal of the bad record.
        record: u64,
    },
    /// Record key is not UTF-8.
    BadKey {
        /// Ordinal of the bad record.
        record: u64,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::ChecksumMismatch {
                record,
                stored,
                computed,
            } => write!(
                f,
                "wal record {record}: checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            WalError::BadTag { record, tag } => {
                write!(f, "wal record {record}: unknown op tag {tag}")
            }
            WalError::TruncatedPayload { record } => {
                write!(f, "wal record {record}: payload truncated or oversized")
            }
            WalError::BadKey { record } => write!(f, "wal record {record}: non-utf8 key"),
        }
    }
}

impl std::error::Error for WalError {}

/// CRC32 (IEEE reflected polynomial 0xEDB88320), table-driven. This is
/// the zlib `crc32` — test vector `crc32(b"123456789") == 0xCBF43926`.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Observational WAL statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Records appended since the last truncate.
    pub records: u64,
    /// Framed bytes held (all segments).
    pub bytes: usize,
    /// Sealed segments plus the active one (when non-empty).
    pub segments: usize,
    /// Records per operation kind, in [`WAL_OP_LABELS`] order.
    pub records_by_op: [u64; 5],
}

impl WalStats {
    /// `(label, count)` pairs for the non-zero operation kinds.
    pub fn by_op(&self) -> Vec<(&'static str, u64)> {
        WAL_OP_LABELS
            .iter()
            .zip(self.records_by_op.iter())
            .filter(|(_, &n)| n > 0)
            .map(|(&l, &n)| (l, n))
            .collect()
    }
}

/// An in-memory write-ahead log with segment rotation.
///
/// The log models the durable byte stream a real deployment would fsync;
/// keeping it in memory preserves the repo's deterministic-simulation
/// discipline while exercising the exact byte format a disk WAL would
/// use.
#[derive(Debug, Clone, Default)]
pub struct Wal {
    sealed: Vec<Vec<u8>>,
    active: Vec<u8>,
    segment_bytes: usize,
    stats: WalStats,
}

impl Wal {
    /// An empty log with the default segment-rotation threshold.
    pub fn new() -> Self {
        Wal {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            ..Wal::default()
        }
    }

    /// An empty log rotating segments once the active one reaches
    /// `segment_bytes` (floored to 1).
    pub fn with_segment_bytes(segment_bytes: usize) -> Self {
        Wal {
            segment_bytes: segment_bytes.max(1),
            ..Wal::default()
        }
    }

    /// Append one operation; returns the framed record length in bytes.
    pub fn append(&mut self, op: &WalOp) -> usize {
        let payload = op.encode_payload();
        let frame_len = 8 + payload.len();
        self.active.reserve(frame_len);
        self.active
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.active.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.active.extend_from_slice(&payload);
        self.stats.records += 1;
        self.stats.bytes += frame_len;
        self.stats.records_by_op[op.tag() as usize] += 1;
        if self.active.len() >= self.segment_bytes.max(1) {
            self.sealed.push(std::mem::take(&mut self.active));
        }
        self.stats.segments = self.sealed.len() + usize::from(!self.active.is_empty());
        frame_len
    }

    /// The full durable byte stream (sealed segments then the active one,
    /// concatenated — segment boundaries are bookkeeping, not framing).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.stats.bytes);
        for seg in &self.sealed {
            out.extend_from_slice(seg);
        }
        out.extend_from_slice(&self.active);
        out
    }

    /// Drop every record (checkpoint compaction: the snapshot now carries
    /// the state).
    pub fn truncate(&mut self) {
        self.sealed.clear();
        self.active.clear();
        self.stats = WalStats::default();
    }

    /// Current statistics.
    pub fn stats(&self) -> &WalStats {
        &self.stats
    }

    /// Records appended since the last truncate.
    pub fn records(&self) -> u64 {
        self.stats.records
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.stats.records == 0
    }
}

/// Outcome of replaying a WAL byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReplay {
    /// The decoded operations, in append order.
    pub ops: Vec<WalOp>,
    /// Byte offset just past each complete record (record boundaries;
    /// `boundaries[i]` ends record `i`). Used by torn-write drills.
    pub boundaries: Vec<usize>,
    /// Bytes of an incomplete trailing record (a torn write), tolerated
    /// and discarded. 0 for a cleanly closed log.
    pub torn_tail_bytes: usize,
}

/// Replay a WAL byte stream, verifying every record's checksum. An
/// incomplete trailing record is tolerated (reported via
/// [`WalReplay::torn_tail_bytes`]); corruption inside complete records is
/// a [`WalError`].
pub fn replay_bytes(data: &[u8]) -> Result<WalReplay, WalError> {
    replay_with_options(data, true)
}

/// [`replay_bytes`] with checksum verification optionally disabled — the
/// chaos harness's deliberately-broken recovery path, used to prove the
/// auditor catches silent divergence. Never use for real recovery.
pub fn replay_with_options(data: &[u8], verify_checksums: bool) -> Result<WalReplay, WalError> {
    let mut ops = Vec::new();
    let mut boundaries = Vec::new();
    let mut pos = 0usize;
    let mut record = 0u64;
    while pos < data.len() {
        if pos + 8 > data.len() {
            break; // torn frame header
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let stored = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if pos + 8 + len > data.len() {
            break; // torn payload
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if verify_checksums {
            let computed = crc32(payload);
            if computed != stored {
                return Err(WalError::ChecksumMismatch {
                    record,
                    stored,
                    computed,
                });
            }
        }
        match WalOp::decode_payload(payload, record) {
            Ok(op) => ops.push(op),
            // With verification off, a payload mangled beyond decoding is
            // skipped silently — that is the point of the broken path.
            Err(e) if verify_checksums => return Err(e),
            Err(_) => {}
        }
        pos += 8 + len;
        boundaries.push(pos);
        record += 1;
    }
    Ok(WalReplay {
        ops,
        boundaries,
        torn_tail_bytes: data.len() - pos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Set {
                key: "partition:data".into(),
                value: Bytes::from_static(b"blob"),
            },
            WalOp::RPush {
                key: "records".into(),
                value: Bytes::from_static(b""),
            },
            WalOp::Incr {
                key: "barrier".into(),
            },
            WalOp::SetCounter {
                key: "epoch".into(),
                value: -7,
            },
            WalOp::Del { key: "tmp".into() },
        ]
    }

    #[test]
    fn crc32_matches_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_replay_roundtrip() {
        let mut wal = Wal::new();
        for op in &sample_ops() {
            wal.append(op);
        }
        assert_eq!(wal.records(), 5);
        let replay = replay_bytes(&wal.to_bytes()).unwrap();
        assert_eq!(replay.ops, sample_ops());
        assert_eq!(replay.torn_tail_bytes, 0);
        assert_eq!(replay.boundaries.len(), 5);
        assert_eq!(*replay.boundaries.last().unwrap(), wal.to_bytes().len());
    }

    #[test]
    fn torn_tail_is_tolerated_at_every_cut() {
        let mut wal = Wal::new();
        let ops = sample_ops();
        for op in &ops {
            wal.append(op);
        }
        let bytes = wal.to_bytes();
        let full = replay_bytes(&bytes).unwrap();
        let last_start = full.boundaries[full.boundaries.len() - 2];
        // Cut the final record at every possible byte offset: the first
        // four records always survive, the torn fifth is discarded.
        for cut in last_start..bytes.len() {
            let replay = replay_bytes(&bytes[..cut]).unwrap();
            assert_eq!(replay.ops, ops[..4], "cut at {cut}");
            assert_eq!(replay.torn_tail_bytes, cut - last_start);
        }
    }

    #[test]
    fn bit_flip_in_complete_record_is_hard_error() {
        let mut wal = Wal::new();
        for op in &sample_ops() {
            wal.append(op);
        }
        let mut bytes = wal.to_bytes();
        // Flip one payload byte of the first record (frame header is 8).
        bytes[9] ^= 0x40;
        let err = replay_bytes(&bytes).unwrap_err();
        assert!(matches!(err, WalError::ChecksumMismatch { record: 0, .. }), "{err}");
        // The broken path used by chaos `--inject-corruption` accepts it.
        assert!(replay_with_options(&bytes, false).is_ok());
    }

    #[test]
    fn unknown_tag_rejected() {
        let payload = {
            let mut p = vec![9u8]; // bad tag
            p.extend_from_slice(&1u32.to_le_bytes());
            p.push(b'k');
            p
        };
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        assert!(matches!(
            replay_bytes(&frame),
            Err(WalError::BadTag { record: 0, tag: 9 })
        ));
    }

    #[test]
    fn segments_rotate_and_truncate_drops_everything() {
        let mut wal = Wal::with_segment_bytes(32);
        for i in 0..10 {
            wal.append(&WalOp::Incr {
                key: format!("ctr{i}"),
            });
        }
        assert!(wal.stats().segments > 1, "{:?}", wal.stats());
        let replay = replay_bytes(&wal.to_bytes()).unwrap();
        assert_eq!(replay.ops.len(), 10, "rotation must not lose records");
        wal.truncate();
        assert!(wal.is_empty());
        assert!(wal.to_bytes().is_empty());
        assert_eq!(wal.stats(), &WalStats::default());
    }

    #[test]
    fn stats_count_by_op() {
        let mut wal = Wal::new();
        for op in &sample_ops() {
            wal.append(op);
        }
        wal.append(&WalOp::Incr { key: "b".into() });
        let by_op = wal.stats().by_op();
        assert_eq!(
            by_op,
            vec![("set", 1), ("rpush", 1), ("incr", 2), ("set_counter", 1), ("del", 1)]
        );
    }
}
