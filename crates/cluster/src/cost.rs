//! Abstract work accounting.
//!
//! Every operation in the workloads and the KV store reports its work as a
//! [`Cost`]; a node (speed factor) plus a [`NetworkModel`] convert the cost
//! into simulated seconds. Keeping cost integral makes runs bit-for-bit
//! reproducible.

use crate::network::NetworkModel;

/// Exact abstract work performed by some operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// CPU work in abstract operations (e.g. candidate checks, byte
    /// comparisons). Scaled by node speed.
    pub compute_ops: u64,
    /// Bytes moved over the network (store payloads).
    pub bytes: u64,
    /// Store round trips (before pipelining amortization these dominate —
    /// exactly why the paper batches requests, §IV).
    pub round_trips: u64,
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost {
        compute_ops: 0,
        bytes: 0,
        round_trips: 0,
    };

    /// Pure compute work.
    pub fn compute(ops: u64) -> Cost {
        Cost {
            compute_ops: ops,
            ..Cost::ZERO
        }
    }

    /// One network request carrying `bytes`.
    pub fn request(bytes: u64) -> Cost {
        Cost {
            compute_ops: 0,
            bytes,
            round_trips: 1,
        }
    }

    /// Saturating element-wise sum.
    pub fn add(&mut self, other: Cost) {
        self.compute_ops = self.compute_ops.saturating_add(other.compute_ops);
        self.bytes = self.bytes.saturating_add(other.bytes);
        self.round_trips = self.round_trips.saturating_add(other.round_trips);
    }

    /// `self + other`.
    #[must_use]
    pub fn plus(mut self, other: Cost) -> Cost {
        self.add(other);
        self
    }

    /// Convert to simulated seconds on a node with the given `speed`
    /// factor (1.0 = fastest class) and compute rate, under a network
    /// model. Compute is scaled by speed; network is not (the busy loops
    /// of §V-A steal CPU, not NIC bandwidth).
    pub fn seconds(&self, speed: f64, base_ops_per_sec: f64, net: &NetworkModel) -> f64 {
        assert!(speed > 0.0 && base_ops_per_sec > 0.0, "invalid node rates");
        let compute = self.compute_ops as f64 / (base_ops_per_sec * speed);
        compute + net.transfer_seconds(self.bytes, self.round_trips)
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        self.plus(rhs)
    }
}

impl std::iter::Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Cost::plus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation() {
        let mut c = Cost::compute(10);
        c.add(Cost::request(100));
        c.add(Cost::request(50));
        assert_eq!(c.compute_ops, 10);
        assert_eq!(c.bytes, 150);
        assert_eq!(c.round_trips, 2);
    }

    #[test]
    fn sum_iterator() {
        let total: Cost = [Cost::compute(1), Cost::compute(2), Cost::request(8)]
            .into_iter()
            .sum();
        assert_eq!(total.compute_ops, 3);
        assert_eq!(total.round_trips, 1);
    }

    #[test]
    fn seconds_scale_with_speed() {
        let net = NetworkModel::default();
        let c = Cost::compute(1_000_000);
        let fast = c.seconds(1.0, 1e6, &net);
        let slow = c.seconds(0.25, 1e6, &net);
        assert!((fast - 1.0).abs() < 1e-9);
        assert!((slow - 4.0).abs() < 1e-9);
    }

    #[test]
    fn network_not_scaled_by_speed() {
        let net = NetworkModel::new(100e-6, 1e9).unwrap();
        let c = Cost::request(0);
        assert_eq!(c.seconds(1.0, 1e6, &net), c.seconds(0.25, 1e6, &net));
    }

    #[test]
    fn saturating_add() {
        let mut c = Cost::compute(u64::MAX);
        c.add(Cost::compute(10));
        assert_eq!(c.compute_ops, u64::MAX);
    }
}
