//! Seeded, deterministic fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] is a schedule of adverse events against individual
//! nodes: crashes at a simulated time, straggler slowdown factors,
//! transient KV-store errors during partition fetch, and network
//! degradation windows. Plans are plain data — the executor queries them
//! (`crash_time`, `straggler_factor`, …) while advancing simulated time,
//! so the same plan replayed against the same job is bit-reproducible
//! regardless of host scheduling or thread count.
//!
//! Plans come from three places:
//! - explicit builders (`with_crash`, …) for tests and claims gates,
//! - [`FaultPlan::parse`] for the CLI `--faults` spec string,
//! - [`FaultPlan::generate`], which derives every event from
//!   `(seed, node_id, event_index)` through a SplitMix64-style mixer, so a
//!   single integer seed names an entire fault scenario.

use crate::error::ClusterError;
use crate::network::NetworkModel;

/// One kind of injected adversity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node halts at simulated time `at_s`; in-flight work is lost.
    Crash {
        /// Simulated seconds after job start.
        at_s: f64,
    },
    /// Everything on the node takes `factor`× longer (CPU contention,
    /// thermal throttling, a solar dip forcing DVFS — the cause is
    /// abstracted away).
    Straggler {
        /// Slowdown multiplier, `>= 1`.
        factor: f64,
    },
    /// The node's first `count` KV-store operations during partition
    /// fetch fail transiently and must be retried.
    StoreErrors {
        /// Number of consecutive transient failures.
        count: u32,
    },
    /// Between `from_s` and `until_s`, the node's links run at
    /// `latency × factor` and `bandwidth ÷ factor`.
    NetworkDegradation {
        /// Window start (simulated seconds).
        from_s: f64,
        /// Window end (simulated seconds).
        until_s: f64,
        /// Degradation severity, `>= 1`.
        factor: f64,
    },
}

/// A fault bound to a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Target node.
    pub node_id: usize,
    /// What happens to it.
    pub kind: FaultKind,
}

/// Probabilities and ranges for seeded plan generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Per-node crash probability.
    pub crash_prob: f64,
    /// Crash times are drawn uniformly from this window (seconds).
    pub crash_window_s: (f64, f64),
    /// Per-node straggler probability.
    pub straggler_prob: f64,
    /// Straggler factors are drawn uniformly from `[1, max_factor]`.
    pub straggler_max_factor: f64,
    /// Per-node probability of transient store errors.
    pub store_error_prob: f64,
    /// Error counts are drawn uniformly from `[1, max]`.
    pub store_error_max: u32,
    /// Per-node probability of a network degradation window.
    pub degradation_prob: f64,
    /// Degradation windows start uniformly in the crash window and last
    /// this long (seconds).
    pub degradation_len_s: f64,
    /// Degradation severity factor.
    pub degradation_factor: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            crash_prob: 0.15,
            crash_window_s: (10.0, 200.0),
            straggler_prob: 0.25,
            straggler_max_factor: 4.0,
            store_error_prob: 0.25,
            store_error_max: 3,
            degradation_prob: 0.25,
            degradation_len_s: 60.0,
            degradation_factor: 8.0,
        }
    }
}

/// A deterministic schedule of faults for one job.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// SplitMix64 finalizer: one bijective avalanche round.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from `(seed, node_id, event_index)`.
fn unit_draw(seed: u64, node_id: usize, event_index: u64) -> f64 {
    let h = mix64(mix64(seed ^ mix64(node_id as u64)) ^ event_index);
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// An empty plan (the fault-free baseline).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Empty plan, ready for the `with_*` builders.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule a crash of `node_id` at simulated time `at_s`.
    pub fn with_crash(mut self, node_id: usize, at_s: f64) -> Self {
        self.events.push(FaultEvent {
            node_id,
            kind: FaultKind::Crash { at_s: at_s.max(0.0) },
        });
        self
    }

    /// Make `node_id` a straggler: all its work takes `factor`× longer.
    pub fn with_straggler(mut self, node_id: usize, factor: f64) -> Self {
        self.events.push(FaultEvent {
            node_id,
            kind: FaultKind::Straggler {
                factor: factor.max(1.0),
            },
        });
        self
    }

    /// Inject `count` transient KV errors into `node_id`'s partition fetch.
    pub fn with_store_errors(mut self, node_id: usize, count: u32) -> Self {
        self.events.push(FaultEvent {
            node_id,
            kind: FaultKind::StoreErrors { count },
        });
        self
    }

    /// Degrade `node_id`'s network by `factor` during `[from_s, until_s]`.
    pub fn with_network_degradation(
        mut self,
        node_id: usize,
        from_s: f64,
        until_s: f64,
        factor: f64,
    ) -> Self {
        self.events.push(FaultEvent {
            node_id,
            kind: FaultKind::NetworkDegradation {
                from_s: from_s.max(0.0),
                until_s: until_s.max(from_s.max(0.0)),
                factor: factor.max(1.0),
            },
        });
        self
    }

    /// All scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Earliest crash time scheduled for `node_id`, if any.
    pub fn crash_time(&self, node_id: usize) -> Option<f64> {
        self.events
            .iter()
            .filter(|e| e.node_id == node_id)
            .filter_map(|e| match e.kind {
                FaultKind::Crash { at_s } => Some(at_s),
                _ => None,
            })
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }

    /// Combined slowdown factor for `node_id` (product of its straggler
    /// events; `1.0` when healthy).
    pub fn straggler_factor(&self, node_id: usize) -> f64 {
        self.events
            .iter()
            .filter(|e| e.node_id == node_id)
            .filter_map(|e| match e.kind {
                FaultKind::Straggler { factor } => Some(factor),
                _ => None,
            })
            .product::<f64>()
            .max(1.0)
    }

    /// Total transient store errors `node_id` will hit during fetch.
    pub fn store_error_count(&self, node_id: usize) -> u32 {
        self.events
            .iter()
            .filter(|e| e.node_id == node_id)
            .map(|e| match e.kind {
                FaultKind::StoreErrors { count } => count,
                _ => 0,
            })
            .sum()
    }

    /// The network `node_id` sees at simulated time `t`: `base` with every
    /// active degradation window applied (latency multiplied, bandwidth
    /// divided).
    pub fn network_at(&self, node_id: usize, t: f64, base: &NetworkModel) -> NetworkModel {
        let mut net = *base;
        for e in self.events.iter().filter(|e| e.node_id == node_id) {
            if let FaultKind::NetworkDegradation {
                from_s,
                until_s,
                factor,
            } = e.kind
            {
                if t >= from_s && t < until_s {
                    net = net.degraded(factor);
                }
            }
        }
        net
    }

    /// Derive a plan from a single seed: each node draws each event kind
    /// independently through `(seed, node_id, event_index)`, so plans for
    /// different cluster sizes share the per-node outcomes of their common
    /// prefix and two runs with the same seed are identical everywhere.
    pub fn generate(seed: u64, num_nodes: usize, spec: &FaultSpec) -> Self {
        let mut plan = FaultPlan::new();
        for node in 0..num_nodes {
            if unit_draw(seed, node, 0) < spec.crash_prob {
                let (lo, hi) = spec.crash_window_s;
                let at = lo + unit_draw(seed, node, 1) * (hi - lo).max(0.0);
                plan = plan.with_crash(node, at);
            }
            if unit_draw(seed, node, 2) < spec.straggler_prob {
                let f = 1.0 + unit_draw(seed, node, 3) * (spec.straggler_max_factor - 1.0).max(0.0);
                plan = plan.with_straggler(node, f);
            }
            if unit_draw(seed, node, 4) < spec.store_error_prob {
                let count = 1 + (unit_draw(seed, node, 5) * spec.store_error_max.max(1) as f64)
                    as u32;
                plan = plan.with_store_errors(node, count.min(spec.store_error_max.max(1)));
            }
            if unit_draw(seed, node, 6) < spec.degradation_prob {
                let (lo, hi) = spec.crash_window_s;
                let from = lo + unit_draw(seed, node, 7) * (hi - lo).max(0.0);
                plan = plan.with_network_degradation(
                    node,
                    from,
                    from + spec.degradation_len_s,
                    spec.degradation_factor,
                );
            }
        }
        plan
    }

    /// Parse a CLI fault spec: comma-separated clauses, each one of
    ///
    /// ```text
    /// crash:NODE@T          crash NODE at T seconds
    /// slow:NODE@FACTOR      NODE runs FACTOR x slower
    /// kv:NODE@COUNT         COUNT transient store errors on NODE's fetch
    /// net:NODE@FROM-TO@F    degrade NODE's links by F in [FROM, TO]
    /// seeded:SEED           generate a whole plan from SEED
    /// ```
    ///
    /// Node indices must be `< num_nodes`.
    pub fn parse(spec: &str, num_nodes: usize) -> Result<Self, ClusterError> {
        let bad = |msg: String| ClusterError::BadFaultSpec(msg);
        let mut plan = FaultPlan::new();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (kind, rest) = clause
                .split_once(':')
                .ok_or_else(|| bad(format!("clause `{clause}` missing `:`")))?;
            let parse_node = |s: &str| -> Result<usize, ClusterError> {
                let id: usize = s
                    .parse()
                    .map_err(|_| bad(format!("bad node id `{s}` in `{clause}`")))?;
                if id >= num_nodes {
                    return Err(bad(format!(
                        "node {id} out of range (cluster has {num_nodes} nodes)"
                    )));
                }
                Ok(id)
            };
            let parse_f64 = |s: &str| -> Result<f64, ClusterError> {
                s.parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .ok_or_else(|| bad(format!("bad number `{s}` in `{clause}`")))
            };
            match kind.trim() {
                "crash" => {
                    let (node, t) = rest
                        .split_once('@')
                        .ok_or_else(|| bad(format!("crash clause `{clause}` needs NODE@T")))?;
                    plan = plan.with_crash(parse_node(node.trim())?, parse_f64(t.trim())?);
                }
                "slow" => {
                    let (node, f) = rest
                        .split_once('@')
                        .ok_or_else(|| bad(format!("slow clause `{clause}` needs NODE@FACTOR")))?;
                    plan = plan.with_straggler(parse_node(node.trim())?, parse_f64(f.trim())?);
                }
                "kv" => {
                    let (node, n) = rest
                        .split_once('@')
                        .ok_or_else(|| bad(format!("kv clause `{clause}` needs NODE@COUNT")))?;
                    let count: u32 = n
                        .trim()
                        .parse()
                        .map_err(|_| bad(format!("bad count `{n}` in `{clause}`")))?;
                    plan = plan.with_store_errors(parse_node(node.trim())?, count);
                }
                "net" => {
                    let (node, windowed) = rest
                        .split_once('@')
                        .ok_or_else(|| bad(format!("net clause `{clause}` needs NODE@FROM-TO@F")))?;
                    let (window, f) = windowed
                        .split_once('@')
                        .ok_or_else(|| bad(format!("net clause `{clause}` needs NODE@FROM-TO@F")))?;
                    let (from, to) = window
                        .split_once('-')
                        .ok_or_else(|| bad(format!("net window `{window}` needs FROM-TO")))?;
                    plan = plan.with_network_degradation(
                        parse_node(node.trim())?,
                        parse_f64(from.trim())?,
                        parse_f64(to.trim())?,
                        parse_f64(f.trim())?,
                    );
                }
                "seeded" => {
                    let seed: u64 = rest
                        .trim()
                        .parse()
                        .map_err(|_| bad(format!("bad seed `{rest}` in `{clause}`")))?;
                    let generated = FaultPlan::generate(seed, num_nodes, &FaultSpec::default());
                    plan.events.extend(generated.events);
                }
                other => {
                    return Err(bad(format!(
                        "unknown fault kind `{other}` (want crash/slow/kv/net/seeded)"
                    )))
                }
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_queries() {
        let plan = FaultPlan::new()
            .with_crash(2, 50.0)
            .with_crash(2, 30.0)
            .with_straggler(1, 3.0)
            .with_straggler(1, 2.0)
            .with_store_errors(0, 2)
            .with_network_degradation(3, 10.0, 20.0, 4.0);
        assert_eq!(plan.crash_time(2), Some(30.0));
        assert_eq!(plan.crash_time(0), None);
        assert_eq!(plan.straggler_factor(1), 6.0);
        assert_eq!(plan.straggler_factor(2), 1.0);
        assert_eq!(plan.store_error_count(0), 2);
        assert_eq!(plan.store_error_count(1), 0);
        let base = NetworkModel::datacenter();
        let inside = plan.network_at(3, 15.0, &base);
        assert!(inside.latency_s > base.latency_s);
        assert!(inside.bandwidth_bps < base.bandwidth_bps);
        // Outside the window, and for other nodes, the base model applies.
        assert_eq!(plan.network_at(3, 25.0, &base), base);
        assert_eq!(plan.network_at(0, 15.0, &base), base);
    }

    #[test]
    fn factors_are_floored() {
        let plan = FaultPlan::new().with_straggler(0, 0.25);
        assert_eq!(plan.straggler_factor(0), 1.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = FaultSpec::default();
        let a = FaultPlan::generate(99, 16, &spec);
        let b = FaultPlan::generate(99, 16, &spec);
        assert_eq!(a, b);
        let c = FaultPlan::generate(100, 16, &spec);
        assert_ne!(a, c, "different seeds should differ at 16 nodes");
    }

    #[test]
    fn generation_prefix_stable_in_cluster_size() {
        // Events depend on (seed, node, index), not cluster size: the
        // 8-node plan is a prefix-filter of the 16-node plan.
        let spec = FaultSpec::default();
        let small = FaultPlan::generate(7, 8, &spec);
        let large = FaultPlan::generate(7, 16, &spec);
        let large_prefix: Vec<_> = large
            .events()
            .iter()
            .filter(|e| e.node_id < 8)
            .copied()
            .collect();
        assert_eq!(small.events(), &large_prefix[..]);
    }

    #[test]
    fn generation_respects_probabilities() {
        let all = FaultSpec {
            crash_prob: 1.0,
            straggler_prob: 1.0,
            store_error_prob: 1.0,
            degradation_prob: 1.0,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(5, 4, &all);
        assert_eq!(plan.len(), 16, "4 nodes x 4 event kinds");
        let none = FaultSpec {
            crash_prob: 0.0,
            straggler_prob: 0.0,
            store_error_prob: 0.0,
            degradation_prob: 0.0,
            ..FaultSpec::default()
        };
        assert!(FaultPlan::generate(5, 4, &none).is_empty());
    }

    #[test]
    fn parse_round_trips_each_clause() {
        let plan = FaultPlan::parse("crash:3@120.5, slow:1@2.5, kv:0@2, net:2@10-70@8", 4).unwrap();
        assert_eq!(plan.crash_time(3), Some(120.5));
        assert_eq!(plan.straggler_factor(1), 2.5);
        assert_eq!(plan.store_error_count(0), 2);
        let base = NetworkModel::datacenter();
        assert_ne!(plan.network_at(2, 30.0, &base), base);
        assert_eq!(plan.network_at(2, 80.0, &base), base);
    }

    #[test]
    fn parse_seeded_matches_generate() {
        let parsed = FaultPlan::parse("seeded:42", 8).unwrap();
        let generated = FaultPlan::generate(42, 8, &FaultSpec::default());
        assert_eq!(parsed, generated);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "crash:9@10",   // node out of range
            "crash:1",      // missing @T
            "warp:1@3",     // unknown kind
            "slow:x@2",     // bad node id
            "crash:1@nan",  // non-finite time
            "net:1@10@3",   // malformed window
            "seeded:pi",    // bad seed
        ] {
            assert!(
                FaultPlan::parse(bad, 8).is_err(),
                "`{bad}` should be rejected"
            );
        }
        // Empty spec and stray commas are fine (empty plan).
        assert!(FaultPlan::parse("", 8).unwrap().is_empty());
        assert!(FaultPlan::parse(" , ", 8).unwrap().is_empty());
    }
}
