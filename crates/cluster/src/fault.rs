//! Seeded, deterministic fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] is a schedule of adverse events against individual
//! nodes: crashes at a simulated time, straggler slowdown factors,
//! transient KV-store errors during partition fetch, and network
//! degradation windows. Plans are plain data — the executor queries them
//! (`crash_time`, `straggler_factor`, …) while advancing simulated time,
//! so the same plan replayed against the same job is bit-reproducible
//! regardless of host scheduling or thread count.
//!
//! Plans come from three places:
//! - explicit builders (`with_crash`, …) for tests and claims gates,
//! - [`FaultPlan::parse`] for the CLI `--faults` spec string,
//! - [`FaultPlan::generate`], which derives every event from
//!   `(seed, node_id, event_index)` through a SplitMix64-style mixer, so a
//!   single integer seed names an entire fault scenario.

use crate::error::ClusterError;
use crate::network::NetworkModel;

/// One kind of injected adversity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node halts at simulated time `at_s`; in-flight work is lost.
    Crash {
        /// Simulated seconds after job start.
        at_s: f64,
    },
    /// Everything on the node takes `factor`× longer (CPU contention,
    /// thermal throttling, a solar dip forcing DVFS — the cause is
    /// abstracted away).
    Straggler {
        /// Slowdown multiplier, `>= 1`.
        factor: f64,
    },
    /// The node's first `count` KV-store operations during partition
    /// fetch fail transiently and must be retried.
    StoreErrors {
        /// Number of consecutive transient failures.
        count: u32,
    },
    /// Between `from_s` and `until_s`, the node's links run at
    /// `latency × factor` and `bandwidth ÷ factor`.
    NetworkDegradation {
        /// Window start (simulated seconds).
        from_s: f64,
        /// Window end (simulated seconds).
        until_s: f64,
        /// Degradation severity, `>= 1`.
        factor: f64,
    },
    /// Storage: the node's WAL loses its final record mid-write — the
    /// last framed record is cut after `cut_bytes` bytes (modulo the
    /// record length, so every cut point is reachable).
    TornWrite {
        /// Bytes of the final record that made it to disk.
        cut_bytes: u32,
    },
    /// Storage: one byte of the node's durable WAL is silently flipped —
    /// byte `offset % len` XORed with `mask`.
    BitRot {
        /// Seeded byte position (taken modulo the artifact length).
        offset: u64,
        /// Non-zero XOR mask applied to that byte.
        mask: u8,
    },
    /// Storage: the node's checkpoint snapshot is lost; recovery must
    /// replay the WAL from genesis.
    SnapshotLoss,
    /// Storage: recovery itself crashes after replaying `at_record` WAL
    /// records, then restarts from scratch (which must be idempotent).
    CrashDuringRecovery {
        /// Records replayed before the recovery process dies.
        at_record: u32,
    },
    /// Serving: the node's next `count` LP solves stall past any request
    /// deadline (a degenerate basis cycling, an NUMA-unlucky allocation —
    /// the cause is abstracted away). The plan server surfaces each stall
    /// as a `DeadlineExceeded` at the optimize checkpoint; consecutive
    /// stalls are what trip a tenant's circuit breaker.
    SolverStall {
        /// Number of consecutive stalled solves.
        count: u32,
    },
}

/// A fault bound to a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Target node.
    pub node_id: usize,
    /// What happens to it.
    pub kind: FaultKind,
}

/// Probabilities and ranges for seeded plan generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Per-node crash probability.
    pub crash_prob: f64,
    /// Crash times are drawn uniformly from this window (seconds).
    pub crash_window_s: (f64, f64),
    /// Per-node straggler probability.
    pub straggler_prob: f64,
    /// Straggler factors are drawn uniformly from `[1, max_factor]`.
    pub straggler_max_factor: f64,
    /// Per-node probability of transient store errors.
    pub store_error_prob: f64,
    /// Error counts are drawn uniformly from `[1, max]`.
    pub store_error_max: u32,
    /// Per-node probability of a network degradation window.
    pub degradation_prob: f64,
    /// Degradation windows start uniformly in the crash window and last
    /// this long (seconds).
    pub degradation_len_s: f64,
    /// Degradation severity factor.
    pub degradation_factor: f64,
    /// Per-node torn-write probability. Zero by default so pre-existing
    /// seeded plans are unchanged; see [`FaultSpec::storage`].
    pub torn_write_prob: f64,
    /// Torn-write cut points are drawn uniformly from `[0, max_cut)`
    /// bytes (the drill takes them modulo the final record's length).
    pub torn_write_max_cut: u32,
    /// Per-node bit-rot probability (zero by default).
    pub bit_rot_prob: f64,
    /// Per-node snapshot-loss probability (zero by default).
    pub snapshot_loss_prob: f64,
    /// Per-node crash-during-recovery probability (zero by default).
    pub recovery_crash_prob: f64,
    /// Recovery crashes after a record index drawn from `[0, max)`.
    pub recovery_crash_max_record: u32,
    /// Per-node solver-stall probability (zero by default, same
    /// compatibility rule as the storage kinds).
    pub solver_stall_prob: f64,
    /// Stall runs last `[1, max]` consecutive solves.
    pub solver_stall_max: u32,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            crash_prob: 0.15,
            crash_window_s: (10.0, 200.0),
            straggler_prob: 0.25,
            straggler_max_factor: 4.0,
            store_error_prob: 0.25,
            store_error_max: 3,
            degradation_prob: 0.25,
            degradation_len_s: 60.0,
            degradation_factor: 8.0,
            // Storage faults are opt-in: nonzero defaults would reshuffle
            // every seeded plan generated before they existed.
            torn_write_prob: 0.0,
            torn_write_max_cut: 96,
            bit_rot_prob: 0.0,
            snapshot_loss_prob: 0.0,
            recovery_crash_prob: 0.0,
            recovery_crash_max_record: 4,
            solver_stall_prob: 0.0,
            solver_stall_max: 3,
        }
    }
}

impl FaultSpec {
    /// The chaos-harness spec: compute faults at their defaults plus the
    /// storage fault kinds enabled. Kept out of [`FaultSpec::default`] so
    /// plans seeded before storage faults existed stay bit-identical.
    pub fn storage() -> Self {
        FaultSpec {
            torn_write_prob: 0.35,
            bit_rot_prob: 0.35,
            snapshot_loss_prob: 0.25,
            recovery_crash_prob: 0.3,
            ..FaultSpec::default()
        }
    }

    /// The plan-serving soak's spec: compute faults at their defaults plus
    /// solver stalls enabled (the service maps tenants onto node ids, so
    /// `solver_stall_prob` is a per-tenant chance of a stall run).
    pub fn serving() -> Self {
        FaultSpec {
            solver_stall_prob: 0.35,
            ..FaultSpec::default()
        }
    }
}

/// A deterministic schedule of faults for one job.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// SplitMix64 finalizer: one bijective avalanche round.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from `(seed, node_id, event_index)`.
///
/// Event indices are partitioned by family so enabling one family never
/// perturbs another's draws: compute faults use `0..=7`, storage faults
/// `8..=15`, and elastic roster events (`core::elastic`) `16..=22`. New
/// seeded event kinds must claim fresh indices.
pub fn unit_draw(seed: u64, node_id: usize, event_index: u64) -> f64 {
    let h = raw_draw(seed, node_id, event_index);
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Full-width hash from `(seed, node_id, event_index)` — the integer
/// sibling of [`unit_draw`], used where a draw needs all 64 bits (bit-rot
/// offsets).
pub fn raw_draw(seed: u64, node_id: usize, event_index: u64) -> u64 {
    mix64(mix64(seed ^ mix64(node_id as u64)) ^ event_index)
}

impl FaultPlan {
    /// An empty plan (the fault-free baseline).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Empty plan, ready for the `with_*` builders.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule a crash of `node_id` at simulated time `at_s`.
    pub fn with_crash(mut self, node_id: usize, at_s: f64) -> Self {
        self.events.push(FaultEvent {
            node_id,
            kind: FaultKind::Crash { at_s: at_s.max(0.0) },
        });
        self
    }

    /// Make `node_id` a straggler: all its work takes `factor`× longer.
    pub fn with_straggler(mut self, node_id: usize, factor: f64) -> Self {
        self.events.push(FaultEvent {
            node_id,
            kind: FaultKind::Straggler {
                factor: factor.max(1.0),
            },
        });
        self
    }

    /// Inject `count` transient KV errors into `node_id`'s partition fetch.
    pub fn with_store_errors(mut self, node_id: usize, count: u32) -> Self {
        self.events.push(FaultEvent {
            node_id,
            kind: FaultKind::StoreErrors { count },
        });
        self
    }

    /// Degrade `node_id`'s network by `factor` during `[from_s, until_s]`.
    pub fn with_network_degradation(
        mut self,
        node_id: usize,
        from_s: f64,
        until_s: f64,
        factor: f64,
    ) -> Self {
        self.events.push(FaultEvent {
            node_id,
            kind: FaultKind::NetworkDegradation {
                from_s: from_s.max(0.0),
                until_s: until_s.max(from_s.max(0.0)),
                factor: factor.max(1.0),
            },
        });
        self
    }

    /// Tear `node_id`'s final WAL record after `cut_bytes` bytes.
    pub fn with_torn_write(mut self, node_id: usize, cut_bytes: u32) -> Self {
        self.events.push(FaultEvent {
            node_id,
            kind: FaultKind::TornWrite { cut_bytes },
        });
        self
    }

    /// Flip one byte of `node_id`'s WAL: byte `offset % len` XOR `mask`
    /// (a zero mask is floored to 1 so the fault is never a no-op).
    pub fn with_bit_rot(mut self, node_id: usize, offset: u64, mask: u8) -> Self {
        self.events.push(FaultEvent {
            node_id,
            kind: FaultKind::BitRot {
                offset,
                mask: mask.max(1),
            },
        });
        self
    }

    /// Lose `node_id`'s checkpoint snapshot.
    pub fn with_snapshot_loss(mut self, node_id: usize) -> Self {
        self.events.push(FaultEvent {
            node_id,
            kind: FaultKind::SnapshotLoss,
        });
        self
    }

    /// Crash `node_id`'s recovery after `at_record` replayed records.
    pub fn with_recovery_crash(mut self, node_id: usize, at_record: u32) -> Self {
        self.events.push(FaultEvent {
            node_id,
            kind: FaultKind::CrashDuringRecovery { at_record },
        });
        self
    }

    /// Stall `node_id`'s next `count` LP solves past any deadline (a zero
    /// count is floored to 1 so the fault is never a no-op).
    pub fn with_solver_stall(mut self, node_id: usize, count: u32) -> Self {
        self.events.push(FaultEvent {
            node_id,
            kind: FaultKind::SolverStall {
                count: count.max(1),
            },
        });
        self
    }

    /// All scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// A copy of this plan with event `index` removed — the shrinking
    /// primitive of the chaos harness's delta-debugging loop.
    pub fn without_event(&self, index: usize) -> Self {
        let mut events = self.events.clone();
        if index < events.len() {
            events.remove(index);
        }
        FaultPlan { events }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Earliest crash time scheduled for `node_id`, if any.
    pub fn crash_time(&self, node_id: usize) -> Option<f64> {
        self.events
            .iter()
            .filter(|e| e.node_id == node_id)
            .filter_map(|e| match e.kind {
                FaultKind::Crash { at_s } => Some(at_s),
                _ => None,
            })
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }

    /// Combined slowdown factor for `node_id` (product of its straggler
    /// events; `1.0` when healthy).
    pub fn straggler_factor(&self, node_id: usize) -> f64 {
        self.events
            .iter()
            .filter(|e| e.node_id == node_id)
            .filter_map(|e| match e.kind {
                FaultKind::Straggler { factor } => Some(factor),
                _ => None,
            })
            .product::<f64>()
            .max(1.0)
    }

    /// Total transient store errors `node_id` will hit during fetch.
    pub fn store_error_count(&self, node_id: usize) -> u32 {
        self.events
            .iter()
            .filter(|e| e.node_id == node_id)
            .map(|e| match e.kind {
                FaultKind::StoreErrors { count } => count,
                _ => 0,
            })
            .sum()
    }

    /// The network `node_id` sees at simulated time `t`: `base` with every
    /// active degradation window applied (latency multiplied, bandwidth
    /// divided).
    pub fn network_at(&self, node_id: usize, t: f64, base: &NetworkModel) -> NetworkModel {
        let mut net = *base;
        for e in self.events.iter().filter(|e| e.node_id == node_id) {
            if let FaultKind::NetworkDegradation {
                from_s,
                until_s,
                factor,
            } = e.kind
            {
                if t >= from_s && t < until_s {
                    net = net.degraded(factor);
                }
            }
        }
        net
    }

    /// First torn-write cut for `node_id`, if any.
    pub fn torn_write(&self, node_id: usize) -> Option<u32> {
        self.events
            .iter()
            .filter(|e| e.node_id == node_id)
            .find_map(|e| match e.kind {
                FaultKind::TornWrite { cut_bytes } => Some(cut_bytes),
                _ => None,
            })
    }

    /// First bit-rot `(offset, mask)` for `node_id`, if any.
    pub fn bit_rot(&self, node_id: usize) -> Option<(u64, u8)> {
        self.events
            .iter()
            .filter(|e| e.node_id == node_id)
            .find_map(|e| match e.kind {
                FaultKind::BitRot { offset, mask } => Some((offset, mask)),
                _ => None,
            })
    }

    /// True when `node_id`'s checkpoint snapshot is scheduled to be lost.
    pub fn snapshot_lost(&self, node_id: usize) -> bool {
        self.events.iter().any(|e| {
            e.node_id == node_id && matches!(e.kind, FaultKind::SnapshotLoss)
        })
    }

    /// Record index at which `node_id`'s recovery crashes, if scheduled.
    pub fn recovery_crash(&self, node_id: usize) -> Option<u32> {
        self.events
            .iter()
            .filter(|e| e.node_id == node_id)
            .find_map(|e| match e.kind {
                FaultKind::CrashDuringRecovery { at_record } => Some(at_record),
                _ => None,
            })
    }

    /// Total consecutive solver stalls scheduled for `node_id` (0 when
    /// its solver is healthy).
    pub fn solver_stalls(&self, node_id: usize) -> u32 {
        self.events
            .iter()
            .filter(|e| e.node_id == node_id)
            .map(|e| match e.kind {
                FaultKind::SolverStall { count } => count,
                _ => 0,
            })
            .sum()
    }

    /// True when `node_id` has any storage fault scheduled (torn write,
    /// bit-rot, snapshot loss, or crash-during-recovery).
    pub fn has_storage_faults(&self, node_id: usize) -> bool {
        self.events.iter().any(|e| {
            e.node_id == node_id
                && matches!(
                    e.kind,
                    FaultKind::TornWrite { .. }
                        | FaultKind::BitRot { .. }
                        | FaultKind::SnapshotLoss
                        | FaultKind::CrashDuringRecovery { .. }
                )
        })
    }

    /// Derive a plan from a single seed: each node draws each event kind
    /// independently through `(seed, node_id, event_index)`, so plans for
    /// different cluster sizes share the per-node outcomes of their common
    /// prefix and two runs with the same seed are identical everywhere.
    pub fn generate(seed: u64, num_nodes: usize, spec: &FaultSpec) -> Self {
        let mut plan = FaultPlan::new();
        for node in 0..num_nodes {
            if unit_draw(seed, node, 0) < spec.crash_prob {
                let (lo, hi) = spec.crash_window_s;
                let at = lo + unit_draw(seed, node, 1) * (hi - lo).max(0.0);
                plan = plan.with_crash(node, at);
            }
            if unit_draw(seed, node, 2) < spec.straggler_prob {
                let f = 1.0 + unit_draw(seed, node, 3) * (spec.straggler_max_factor - 1.0).max(0.0);
                plan = plan.with_straggler(node, f);
            }
            if unit_draw(seed, node, 4) < spec.store_error_prob {
                let count = 1 + (unit_draw(seed, node, 5) * spec.store_error_max.max(1) as f64)
                    as u32;
                plan = plan.with_store_errors(node, count.min(spec.store_error_max.max(1)));
            }
            if unit_draw(seed, node, 6) < spec.degradation_prob {
                let (lo, hi) = spec.crash_window_s;
                let from = lo + unit_draw(seed, node, 7) * (hi - lo).max(0.0);
                plan = plan.with_network_degradation(
                    node,
                    from,
                    from + spec.degradation_len_s,
                    spec.degradation_factor,
                );
            }
            // Storage faults use event indices 8+, so enabling them never
            // perturbs the draws of the original four kinds above.
            if unit_draw(seed, node, 8) < spec.torn_write_prob {
                let cut =
                    (unit_draw(seed, node, 9) * spec.torn_write_max_cut.max(1) as f64) as u32;
                plan = plan.with_torn_write(node, cut);
            }
            if unit_draw(seed, node, 10) < spec.bit_rot_prob {
                let offset = raw_draw(seed, node, 11);
                let mask = 1u8 << (raw_draw(seed, node, 12) % 8);
                plan = plan.with_bit_rot(node, offset, mask);
            }
            if unit_draw(seed, node, 13) < spec.snapshot_loss_prob {
                plan = plan.with_snapshot_loss(node);
            }
            if unit_draw(seed, node, 14) < spec.recovery_crash_prob {
                let at = (unit_draw(seed, node, 15)
                    * spec.recovery_crash_max_record.max(1) as f64) as u32;
                plan = plan.with_recovery_crash(node, at);
            }
            // Serving faults claim indices 23+ (16..=22 belong to the
            // elastic roster events in `core::elastic`), so enabling them
            // never perturbs compute, storage, or elastic draws.
            if unit_draw(seed, node, 23) < spec.solver_stall_prob {
                let count =
                    1 + (unit_draw(seed, node, 24) * spec.solver_stall_max.max(1) as f64) as u32;
                plan = plan.with_solver_stall(node, count.min(spec.solver_stall_max.max(1)));
            }
        }
        plan
    }

    /// Serialize back into the `--faults` grammar accepted by
    /// [`FaultPlan::parse`]: `parse(plan.to_spec())` reproduces the plan
    /// exactly (Rust's `f64` `Display` is shortest-round-trip). This is
    /// how the chaos shrinker prints a minimal reproducing schedule.
    pub fn to_spec(&self) -> String {
        let clauses: Vec<String> = self
            .events
            .iter()
            .map(|e| match e.kind {
                FaultKind::Crash { at_s } => format!("crash:{}@{}", e.node_id, at_s),
                FaultKind::Straggler { factor } => format!("slow:{}@{}", e.node_id, factor),
                FaultKind::StoreErrors { count } => format!("kv:{}@{}", e.node_id, count),
                FaultKind::NetworkDegradation {
                    from_s,
                    until_s,
                    factor,
                } => format!("net:{}@{}-{}@{}", e.node_id, from_s, until_s, factor),
                FaultKind::TornWrite { cut_bytes } => {
                    format!("torn:{}@{}", e.node_id, cut_bytes)
                }
                FaultKind::BitRot { offset, mask } => {
                    format!("rot:{}@{}@{}", e.node_id, offset, mask)
                }
                FaultKind::SnapshotLoss => format!("snaploss:{}", e.node_id),
                FaultKind::CrashDuringRecovery { at_record } => {
                    format!("recrash:{}@{}", e.node_id, at_record)
                }
                FaultKind::SolverStall { count } => {
                    format!("stall:{}@{}", e.node_id, count)
                }
            })
            .collect();
        clauses.join(", ")
    }

    /// Parse a CLI fault spec: comma-separated clauses, each one of
    ///
    /// ```text
    /// crash:NODE@T          crash NODE at T seconds
    /// slow:NODE@FACTOR      NODE runs FACTOR x slower
    /// kv:NODE@COUNT         COUNT transient store errors on NODE's fetch
    /// net:NODE@FROM-TO@F    degrade NODE's links by F in [FROM, TO]
    /// torn:NODE@K           tear NODE's final WAL record after K bytes
    /// rot:NODE@OFF@MASK     flip byte OFF%len of NODE's WAL with MASK
    /// snaploss:NODE         lose NODE's checkpoint snapshot
    /// recrash:NODE@R        crash NODE's recovery after R records
    /// stall:NODE@COUNT      stall NODE's next COUNT LP solves
    /// seeded:SEED           generate a whole plan from SEED
    /// ```
    ///
    /// Node indices must be `< num_nodes`.
    pub fn parse(spec: &str, num_nodes: usize) -> Result<Self, ClusterError> {
        let bad = |msg: String| ClusterError::BadFaultSpec(msg);
        let mut plan = FaultPlan::new();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (kind, rest) = clause
                .split_once(':')
                .ok_or_else(|| bad(format!("clause `{clause}` missing `:`")))?;
            let parse_node = |s: &str| -> Result<usize, ClusterError> {
                let id: usize = s
                    .parse()
                    .map_err(|_| bad(format!("bad node id `{s}` in `{clause}`")))?;
                if id >= num_nodes {
                    return Err(bad(format!(
                        "node {id} out of range (cluster has {num_nodes} nodes)"
                    )));
                }
                Ok(id)
            };
            let parse_f64 = |s: &str| -> Result<f64, ClusterError> {
                s.parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .ok_or_else(|| bad(format!("bad number `{s}` in `{clause}`")))
            };
            match kind.trim() {
                "crash" => {
                    let (node, t) = rest
                        .split_once('@')
                        .ok_or_else(|| bad(format!("crash clause `{clause}` needs NODE@T")))?;
                    plan = plan.with_crash(parse_node(node.trim())?, parse_f64(t.trim())?);
                }
                "slow" => {
                    let (node, f) = rest
                        .split_once('@')
                        .ok_or_else(|| bad(format!("slow clause `{clause}` needs NODE@FACTOR")))?;
                    plan = plan.with_straggler(parse_node(node.trim())?, parse_f64(f.trim())?);
                }
                "kv" => {
                    let (node, n) = rest
                        .split_once('@')
                        .ok_or_else(|| bad(format!("kv clause `{clause}` needs NODE@COUNT")))?;
                    let count: u32 = n
                        .trim()
                        .parse()
                        .map_err(|_| bad(format!("bad count `{n}` in `{clause}`")))?;
                    plan = plan.with_store_errors(parse_node(node.trim())?, count);
                }
                "net" => {
                    let (node, windowed) = rest
                        .split_once('@')
                        .ok_or_else(|| bad(format!("net clause `{clause}` needs NODE@FROM-TO@F")))?;
                    let (window, f) = windowed
                        .split_once('@')
                        .ok_or_else(|| bad(format!("net clause `{clause}` needs NODE@FROM-TO@F")))?;
                    let (from, to) = window
                        .split_once('-')
                        .ok_or_else(|| bad(format!("net window `{window}` needs FROM-TO")))?;
                    plan = plan.with_network_degradation(
                        parse_node(node.trim())?,
                        parse_f64(from.trim())?,
                        parse_f64(to.trim())?,
                        parse_f64(f.trim())?,
                    );
                }
                "torn" => {
                    let (node, k) = rest
                        .split_once('@')
                        .ok_or_else(|| bad(format!("torn clause `{clause}` needs NODE@K")))?;
                    let cut: u32 = k
                        .trim()
                        .parse()
                        .map_err(|_| bad(format!("bad cut `{k}` in `{clause}`")))?;
                    plan = plan.with_torn_write(parse_node(node.trim())?, cut);
                }
                "rot" => {
                    let (node, rest2) = rest
                        .split_once('@')
                        .ok_or_else(|| bad(format!("rot clause `{clause}` needs NODE@OFF@MASK")))?;
                    let (off, mask) = rest2
                        .split_once('@')
                        .ok_or_else(|| bad(format!("rot clause `{clause}` needs NODE@OFF@MASK")))?;
                    let offset: u64 = off
                        .trim()
                        .parse()
                        .map_err(|_| bad(format!("bad offset `{off}` in `{clause}`")))?;
                    let mask: u8 = mask
                        .trim()
                        .parse()
                        .ok()
                        .filter(|&m| m > 0)
                        .ok_or_else(|| bad(format!("bad mask `{mask}` in `{clause}`")))?;
                    plan = plan.with_bit_rot(parse_node(node.trim())?, offset, mask);
                }
                "snaploss" => {
                    plan = plan.with_snapshot_loss(parse_node(rest.trim())?);
                }
                "recrash" => {
                    let (node, r) = rest
                        .split_once('@')
                        .ok_or_else(|| bad(format!("recrash clause `{clause}` needs NODE@R")))?;
                    let at: u32 = r
                        .trim()
                        .parse()
                        .map_err(|_| bad(format!("bad record `{r}` in `{clause}`")))?;
                    plan = plan.with_recovery_crash(parse_node(node.trim())?, at);
                }
                "stall" => {
                    let (node, n) = rest
                        .split_once('@')
                        .ok_or_else(|| bad(format!("stall clause `{clause}` needs NODE@COUNT")))?;
                    let count: u32 = n
                        .trim()
                        .parse()
                        .ok()
                        .filter(|&c| c > 0)
                        .ok_or_else(|| bad(format!("bad count `{n}` in `{clause}`")))?;
                    plan = plan.with_solver_stall(parse_node(node.trim())?, count);
                }
                "seeded" => {
                    let seed: u64 = rest
                        .trim()
                        .parse()
                        .map_err(|_| bad(format!("bad seed `{rest}` in `{clause}`")))?;
                    let generated = FaultPlan::generate(seed, num_nodes, &FaultSpec::default());
                    plan.events.extend(generated.events);
                }
                other => {
                    return Err(bad(format!(
                        "unknown fault kind `{other}` (want crash/slow/kv/net/torn/rot/snaploss/recrash/stall/seeded)"
                    )))
                }
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_queries() {
        let plan = FaultPlan::new()
            .with_crash(2, 50.0)
            .with_crash(2, 30.0)
            .with_straggler(1, 3.0)
            .with_straggler(1, 2.0)
            .with_store_errors(0, 2)
            .with_network_degradation(3, 10.0, 20.0, 4.0);
        assert_eq!(plan.crash_time(2), Some(30.0));
        assert_eq!(plan.crash_time(0), None);
        assert_eq!(plan.straggler_factor(1), 6.0);
        assert_eq!(plan.straggler_factor(2), 1.0);
        assert_eq!(plan.store_error_count(0), 2);
        assert_eq!(plan.store_error_count(1), 0);
        let base = NetworkModel::datacenter();
        let inside = plan.network_at(3, 15.0, &base);
        assert!(inside.latency_s > base.latency_s);
        assert!(inside.bandwidth_bps < base.bandwidth_bps);
        // Outside the window, and for other nodes, the base model applies.
        assert_eq!(plan.network_at(3, 25.0, &base), base);
        assert_eq!(plan.network_at(0, 15.0, &base), base);
    }

    #[test]
    fn factors_are_floored() {
        let plan = FaultPlan::new().with_straggler(0, 0.25);
        assert_eq!(plan.straggler_factor(0), 1.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = FaultSpec::default();
        let a = FaultPlan::generate(99, 16, &spec);
        let b = FaultPlan::generate(99, 16, &spec);
        assert_eq!(a, b);
        let c = FaultPlan::generate(100, 16, &spec);
        assert_ne!(a, c, "different seeds should differ at 16 nodes");
    }

    #[test]
    fn generation_prefix_stable_in_cluster_size() {
        // Events depend on (seed, node, index), not cluster size: the
        // 8-node plan is a prefix-filter of the 16-node plan.
        let spec = FaultSpec::default();
        let small = FaultPlan::generate(7, 8, &spec);
        let large = FaultPlan::generate(7, 16, &spec);
        let large_prefix: Vec<_> = large
            .events()
            .iter()
            .filter(|e| e.node_id < 8)
            .copied()
            .collect();
        assert_eq!(small.events(), &large_prefix[..]);
    }

    #[test]
    fn generation_respects_probabilities() {
        let all = FaultSpec {
            crash_prob: 1.0,
            straggler_prob: 1.0,
            store_error_prob: 1.0,
            degradation_prob: 1.0,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(5, 4, &all);
        assert_eq!(plan.len(), 16, "4 nodes x 4 event kinds");
        let none = FaultSpec {
            crash_prob: 0.0,
            straggler_prob: 0.0,
            store_error_prob: 0.0,
            degradation_prob: 0.0,
            ..FaultSpec::default()
        };
        assert!(FaultPlan::generate(5, 4, &none).is_empty());
    }

    #[test]
    fn parse_round_trips_each_clause() {
        let plan = FaultPlan::parse("crash:3@120.5, slow:1@2.5, kv:0@2, net:2@10-70@8", 4).unwrap();
        assert_eq!(plan.crash_time(3), Some(120.5));
        assert_eq!(plan.straggler_factor(1), 2.5);
        assert_eq!(plan.store_error_count(0), 2);
        let base = NetworkModel::datacenter();
        assert_ne!(plan.network_at(2, 30.0, &base), base);
        assert_eq!(plan.network_at(2, 80.0, &base), base);
    }

    #[test]
    fn parse_seeded_matches_generate() {
        let parsed = FaultPlan::parse("seeded:42", 8).unwrap();
        let generated = FaultPlan::generate(42, 8, &FaultSpec::default());
        assert_eq!(parsed, generated);
    }

    #[test]
    fn storage_builders_and_queries() {
        let plan = FaultPlan::new()
            .with_torn_write(1, 13)
            .with_bit_rot(2, 0xDEAD_BEEF, 0) // zero mask floored to 1
            .with_snapshot_loss(3)
            .with_recovery_crash(0, 2);
        assert_eq!(plan.torn_write(1), Some(13));
        assert_eq!(plan.torn_write(0), None);
        assert_eq!(plan.bit_rot(2), Some((0xDEAD_BEEF, 1)));
        assert!(plan.snapshot_lost(3));
        assert!(!plan.snapshot_lost(2));
        assert_eq!(plan.recovery_crash(0), Some(2));
        for node in 0..4 {
            assert!(plan.has_storage_faults(node), "node {node}");
        }
        let compute_only = FaultPlan::new().with_crash(0, 5.0).with_straggler(0, 2.0);
        assert!(!compute_only.has_storage_faults(0));
    }

    #[test]
    fn storage_generation_extends_without_perturbing_compute_draws() {
        // Same seed, storage probs on vs off: the compute events must be
        // byte-identical because storage kinds use fresh event indices.
        let base = FaultPlan::generate(2017, 8, &FaultSpec::default());
        let storage = FaultPlan::generate(2017, 8, &FaultSpec::storage());
        let compute_events: Vec<_> = storage
            .events()
            .iter()
            .filter(|e| {
                !matches!(
                    e.kind,
                    FaultKind::TornWrite { .. }
                        | FaultKind::BitRot { .. }
                        | FaultKind::SnapshotLoss
                        | FaultKind::CrashDuringRecovery { .. }
                )
            })
            .copied()
            .collect();
        assert_eq!(base.events(), &compute_events[..]);
        // And with everything at probability 1, all 8 kinds fire per node.
        let all = FaultSpec {
            crash_prob: 1.0,
            straggler_prob: 1.0,
            store_error_prob: 1.0,
            degradation_prob: 1.0,
            torn_write_prob: 1.0,
            bit_rot_prob: 1.0,
            snapshot_loss_prob: 1.0,
            recovery_crash_prob: 1.0,
            ..FaultSpec::default()
        };
        assert_eq!(FaultPlan::generate(5, 4, &all).len(), 32, "4 nodes x 8 kinds");
    }

    #[test]
    fn to_spec_round_trips_generated_plans() {
        for seed in [7u64, 2017, 0xFA17] {
            let plan = FaultPlan::generate(seed, 8, &FaultSpec::storage());
            let spec = plan.to_spec();
            let reparsed = FaultPlan::parse(&spec, 8).unwrap();
            assert_eq!(plan, reparsed, "seed {seed}: `{spec}`");
        }
        // Explicit storage clauses parse too.
        let plan =
            FaultPlan::parse("torn:1@13, rot:2@3735928559@8, snaploss:3, recrash:0@2", 4).unwrap();
        assert_eq!(plan.torn_write(1), Some(13));
        assert_eq!(plan.bit_rot(2), Some((3_735_928_559, 8)));
        assert!(plan.snapshot_lost(3));
        assert_eq!(plan.recovery_crash(0), Some(2));
        assert_eq!(FaultPlan::parse(&plan.to_spec(), 4).unwrap(), plan);
    }

    #[test]
    fn solver_stall_builder_query_and_round_trip() {
        let plan = FaultPlan::new()
            .with_solver_stall(1, 3)
            .with_solver_stall(1, 2)
            .with_solver_stall(2, 0); // floored to 1
        assert_eq!(plan.solver_stalls(1), 5);
        assert_eq!(plan.solver_stalls(2), 1);
        assert_eq!(plan.solver_stalls(0), 0);
        assert_eq!(FaultPlan::parse(&plan.to_spec(), 4).unwrap(), plan);
        let parsed = FaultPlan::parse("stall:3@2", 4).unwrap();
        assert_eq!(parsed.solver_stalls(3), 2);
        for bad in ["stall:1", "stall:9@2", "stall:1@0", "stall:1@x"] {
            assert!(FaultPlan::parse(bad, 8).is_err(), "`{bad}`");
        }
    }

    #[test]
    fn serving_generation_extends_without_perturbing_other_draws() {
        // Same seed, stall prob on vs off: every non-stall event must be
        // identical because stalls claim fresh event indices (23+).
        let base = FaultPlan::generate(2017, 8, &FaultSpec::storage());
        let serving = FaultPlan::generate(
            2017,
            8,
            &FaultSpec {
                solver_stall_prob: 0.35,
                ..FaultSpec::storage()
            },
        );
        let non_stall: Vec<_> = serving
            .events()
            .iter()
            .filter(|e| !matches!(e.kind, FaultKind::SolverStall { .. }))
            .copied()
            .collect();
        assert_eq!(base.events(), &non_stall[..]);
        // Stall counts respect the configured maximum.
        let all = FaultSpec {
            solver_stall_prob: 1.0,
            solver_stall_max: 3,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(5, 16, &all);
        for node in 0..16 {
            let stalls = plan.solver_stalls(node);
            assert!((1..=3).contains(&stalls), "node {node}: {stalls}");
        }
    }

    #[test]
    fn without_event_removes_exactly_one() {
        let plan = FaultPlan::new()
            .with_crash(0, 5.0)
            .with_torn_write(1, 9)
            .with_snapshot_loss(2);
        let shrunk = plan.without_event(1);
        assert_eq!(shrunk.len(), 2);
        assert_eq!(shrunk.torn_write(1), None);
        assert_eq!(shrunk.crash_time(0), Some(5.0));
        assert!(shrunk.snapshot_lost(2));
        // Out-of-range index is a no-op copy.
        assert_eq!(plan.without_event(99), plan);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "crash:9@10",   // node out of range
            "crash:1",      // missing @T
            "warp:1@3",     // unknown kind
            "slow:x@2",     // bad node id
            "crash:1@nan",  // non-finite time
            "net:1@10@3",   // malformed window
            "seeded:pi",    // bad seed
        ] {
            assert!(
                FaultPlan::parse(bad, 8).is_err(),
                "`{bad}` should be rejected"
            );
        }
        // Empty spec and stray commas are fine (empty plan).
        assert!(FaultPlan::parse("", 8).unwrap().is_empty());
        assert!(FaultPlan::parse(" , ", 8).unwrap().is_empty());
    }
}
