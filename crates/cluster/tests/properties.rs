//! Property-based tests for the simulated cluster substrate.

use proptest::prelude::*;

use pareto_cluster::kvstore::{decode_records, encode_records};
use pareto_cluster::{Cost, KvStore, NetworkModel, NodeSpec, SimCluster};

proptest! {
    /// Blob encode/decode roundtrips for arbitrary record sets.
    #[test]
    fn blob_roundtrip(records in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..128), 0..64)) {
        let blob = encode_records(&records);
        let decoded = decode_records(&blob).unwrap();
        prop_assert_eq!(decoded.len(), records.len());
        for (d, r) in decoded.iter().zip(&records) {
            prop_assert_eq!(&d[..], &r[..]);
        }
    }

    /// Pipeline cost: round trips are exactly ceil(n/width) and replies
    /// arrive in order regardless of width.
    #[test]
    fn pipeline_cost_law(n in 0usize..300, width in 1usize..64) {
        let kv = KvStore::new();
        let mut pipe = kv.pipeline(width);
        for _ in 0..n {
            pipe = pipe.incr("ctr");
        }
        let (replies, cost) = pipe.execute().unwrap();
        prop_assert_eq!(replies.len(), n);
        prop_assert_eq!(cost.round_trips, (n as u64).div_ceil(width as u64));
        for (i, r) in replies.iter().enumerate() {
            prop_assert_eq!(r, &pareto_cluster::Reply::Int(i as i64 + 1));
        }
    }

    /// Store state reflects the last write for any interleaving of keys.
    #[test]
    fn last_write_wins(ops in proptest::collection::vec((0u8..4, any::<u8>()), 1..64)) {
        let kv = KvStore::new();
        let mut expected: std::collections::HashMap<String, u8> = Default::default();
        for (key_sel, val) in &ops {
            let key = format!("k{key_sel}");
            kv.set(&key, vec![*val]).unwrap();
            expected.insert(key, *val);
        }
        for (key, val) in expected {
            match kv.get(&key).unwrap().0 {
                pareto_cluster::Reply::Bytes(b) => prop_assert_eq!(&b[..], &[val][..]),
                other => prop_assert!(false, "unexpected reply {:?}", other),
            }
        }
    }

    /// Cost-to-seconds is additive and monotone in every component.
    #[test]
    fn cost_seconds_monotone(
        ops1 in 0u64..1u64 << 40,
        ops2 in 0u64..1u64 << 40,
        bytes in 0u64..1u64 << 30,
        trips in 0u64..1u64 << 16,
        speed_sel in 0usize..4,
    ) {
        let net = NetworkModel::datacenter();
        let speed = [1.0, 0.5, 1.0 / 3.0, 0.25][speed_sel];
        let rate = 1.0e6;
        let a = Cost { compute_ops: ops1, bytes, round_trips: trips };
        let b = Cost { compute_ops: ops2, bytes: 0, round_trips: 0 };
        let combined = a.plus(b);
        let t_a = a.seconds(speed, rate, &net);
        let t_b = b.seconds(speed, rate, &net);
        let t_ab = combined.seconds(speed, rate, &net);
        prop_assert!((t_ab - (t_a + t_b)).abs() < 1e-9 * (1.0 + t_ab));
        prop_assert!(t_ab >= t_a);
    }

    /// Job accounting: makespan is the max of node times; dirty energy is
    /// bounded by total energy; all are non-negative (clamped form).
    #[test]
    fn job_report_invariants(
        ops in proptest::collection::vec(0u64..1u64 << 32, 1..12),
        seed in any::<u64>(),
    ) {
        let p = ops.len();
        let cluster = SimCluster::new(NodeSpec::paper_cluster(p, 400.0, 2, 9, seed));
        let costs: Vec<Cost> = ops.iter().map(|&o| Cost::compute(o)).collect();
        let report = cluster.account_costs(&costs);
        let max = report.runs.iter().map(|r| r.seconds).fold(0.0, f64::max);
        prop_assert!((report.makespan_seconds - max).abs() < 1e-12);
        for run in &report.runs {
            prop_assert!(run.seconds >= 0.0);
            prop_assert!(run.dirty_joules_clamped >= 0.0);
            prop_assert!(run.dirty_joules_clamped <= run.energy_joules + 1e-6);
            prop_assert!(run.dirty_joules_linear <= run.dirty_joules_clamped + 1e-6);
        }
        prop_assert!(report.imbalance() >= 1.0 - 1e-12);
    }

    /// Same ops on a slower machine type always take proportionally longer.
    #[test]
    fn speed_scaling_exact(ops in 1u64..1u64 << 40) {
        let cluster = SimCluster::new(NodeSpec::paper_cluster(4, 400.0, 2, 9, 7));
        let report = cluster.account_costs(&[Cost::compute(ops); 4]);
        let t = report.node_seconds();
        prop_assert!((t[1] / t[0] - 2.0).abs() < 1e-9);
        prop_assert!((t[2] / t[0] - 3.0).abs() < 1e-9);
        prop_assert!((t[3] / t[0] - 4.0).abs() < 1e-9);
    }

    /// Write–crash–reload: a store snapshotted after `cut` of `n` writes
    /// and reloaded equals a store that only ever saw those `cut` writes —
    /// no lost keys, no duplicated keys, no resurrection of later writes.
    /// Ops mix all three value types (bytes, lists, counters).
    #[test]
    fn write_crash_reload_roundtrip(
        ops in proptest::collection::vec((0u8..3, 0u8..5, any::<u8>()), 1..80),
        cut in 0usize..80,
    ) {
        let cut = cut.min(ops.len());
        let apply = |kv: &KvStore, (kind, key_sel, val): &(u8, u8, u8)| {
            match kind {
                0 => { kv.set(&format!("blob{key_sel}"), vec![*val]).unwrap(); }
                1 => { kv.rpush(&format!("list{key_sel}"), vec![*val]).unwrap(); }
                _ => { kv.incr(&format!("ctr{key_sel}")).unwrap(); }
            }
        };
        // The node applies all writes, but crashes mid-batch: only the
        // first `cut` made it to the durable snapshot.
        let kv = KvStore::new();
        for op in &ops[..cut] {
            apply(&kv, op);
        }
        let durable = pareto_cluster::snapshot_to_bytes(&kv);
        for op in &ops[cut..] {
            apply(&kv, op); // lost with the crash
        }
        let reloaded = pareto_cluster::snapshot_from_bytes(&durable).unwrap();
        // Reference store: a run that stopped exactly at the crash point.
        let expected = KvStore::new();
        for op in &ops[..cut] {
            apply(&expected, op);
        }
        let got = reloaded.export_entries();
        let want = expected.export_entries();
        prop_assert_eq!(got.len(), want.len(), "key count diverged after reload");
        for ((gk, gv), (wk, wv)) in got.iter().zip(&want) {
            prop_assert_eq!(gk, wk);
            prop_assert_eq!(gv, wv);
        }
        // Reload is idempotent: snapshotting the reloaded store is
        // byte-identical to the durable snapshot (no duplication).
        prop_assert_eq!(pareto_cluster::snapshot_to_bytes(&reloaded), durable);
    }
}
