//! Energy-attribution ledger: joules per (node, stage, stratum).
//!
//! The executor already accounts energy per node: a run that kept node
//! `i` busy for `T` seconds draws `E_i · T` joules and credits the green
//! supply `∫ GE_i` over the run (§III-B). The ledger refines that single
//! number by *attributing* it — each busy interval the executor records
//! (an exec batch, a transfer, a WAL retry, an elastic handoff) becomes a
//! row keyed by `(node, stage, stratum)` with its own green/dirty split,
//! and the per-node sums reconcile against the plan-level totals the LP
//! prices (the `NodeRun` paper-linear accounting) to within a configurable
//! relative tolerance (0.1% in the tier-1 suites; in practice the match is
//! near bit-exact).
//!
//! # The two coordinate systems
//!
//! A [`BusyInterval`] carries **two** time ranges:
//!
//! * `start_s..end_s` — position on the *simulated timeline* (including
//!   the telemetry epoch). Display only: it lines the ledger up with the
//!   exported spans.
//! * `busy0_s..busy1_s` — position on the node's *cumulative-busy axis*:
//!   how many seconds of busy work the node had already accrued when the
//!   interval began/ended, within its job.
//!
//! Attribution integrates the green trace over
//! `[job_start + busy0, job_start + busy1]`, **not** over the timeline
//! range. That is deliberate: `account_busy`-style accounting (what the
//! LP objective prices) integrates the trace over the *contiguous* window
//! `[job_start, job_start + busy_total]`, ignoring idle gaps in the real
//! timeline. Using the busy axis makes the ledger's per-node green
//! integrals telescope — `Σ ∫[busy0ᵢ, busy1ᵢ] = ∫[0, busy_total]` exactly
//! when the intervals tile the busy axis — so the ledger reconciles with
//! the plan-level totals instead of drifting by the idle-gap difference.

use std::collections::BTreeMap;

/// One busy interval recorded by the executor, to be attributed later.
#[derive(Debug, Clone, PartialEq)]
pub struct BusyInterval {
    /// Node that was busy.
    pub node: usize,
    /// What the node was doing ("exec", "transfer", "kv-retry",
    /// "handoff", "steal", …).
    pub stage: String,
    /// Stratum the work item belonged to, when known.
    pub stratum: Option<u32>,
    /// Simulated-timeline start (epoch included). Display only.
    pub start_s: f64,
    /// Simulated-timeline end. Display only.
    pub end_s: f64,
    /// Node's cumulative busy seconds when the interval began.
    pub busy0_s: f64,
    /// Node's cumulative busy seconds when the interval ended.
    pub busy1_s: f64,
}

impl BusyInterval {
    /// Busy seconds this interval contributes.
    pub fn busy_s(&self) -> f64 {
        self.busy1_s - self.busy0_s
    }
}

/// What the attribution needs to know about the cluster's energy model,
/// kept as a trait so the telemetry crate never depends on the energy or
/// cluster crates.
pub trait GreenSource {
    /// Steady power draw of `node`, watts.
    fn draw_watts(&self, node: usize) -> f64;
    /// Green energy supplied to `node` over `[t0, t1]` absolute trace
    /// seconds, joules.
    fn green_energy_joules(&self, node: usize, t0: f64, t1: f64) -> f64;
    /// Where in the green traces jobs start (seconds).
    fn job_start_s(&self) -> f64;
}

/// One attributed ledger row: all intervals of a `(node, stage, stratum)`
/// key folded together.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRow {
    /// Node index.
    pub node: usize,
    /// Stage name.
    pub stage: String,
    /// Stratum, when known.
    pub stratum: Option<u32>,
    /// Number of intervals folded into this row.
    pub intervals: usize,
    /// Total busy seconds.
    pub busy_s: f64,
    /// Total draw over the busy seconds, joules.
    pub energy_j: f64,
    /// Green supply over the busy window, joules.
    pub green_j: f64,
    /// Dirty energy, paper-linear (`energy − green`; can be negative when
    /// the panel out-produces the node).
    pub dirty_j: f64,
}

/// Per-node roll-up of ledger rows.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTotal {
    /// Node index.
    pub node: usize,
    /// Total busy seconds attributed.
    pub busy_s: f64,
    /// Total draw, joules.
    pub energy_j: f64,
    /// Total green supply, joules.
    pub green_j: f64,
    /// Total dirty energy, paper-linear, joules.
    pub dirty_j: f64,
}

/// Reference totals to reconcile the ledger against — one per node, taken
/// from the plan-level accounting (`NodeRun`: seconds, total draw, and
/// paper-linear dirty joules).
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceTotal {
    /// Node index.
    pub node: usize,
    /// Accounted busy seconds.
    pub busy_s: f64,
    /// Accounted total draw, joules.
    pub energy_j: f64,
    /// Accounted paper-linear dirty energy, joules.
    pub dirty_j: f64,
}

/// Attribute recorded busy intervals against a green source, producing
/// one row per `(node, stage, stratum)` in deterministic (BTreeMap) order.
pub fn attribute(intervals: &[BusyInterval], source: &dyn GreenSource) -> Vec<LedgerRow> {
    let job_start = source.job_start_s();
    let mut rows: BTreeMap<(usize, String, Option<u32>), LedgerRow> = BTreeMap::new();
    for iv in intervals {
        let busy = (iv.busy1_s - iv.busy0_s).max(0.0);
        let energy = source.draw_watts(iv.node) * busy;
        let green = source.green_energy_joules(
            iv.node,
            job_start + iv.busy0_s,
            job_start + iv.busy1_s.max(iv.busy0_s),
        );
        let row = rows
            .entry((iv.node, iv.stage.clone(), iv.stratum))
            .or_insert_with(|| LedgerRow {
                node: iv.node,
                stage: iv.stage.clone(),
                stratum: iv.stratum,
                intervals: 0,
                busy_s: 0.0,
                energy_j: 0.0,
                green_j: 0.0,
                dirty_j: 0.0,
            });
        row.intervals += 1;
        row.busy_s += busy;
        row.energy_j += energy;
        row.green_j += green;
        row.dirty_j += energy - green;
    }
    rows.into_values().collect()
}

/// Roll ledger rows up to per-node totals, in node order.
pub fn node_totals(rows: &[LedgerRow]) -> Vec<NodeTotal> {
    let mut totals: BTreeMap<usize, NodeTotal> = BTreeMap::new();
    for row in rows {
        let t = totals.entry(row.node).or_insert_with(|| NodeTotal {
            node: row.node,
            busy_s: 0.0,
            energy_j: 0.0,
            green_j: 0.0,
            dirty_j: 0.0,
        });
        t.busy_s += row.busy_s;
        t.energy_j += row.energy_j;
        t.green_j += row.green_j;
        t.dirty_j += row.dirty_j;
    }
    totals.into_values().collect()
}

/// Relative error with an absolute floor of 1.0 in the denominator, so
/// near-zero references (an idle node, a dirty total crossing zero) don't
/// blow the ratio up.
pub fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

/// Reconcile per-node ledger totals against reference (plan-level)
/// totals. Every reference node must be covered within `rel_tol` on busy
/// seconds, total draw, and paper-linear dirty joules; a node absent from
/// the ledger must have zero reference busy time. Returns the list of
/// mismatches (empty = reconciled).
pub fn reconcile(rows: &[LedgerRow], reference: &[ReferenceTotal], rel_tol: f64) -> Vec<String> {
    let totals = node_totals(rows);
    let by_node: BTreeMap<usize, &NodeTotal> = totals.iter().map(|t| (t.node, t)).collect();
    let mut errors = Vec::new();
    for r in reference {
        match by_node.get(&r.node) {
            None => {
                if r.busy_s > 0.0 {
                    errors.push(format!(
                        "node {}: reference busy {:.6}s but no ledger rows",
                        r.node, r.busy_s
                    ));
                }
            }
            Some(t) => {
                for (what, got, want) in [
                    ("busy_s", t.busy_s, r.busy_s),
                    ("energy_j", t.energy_j, r.energy_j),
                    ("dirty_j", t.dirty_j, r.dirty_j),
                ] {
                    let err = rel_err(got, want);
                    if err > rel_tol {
                        errors.push(format!(
                            "node {}: {} ledger {:.6} vs reference {:.6} (rel err {:.3e} > {:.1e})",
                            r.node, what, got, want, err, rel_tol
                        ));
                    }
                }
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flat green source: every node draws `draw` W and receives `green` W.
    struct Flat {
        draw: f64,
        green: f64,
        job_start: f64,
    }

    impl GreenSource for Flat {
        fn draw_watts(&self, _node: usize) -> f64 {
            self.draw
        }
        fn green_energy_joules(&self, _node: usize, t0: f64, t1: f64) -> f64 {
            self.green * (t1 - t0).max(0.0)
        }
        fn job_start_s(&self) -> f64 {
            self.job_start
        }
    }

    fn iv(node: usize, stage: &str, stratum: Option<u32>, busy0: f64, busy1: f64) -> BusyInterval {
        BusyInterval {
            node,
            stage: stage.into(),
            stratum,
            start_s: busy0,
            end_s: busy1,
            busy0_s: busy0,
            busy1_s: busy1,
        }
    }

    #[test]
    fn attribution_splits_green_and_dirty() {
        let src = Flat {
            draw: 250.0,
            green: 100.0,
            job_start: 0.0,
        };
        let rows = attribute(&[iv(0, "exec", Some(1), 0.0, 10.0)], &src);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.intervals, 1);
        assert!((r.busy_s - 10.0).abs() < 1e-12);
        assert!((r.energy_j - 2500.0).abs() < 1e-9);
        assert!((r.green_j - 1000.0).abs() < 1e-9);
        assert!((r.dirty_j - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn rows_group_by_node_stage_stratum_deterministically() {
        let src = Flat {
            draw: 100.0,
            green: 0.0,
            job_start: 0.0,
        };
        let intervals = vec![
            iv(1, "transfer", None, 0.0, 1.0),
            iv(0, "exec", Some(2), 0.0, 2.0),
            iv(0, "exec", Some(2), 2.0, 3.0),
            iv(0, "exec", Some(1), 3.0, 4.0),
        ];
        let rows = attribute(&intervals, &src);
        let keys: Vec<_> = rows
            .iter()
            .map(|r| (r.node, r.stage.clone(), r.stratum))
            .collect();
        assert_eq!(
            keys,
            vec![
                (0, "exec".to_string(), Some(1)),
                (0, "exec".to_string(), Some(2)),
                (1, "transfer".to_string(), None),
            ]
        );
        assert_eq!(rows[1].intervals, 2);
        assert!((rows[1].busy_s - 3.0).abs() < 1e-12);
    }

    #[test]
    fn telescoping_reconciles_against_contiguous_reference() {
        // Three intervals tiling [0, 6] on the busy axis reconcile against
        // a reference integrated over the contiguous [0, 6] window even
        // when the timeline positions have gaps.
        let src = Flat {
            draw: 200.0,
            green: 70.0,
            job_start: 3600.0,
        };
        let mut a = iv(0, "exec", None, 0.0, 2.0);
        a.start_s = 10.0;
        a.end_s = 12.0;
        let mut b = iv(0, "transfer", None, 2.0, 2.5);
        b.start_s = 20.0;
        b.end_s = 20.5;
        let mut c = iv(0, "exec", None, 2.5, 6.0);
        c.start_s = 30.0;
        c.end_s = 33.5;
        let rows = attribute(&[a, b, c], &src);
        let reference = vec![ReferenceTotal {
            node: 0,
            busy_s: 6.0,
            energy_j: 200.0 * 6.0,
            dirty_j: (200.0 - 70.0) * 6.0,
        }];
        let errors = reconcile(&rows, &reference, 1e-9);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn reconcile_flags_missing_and_mismatched_nodes() {
        let src = Flat {
            draw: 100.0,
            green: 0.0,
            job_start: 0.0,
        };
        let rows = attribute(&[iv(0, "exec", None, 0.0, 1.0)], &src);
        let reference = vec![
            ReferenceTotal {
                node: 0,
                busy_s: 2.0, // ledger says 1.0
                energy_j: 200.0,
                dirty_j: 200.0,
            },
            ReferenceTotal {
                node: 1,
                busy_s: 5.0, // no ledger rows at all
                energy_j: 500.0,
                dirty_j: 500.0,
            },
        ];
        let errors = reconcile(&rows, &reference, 1e-3);
        assert_eq!(errors.len(), 4, "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("no ledger rows")));
    }

    #[test]
    fn zero_busy_reference_needs_no_rows() {
        let errors = reconcile(
            &[],
            &[ReferenceTotal {
                node: 3,
                busy_s: 0.0,
                energy_j: 0.0,
                dirty_j: 0.0,
            }],
            1e-3,
        );
        assert!(errors.is_empty());
    }

    #[test]
    fn rel_err_floors_denominator() {
        assert_eq!(rel_err(0.0, 0.0), 0.0);
        assert!((rel_err(0.5, 0.0) - 0.5).abs() < 1e-12);
        assert!((rel_err(200.0, 100.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn node_totals_roll_up_across_stages() {
        let src = Flat {
            draw: 100.0,
            green: 25.0,
            job_start: 0.0,
        };
        let rows = attribute(
            &[
                iv(0, "exec", Some(0), 0.0, 4.0),
                iv(0, "transfer", None, 4.0, 5.0),
                iv(2, "exec", None, 0.0, 1.0),
            ],
            &src,
        );
        let totals = node_totals(&rows);
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].node, 0);
        assert!((totals[0].busy_s - 5.0).abs() < 1e-12);
        assert!((totals[0].energy_j - 500.0).abs() < 1e-9);
        assert!((totals[0].green_j - 125.0).abs() < 1e-9);
        assert_eq!(totals[1].node, 2);
    }
}
