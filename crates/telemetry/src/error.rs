//! Typed errors for telemetry artifacts.
//!
//! Historically the parsers/validators in this crate reported failures as
//! bare `String`s. A long-running serving process cannot afford that: it
//! needs to *classify* a malformed dump (retryable? operator error? data
//! corruption?) without string-matching, and nothing on the artifact path
//! may panic. Every fallible telemetry API now returns a
//! [`TelemetryError`]; `From<TelemetryError> for String` keeps the CLI's
//! `Result<_, String>` plumbing source-compatible.

/// A typed failure while parsing, validating, or merging telemetry
/// artifacts. Each variant carries a human-readable `detail` naming the
/// first malformation found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryError {
    /// A document failed JSON parsing before any schema check ran.
    Json {
        /// Position + description from the parser.
        detail: String,
    },
    /// A version-1 telemetry dump violated its schema (missing section,
    /// bad span, dangling parent, …).
    MalformedDump {
        /// What was wrong, including the offending span/section.
        detail: String,
    },
    /// A chrome trace violated its invariants (non-monotonic timestamps,
    /// unmatched `B`/`E` pairs, unknown phases).
    MalformedTrace {
        /// What was wrong, including the offending event index.
        detail: String,
    },
    /// A Prometheus text exposition was malformed (bad sample line, label
    /// escaping, non-cumulative histogram buckets, …).
    MalformedExposition {
        /// What was wrong, including the line number.
        detail: String,
    },
    /// A lineage query named a batch the dump has no records for.
    LineageNotFound {
        /// The requested batch id.
        batch: u32,
    },
    /// Two histograms with different bucket bounds were asked to merge —
    /// refused because it would silently misbin.
    HistogramMismatch {
        /// The metric whose merge was refused (empty for bare
        /// [`crate::metrics::Histogram`] merges).
        metric: String,
        /// The mismatched bounds.
        detail: String,
    },
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::Json { detail } => write!(f, "invalid JSON: {detail}"),
            TelemetryError::MalformedDump { detail } => {
                write!(f, "malformed telemetry dump: {detail}")
            }
            TelemetryError::MalformedTrace { detail } => {
                write!(f, "malformed chrome trace: {detail}")
            }
            TelemetryError::MalformedExposition { detail } => {
                write!(f, "malformed Prometheus exposition: {detail}")
            }
            TelemetryError::LineageNotFound { batch } => write!(
                f,
                "no lineage records for batch {batch} (unknown batch id, or the run \
                 was not traced with telemetry enabled)"
            ),
            TelemetryError::HistogramMismatch { metric, detail } => {
                if metric.is_empty() {
                    write!(f, "histogram bounds mismatch: {detail}")
                } else {
                    write!(f, "histogram bounds mismatch on {metric}: {detail}")
                }
            }
        }
    }
}

impl std::error::Error for TelemetryError {}

impl From<TelemetryError> for String {
    fn from(e: TelemetryError) -> String {
        e.to_string()
    }
}
