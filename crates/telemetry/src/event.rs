//! Structured events: the replacement for ad-hoc `eprintln!` warnings.
//!
//! Library code emits [`Event`]s through [`warn`]/[`info`]; a process-wide
//! [`EventSink`] decides where they go. The default sink writes the
//! classic `warning: …` line to stderr, so behaviour is unchanged for CLI
//! users — but tests (and the CLI's `--telemetry-out` dump) can swap in a
//! [`CaptureSink`] and observe every event instead of scraping stderr.

use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Progress notices ("wrote 4 partition files…").
    Info,
    /// Degraded-but-continuing conditions (non-finite green window, …).
    Warning,
}

impl Severity {
    /// Stable label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
        }
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Severity class.
    pub severity: Severity,
    /// Emitting subsystem ("estimator", "cli", "recovery", …).
    pub target: String,
    /// Human-readable message.
    pub message: String,
}

/// Where events go.
pub trait EventSink: Send + Sync {
    /// Consume one event.
    fn emit(&self, event: &Event);
}

/// The default sink: `warning:`-prefixed lines on stderr (infos get no
/// prefix, matching the pre-telemetry CLI notices).
pub struct StderrSink;

impl EventSink for StderrSink {
    fn emit(&self, event: &Event) {
        match event.severity {
            Severity::Warning => eprintln!("warning: {}", event.message),
            Severity::Info => eprintln!("{}", event.message),
        }
    }
}

/// A sink that buffers events for later inspection (tests, JSON dumps).
#[derive(Default)]
pub struct CaptureSink {
    events: Mutex<Vec<Event>>,
}

impl CaptureSink {
    /// Fresh empty capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of everything captured so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }
}

impl EventSink for CaptureSink {
    fn emit(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

/// Forward each event to both sinks (e.g. stderr *and* a capture buffer).
pub struct TeeSink(pub Arc<dyn EventSink>, pub Arc<dyn EventSink>);

impl EventSink for TeeSink {
    fn emit(&self, event: &Event) {
        self.0.emit(event);
        self.1.emit(event);
    }
}

fn global_sink() -> &'static RwLock<Arc<dyn EventSink>> {
    static SINK: OnceLock<RwLock<Arc<dyn EventSink>>> = OnceLock::new();
    SINK.get_or_init(|| RwLock::new(Arc::new(StderrSink)))
}

/// Replace the process-wide sink, returning the previous one.
pub fn set_sink(sink: Arc<dyn EventSink>) -> Arc<dyn EventSink> {
    std::mem::replace(&mut *global_sink().write(), sink)
}

/// Emit one event through the process-wide sink.
pub fn emit(severity: Severity, target: &str, message: String) {
    let event = Event {
        severity,
        target: target.to_string(),
        message,
    };
    global_sink().read().emit(&event);
}

/// Emit a warning.
pub fn warn(target: &str, message: String) {
    emit(Severity::Warning, target, message);
}

/// Emit an informational notice.
pub fn info(target: &str, message: String) {
    emit(Severity::Info, target, message);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_sink_sees_events_and_restores() {
        let capture = Arc::new(CaptureSink::new());
        let previous = set_sink(capture.clone());
        warn("test", "something degraded".into());
        info("test", "progress".into());
        set_sink(previous);
        // Emitting after restore must not land in the capture.
        warn("test", "later".into());
        let events = capture.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].severity, Severity::Warning);
        assert_eq!(events[0].target, "test");
        assert_eq!(events[1].severity, Severity::Info);
    }

    #[test]
    fn tee_duplicates() {
        let a = Arc::new(CaptureSink::new());
        let b = Arc::new(CaptureSink::new());
        let tee = TeeSink(a.clone(), b.clone());
        tee.emit(&Event {
            severity: Severity::Info,
            target: "t".into(),
            message: "m".into(),
        });
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
    }
}
