//! Chrome `trace_event` exporter.
//!
//! Produces a JSON object trace (`{"traceEvents": [...]}`) that loads
//! directly in `about:tracing` or <https://ui.perfetto.dev>. Two
//! synthetic processes keep the clock domains apart (mixing them on one
//! timeline would be meaningless):
//!
//! * pid 1 — "planning (wall clock)": the planner track.
//! * pid 2 — "cluster (sim clock)": the coordinator track plus one thread
//!   per node.
//!
//! Spans are emitted as matched `B`/`E` pairs (depth-first over the
//! parent forest of each track, so nesting is explicit), instants as `i`
//! events, and tracks are named through `M` metadata events. Within a
//! track, events are merged in non-decreasing timestamp order — the
//! property the `report` validator re-checks on the way back in.

use std::collections::BTreeMap;

use crate::json::Value;
use crate::span::{ClockDomain, SpanRecord, Track};
use crate::TelemetrySnapshot;

/// Chrome pid for wall-clock tracks.
const PID_WALL: u64 = 1;
/// Chrome pid for sim-clock tracks.
const PID_SIM: u64 = 2;

fn pid_tid(track: Track, domain: ClockDomain) -> (u64, u64) {
    let pid = match domain {
        ClockDomain::Wall => PID_WALL,
        ClockDomain::Sim => PID_SIM,
    };
    let tid = match track {
        Track::Planner => 1,
        Track::Coordinator => 1,
        Track::Node(i) => 10 + i as u64,
    };
    (pid, tid)
}

fn micros(seconds: f64) -> f64 {
    seconds * 1e6
}

fn args_value(attrs: &[(String, String)]) -> Value {
    Value::Obj(
        attrs
            .iter()
            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
            .collect(),
    )
}

struct ChromeEvent {
    ts_us: f64,
    value: Value,
}

fn span_event(span: &SpanRecord, ph: &str) -> ChromeEvent {
    let (pid, tid) = pid_tid(span.track, span.domain);
    let ts_us = micros(if ph == "B" { span.start_s } else { span.end_s });
    let mut fields = vec![
        ("name", Value::Str(span.name.clone())),
        ("cat", Value::Str(span.domain.label().into())),
        ("ph", Value::Str(ph.into())),
        ("ts", Value::Num(ts_us)),
        ("pid", Value::Num(pid as f64)),
        ("tid", Value::Num(tid as f64)),
    ];
    if ph == "B" && !span.attrs.is_empty() {
        fields.push(("args", args_value(&span.attrs)));
    }
    ChromeEvent {
        ts_us,
        value: Value::obj(fields),
    }
}

/// Emit one track's spans depth-first as B/E pairs. `children` maps a
/// span's position to its child positions (sorted by start time), `roots`
/// are the track's parentless spans.
fn emit_spans(
    spans: &[&SpanRecord],
    roots: &[usize],
    children: &BTreeMap<usize, Vec<usize>>,
    out: &mut Vec<ChromeEvent>,
) {
    fn visit(
        idx: usize,
        spans: &[&SpanRecord],
        children: &BTreeMap<usize, Vec<usize>>,
        out: &mut Vec<ChromeEvent>,
    ) {
        out.push(span_event(spans[idx], "B"));
        if let Some(kids) = children.get(&idx) {
            for &kid in kids {
                visit(kid, spans, children, out);
            }
        }
        out.push(span_event(spans[idx], "E"));
    }
    for &root in roots {
        visit(root, spans, children, out);
    }
}

/// Render the snapshot as a chrome-trace JSON document.
pub fn chrome_trace(snapshot: &TelemetrySnapshot) -> String {
    let mut events: Vec<Value> = Vec::new();

    // Group spans and instants by (track, domain) so each chrome (pid,
    // tid) timeline is assembled — and ordered — independently.
    let mut tracks: BTreeMap<(u64, u64), (Track, ClockDomain)> = BTreeMap::new();
    let mut spans_by_track: BTreeMap<(u64, u64), Vec<&SpanRecord>> = BTreeMap::new();
    for span in &snapshot.spans {
        let key = pid_tid(span.track, span.domain);
        tracks.entry(key).or_insert((span.track, span.domain));
        spans_by_track.entry(key).or_default().push(span);
    }
    let mut instants_by_track: BTreeMap<(u64, u64), Vec<ChromeEvent>> = BTreeMap::new();
    for inst in &snapshot.instants {
        let key = pid_tid(inst.track, inst.domain);
        tracks.entry(key).or_insert((inst.track, inst.domain));
        let (pid, tid) = key;
        let ts_us = micros(inst.ts_s);
        let mut fields = vec![
            ("name", Value::Str(inst.name.clone())),
            ("cat", Value::Str(inst.domain.label().into())),
            ("ph", Value::Str("i".into())),
            ("ts", Value::Num(ts_us)),
            ("pid", Value::Num(pid as f64)),
            ("tid", Value::Num(tid as f64)),
            ("s", Value::Str("t".into())),
        ];
        if !inst.attrs.is_empty() {
            fields.push(("args", args_value(&inst.attrs)));
        }
        instants_by_track.entry(key).or_default().push(ChromeEvent {
            ts_us,
            value: Value::obj(fields),
        });
    }

    // Process / thread naming metadata.
    let mut seen_pids = Vec::new();
    for (&(pid, tid), &(track, _)) in &tracks {
        if !seen_pids.contains(&pid) {
            seen_pids.push(pid);
            let pname = if pid == PID_WALL {
                "planning (wall clock)"
            } else {
                "cluster (sim clock)"
            };
            events.push(Value::obj(vec![
                ("name", Value::Str("process_name".into())),
                ("ph", Value::Str("M".into())),
                ("pid", Value::Num(pid as f64)),
                ("tid", Value::Num(0.0)),
                (
                    "args",
                    Value::obj(vec![("name", Value::Str(pname.into()))]),
                ),
            ]));
        }
        events.push(Value::obj(vec![
            ("name", Value::Str("thread_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::Num(pid as f64)),
            ("tid", Value::Num(tid as f64)),
            (
                "args",
                Value::obj(vec![("name", Value::Str(track.label()))]),
            ),
        ]));
    }

    for &key in tracks.keys() {
        let spans = spans_by_track.remove(&key).unwrap_or_default();
        // Rebuild the parent forest inside this track. Parent references
        // pointing outside the track (or unrecorded) degrade to roots.
        let id_to_idx: BTreeMap<u64, usize> =
            spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut roots: Vec<usize> = Vec::new();
        let mut children: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, span) in spans.iter().enumerate() {
            match id_to_idx.get(&span.parent) {
                Some(&p) if span.parent != 0 => children.entry(p).or_default().push(i),
                _ => roots.push(i),
            }
        }
        let by_start = |list: &mut Vec<usize>| {
            list.sort_by(|&a, &b| {
                spans[a]
                    .start_s
                    .total_cmp(&spans[b].start_s)
                    .then(spans[a].id.cmp(&spans[b].id))
            });
        };
        by_start(&mut roots);
        for kids in children.values_mut() {
            by_start(kids);
        }
        let mut span_events = Vec::new();
        emit_spans(&spans, &roots, &children, &mut span_events);

        // Merge instants by timestamp (stable: span events first on ties,
        // so an instant recorded at a span boundary lands inside it).
        let mut instants = instants_by_track.remove(&key).unwrap_or_default();
        instants.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
        let mut merged: Vec<ChromeEvent> = Vec::with_capacity(span_events.len() + instants.len());
        let mut ii = instants.into_iter().peekable();
        for ev in span_events {
            while let Some(inst) = ii.next_if(|inst| inst.ts_us < ev.ts_us) {
                merged.push(inst);
            }
            merged.push(ev);
        }
        merged.extend(ii);
        events.extend(merged.into_iter().map(|e| e.value));
    }

    Value::obj(vec![
        ("traceEvents", Value::Arr(events)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::validate_chrome_trace;
    use crate::{json, SpanId, Telemetry};

    #[test]
    fn nested_and_sequential_spans_emit_matched_pairs() {
        let tel = Telemetry::enabled();
        let root = tel.span(
            Track::Planner,
            "plan",
            ClockDomain::Wall,
            0.0,
            4.0,
            SpanId::NONE,
            vec![],
        );
        tel.span(Track::Planner, "sketch", ClockDomain::Wall, 0.0, 1.0, root, vec![]);
        tel.span(Track::Planner, "stratify", ClockDomain::Wall, 1.0, 2.0, root, vec![]);
        tel.span(
            Track::Node(0),
            "exec",
            ClockDomain::Sim,
            0.0,
            2.0,
            SpanId::NONE,
            vec![],
        );
        tel.span(
            Track::Node(0),
            "exec",
            ClockDomain::Sim,
            2.0,
            3.0,
            SpanId::NONE,
            vec![],
        );
        tel.instant(Track::Node(0), "crash", ClockDomain::Sim, 2.5, vec![]);
        let text = chrome_trace(&tel.snapshot());
        let doc = json::parse(&text).unwrap();
        let stats = validate_chrome_trace(&doc).expect("well-formed trace");
        assert_eq!(stats.span_pairs, 5);
        assert_eq!(stats.instants, 1);
        assert!(stats.tracks >= 2);
    }

    #[test]
    fn instants_land_in_timestamp_order() {
        let tel = Telemetry::enabled();
        // Recorded out of order on purpose: the exporter must sort.
        tel.instant(Track::Coordinator, "replan", ClockDomain::Sim, 5.0, vec![]);
        tel.instant(Track::Coordinator, "replan", ClockDomain::Sim, 2.0, vec![]);
        let text = chrome_trace(&tel.snapshot());
        let doc = json::parse(&text).unwrap();
        validate_chrome_trace(&doc).expect("well-formed trace");
    }

    #[test]
    fn cross_track_parent_degrades_to_root() {
        let tel = Telemetry::enabled();
        let planner = tel.span(
            Track::Planner,
            "plan",
            ClockDomain::Wall,
            0.0,
            1.0,
            SpanId::NONE,
            vec![],
        );
        // Parent lives on another track: must not corrupt nesting.
        tel.span(Track::Node(0), "exec", ClockDomain::Sim, 0.0, 1.0, planner, vec![]);
        let text = chrome_trace(&tel.snapshot());
        let doc = json::parse(&text).unwrap();
        let stats = validate_chrome_trace(&doc).expect("well-formed trace");
        assert_eq!(stats.span_pairs, 2);
    }
}
