//! Prometheus text exposition format (text/plain; version 0.0.4).

use std::fmt::Write as _;

use crate::metrics::MetricKey;
use crate::TelemetrySnapshot;

fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, String)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape(&v));
    }
    out.push('}');
}

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn type_line(out: &mut String, last: &mut Option<String>, name: &str, kind: &str) {
    if last.as_deref() != Some(name) {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        *last = Some(name.to_string());
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else if v.is_nan() {
        "NaN".into()
    } else if v > 0.0 {
        "+Inf".into()
    } else {
        "-Inf".into()
    }
}

/// Render the snapshot's metrics registry in Prometheus text format.
/// Series appear in sorted `(name, labels)` order, so output is
/// deterministic.
pub fn prometheus_text(snapshot: &TelemetrySnapshot) -> String {
    let reg = &snapshot.metrics;
    let mut out = String::new();
    let mut last: Option<String> = None;

    for (key, value) in &reg.counters {
        type_line(&mut out, &mut last, &key.name, "counter");
        render_sample(&mut out, key, &value.to_string());
    }
    let mut last = None;
    for (key, value) in &reg.gauges {
        type_line(&mut out, &mut last, &key.name, "gauge");
        render_sample(&mut out, key, &fmt_f64(*value));
    }
    let mut last = None;
    for (key, hist) in &reg.histograms {
        type_line(&mut out, &mut last, &key.name, "histogram");
        let mut cumulative = 0u64;
        for (i, count) in hist.counts.iter().enumerate() {
            cumulative += count;
            let le = hist
                .bounds
                .get(i)
                .map(|&b| fmt_f64(b))
                .unwrap_or_else(|| "+Inf".into());
            let _ = write!(out, "{}_bucket", key.name);
            write_labels(&mut out, &key.labels, Some(("le", le)));
            let _ = writeln!(out, " {cumulative}");
        }
        let _ = write!(out, "{}_sum", key.name);
        write_labels(&mut out, &key.labels, None);
        let _ = writeln!(out, " {}", fmt_f64(hist.sum));
        let _ = write!(out, "{}_count", key.name);
        write_labels(&mut out, &key.labels, None);
        let _ = writeln!(out, " {}", hist.count);
    }
    out
}

fn render_sample(out: &mut String, key: &MetricKey, value: &str) {
    out.push_str(&key.name);
    write_labels(out, &key.labels, None);
    let _ = writeln!(out, " {value}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn renders_all_three_kinds() {
        let tel = Telemetry::enabled();
        tel.counter_add("pareto_retries_total", &[("node", "2")], 3);
        tel.gauge_set("pareto_makespan_s", &[], 12.5);
        tel.observe("pareto_item_s", &[], 0.05, &[0.1, 1.0]);
        tel.observe("pareto_item_s", &[], 5.0, &[0.1, 1.0]);
        let text = prometheus_text(&tel.snapshot());
        assert!(text.contains("# TYPE pareto_retries_total counter"));
        assert!(text.contains("pareto_retries_total{node=\"2\"} 3"));
        assert!(text.contains("# TYPE pareto_makespan_s gauge"));
        assert!(text.contains("pareto_makespan_s 12.5"));
        assert!(text.contains("pareto_item_s_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("pareto_item_s_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("pareto_item_s_count 2"));
    }

    #[test]
    fn buckets_are_cumulative() {
        let tel = Telemetry::enabled();
        for v in [0.05, 0.5, 2.0] {
            tel.observe("h_s", &[], v, &[0.1, 1.0]);
        }
        let text = prometheus_text(&tel.snapshot());
        assert!(text.contains("h_s_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("h_s_bucket{le=\"1.0\"} 2"));
        assert!(text.contains("h_s_bucket{le=\"+Inf\"} 3"));
    }
}
