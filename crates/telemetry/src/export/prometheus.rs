//! Prometheus text exposition format (text/plain; version 0.0.4).

use std::fmt::Write as _;

use crate::metrics::MetricKey;
use crate::TelemetrySnapshot;

fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, String)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape(&v));
    }
    out.push('}');
}

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn type_line(out: &mut String, last: &mut Option<String>, name: &str, kind: &str) {
    if last.as_deref() != Some(name) {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        *last = Some(name.to_string());
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else if v.is_nan() {
        "NaN".into()
    } else if v > 0.0 {
        "+Inf".into()
    } else {
        "-Inf".into()
    }
}

/// Render the snapshot's metrics registry in Prometheus text format.
/// Series appear in sorted `(name, labels)` order, so output is
/// deterministic.
pub fn prometheus_text(snapshot: &TelemetrySnapshot) -> String {
    let reg = &snapshot.metrics;
    let mut out = String::new();
    let mut last: Option<String> = None;

    for (key, value) in &reg.counters {
        type_line(&mut out, &mut last, &key.name, "counter");
        render_sample(&mut out, key, &value.to_string());
    }
    let mut last = None;
    for (key, value) in &reg.gauges {
        type_line(&mut out, &mut last, &key.name, "gauge");
        render_sample(&mut out, key, &fmt_f64(*value));
    }
    let mut last = None;
    for (key, hist) in &reg.histograms {
        type_line(&mut out, &mut last, &key.name, "histogram");
        let mut cumulative = 0u64;
        for (i, count) in hist.counts.iter().enumerate() {
            cumulative += count;
            let le = hist
                .bounds
                .get(i)
                .map(|&b| fmt_f64(b))
                .unwrap_or_else(|| "+Inf".into());
            let _ = write!(out, "{}_bucket", key.name);
            write_labels(&mut out, &key.labels, Some(("le", le)));
            let _ = writeln!(out, " {cumulative}");
        }
        let _ = write!(out, "{}_sum", key.name);
        write_labels(&mut out, &key.labels, None);
        let _ = writeln!(out, " {}", fmt_f64(hist.sum));
        let _ = write!(out, "{}_count", key.name);
        write_labels(&mut out, &key.labels, None);
        let _ = writeln!(out, " {}", hist.count);
    }
    out
}

fn render_sample(out: &mut String, key: &MetricKey, value: &str) {
    out.push_str(&key.name);
    write_labels(out, &key.labels, None);
    let _ = writeln!(out, " {value}");
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse().ok(),
    }
}

/// Parse one `key="value"` label list body (the text between `{` and
/// `}`), honouring the exposition escapes (`\\`, `\"`, `\n`). Returns the
/// label pairs or a description of the malformation.
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    loop {
        rest = rest.trim_start_matches(',');
        if rest.is_empty() {
            return Ok(labels);
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let name = &rest[..eq];
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("bad label name {name:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("label value for {name:?} is not quoted"));
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let close = loop {
            match chars.next() {
                None => return Err(format!("unterminated label value for {name:?}")),
                Some((i, '"')) => break i,
                Some((_, '\\')) => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in label {name:?}")),
                },
                Some((_, c)) => value.push(c),
            }
        };
        labels.push((name.to_string(), value));
        rest = &rest[close + 1..];
        if !rest.is_empty() && !rest.starts_with(',') {
            return Err(format!("junk after label value: {rest:?}"));
        }
    }
}

/// Validate Prometheus text-exposition output (the checks CI and the unit
/// suite gate on):
///
/// * every sample line parses as `name[{labels}] value` with well-formed,
///   properly escaped label values;
/// * every series declared `# TYPE <name> histogram` emits cumulative
///   (non-decreasing) `_bucket` counts ending in a `le="+Inf"` bucket,
///   plus `_sum` and `_count` samples whose `_count` equals the `+Inf`
///   bucket.
///
/// Returns the first malformation found, typed
/// ([`crate::TelemetryError::MalformedExposition`]); never panics.
pub fn validate_exposition(text: &str) -> Result<(), crate::TelemetryError> {
    validate_exposition_inner(text)
        .map_err(|detail| crate::TelemetryError::MalformedExposition { detail })
}

fn validate_exposition_inner(text: &str) -> Result<(), String> {
    use std::collections::BTreeMap;

    #[derive(Default)]
    struct HistSeries {
        last_bucket: f64,
        bucket_lines: usize,
        saw_inf_last: bool,
        sum: Option<f64>,
        count: Option<f64>,
    }

    let mut histogram_types: Vec<String> = Vec::new();
    let mut hists: BTreeMap<(String, String), HistSeries> = BTreeMap::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            if parts.next() == Some("TYPE") {
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without a metric name"))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without a kind"))?;
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(format!("line {lineno}: unknown TYPE kind {kind:?}"));
                }
                if kind == "histogram" {
                    histogram_types.push(name.to_string());
                }
            }
            continue;
        }
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {lineno}: no value on sample line {line:?}"))?;
        let name = &line[..name_end];
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {lineno}: bad metric name {name:?}"));
        }
        let (labels, value_text) = if line[name_end..].starts_with('{') {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("line {lineno}: unclosed label braces"))?;
            if close < name_end {
                return Err(format!("line {lineno}: unclosed label braces"));
            }
            let labels = parse_labels(&line[name_end + 1..close])
                .map_err(|e| format!("line {lineno}: {e}"))?;
            (labels, line[close + 1..].trim())
        } else {
            (Vec::new(), line[name_end..].trim())
        };
        let value = parse_value(value_text)
            .ok_or_else(|| format!("line {lineno}: bad sample value {value_text:?}"))?;

        for base in &histogram_types {
            let suffix = &name[base.len().min(name.len())..];
            if !name.starts_with(base.as_str())
                || !matches!(suffix, "_bucket" | "_sum" | "_count")
            {
                continue;
            }
            let series_labels: Vec<&(String, String)> =
                labels.iter().filter(|(k, _)| k != "le").collect();
            let series_key = (
                base.clone(),
                series_labels
                    .iter()
                    .map(|(k, v)| format!("{k}={v},"))
                    .collect::<String>(),
            );
            let h = hists.entry(series_key).or_default();
            match suffix {
                "_bucket" => {
                    let le = labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .map(|(_, v)| v.as_str())
                        .ok_or_else(|| format!("line {lineno}: {name} without an le label"))?;
                    if value < h.last_bucket {
                        return Err(format!(
                            "line {lineno}: {base} buckets not cumulative ({value} < {})",
                            h.last_bucket
                        ));
                    }
                    h.last_bucket = value;
                    h.bucket_lines += 1;
                    h.saw_inf_last = le == "+Inf";
                }
                "_sum" => h.sum = Some(value),
                "_count" => h.count = Some(value),
                // The suffix filter above admits only the three arms; a
                // no-op (rather than a panic) keeps the validator total.
                _ => {}
            }
            break;
        }
    }

    for ((name, labels), h) in &hists {
        let what = if labels.is_empty() {
            name.clone()
        } else {
            format!("{name}{{{labels}}}")
        };
        if h.bucket_lines == 0 {
            return Err(format!("histogram {what}: no _bucket samples"));
        }
        if !h.saw_inf_last {
            return Err(format!("histogram {what}: last bucket is not le=\"+Inf\""));
        }
        if h.sum.is_none() {
            return Err(format!("histogram {what}: missing _sum"));
        }
        match h.count {
            None => return Err(format!("histogram {what}: missing _count")),
            Some(c) if c != h.last_bucket => {
                return Err(format!(
                    "histogram {what}: _count {c} != +Inf bucket {}",
                    h.last_bucket
                ))
            }
            Some(_) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn renders_all_three_kinds() {
        let tel = Telemetry::enabled();
        tel.counter_add("pareto_retries_total", &[("node", "2")], 3);
        tel.gauge_set("pareto_makespan_s", &[], 12.5);
        tel.observe("pareto_item_s", &[], 0.05, &[0.1, 1.0]);
        tel.observe("pareto_item_s", &[], 5.0, &[0.1, 1.0]);
        let text = prometheus_text(&tel.snapshot());
        assert!(text.contains("# TYPE pareto_retries_total counter"));
        assert!(text.contains("pareto_retries_total{node=\"2\"} 3"));
        assert!(text.contains("# TYPE pareto_makespan_s gauge"));
        assert!(text.contains("pareto_makespan_s 12.5"));
        assert!(text.contains("pareto_item_s_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("pareto_item_s_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("pareto_item_s_count 2"));
    }

    #[test]
    fn buckets_are_cumulative() {
        let tel = Telemetry::enabled();
        for v in [0.05, 0.5, 2.0] {
            tel.observe("h_s", &[], v, &[0.1, 1.0]);
        }
        let text = prometheus_text(&tel.snapshot());
        assert!(text.contains("h_s_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("h_s_bucket{le=\"1.0\"} 2"));
        assert!(text.contains("h_s_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn exporter_output_passes_conformance() {
        let tel = Telemetry::enabled();
        tel.counter_add("pareto_retries_total", &[("node", "2")], 3);
        tel.gauge_set("pareto_makespan_s", &[], 12.5);
        for v in [0.05, 0.5, 2.0, -1.0, f64::NAN] {
            tel.observe("pareto_item_s", &[("stage", "exec")], v, &[0.1, 1.0]);
        }
        // Label values exercising every escape: backslash, quote, newline.
        tel.counter_add("pareto_paths_total", &[("path", "a\\b\"c\nd")], 1);
        let text = prometheus_text(&tel.snapshot());
        validate_exposition(&text).unwrap();
        assert!(text.contains("path=\"a\\\\b\\\"c\\nd\""));
    }

    #[test]
    fn malformed_exposition_text_is_rejected() {
        // Non-cumulative buckets.
        let bad_cumulative = "\
# TYPE h_s histogram
h_s_bucket{le=\"0.1\"} 3
h_s_bucket{le=\"+Inf\"} 1
h_s_sum 1.0
h_s_count 1
";
        assert!(validate_exposition(bad_cumulative)
            .unwrap_err()
            .to_string()
            .contains("not cumulative"));

        // Missing +Inf bucket.
        let no_inf = "\
# TYPE h_s histogram
h_s_bucket{le=\"0.1\"} 1
h_s_sum 1.0
h_s_count 1
";
        assert!(validate_exposition(no_inf)
            .unwrap_err()
            .to_string()
            .contains("+Inf"));

        // Missing _sum / _count.
        let no_sum = "\
# TYPE h_s histogram
h_s_bucket{le=\"+Inf\"} 1
h_s_count 1
";
        assert!(validate_exposition(no_sum).unwrap_err().to_string().contains("_sum"));
        let no_count = "\
# TYPE h_s histogram
h_s_bucket{le=\"+Inf\"} 1
h_s_sum 1.0
";
        assert!(validate_exposition(no_count).unwrap_err().to_string().contains("_count"));

        // _count disagreeing with the +Inf bucket.
        let bad_count = "\
# TYPE h_s histogram
h_s_bucket{le=\"+Inf\"} 2
h_s_sum 1.0
h_s_count 5
";
        assert!(validate_exposition(bad_count)
            .unwrap_err()
            .to_string()
            .contains("!= +Inf bucket"));

        // Unescaped quote inside a label value.
        assert!(validate_exposition("c_total{path=\"a\"b\"} 1\n").is_err());
        // Unquoted label value.
        assert!(validate_exposition("c_total{node=2} 1\n").is_err());
        // Garbage value.
        assert!(validate_exposition("c_total 1.2.3\n").is_err());
        // No value at all.
        assert!(validate_exposition("c_total\n").is_err());
    }

    #[test]
    fn empty_registry_exports_empty_and_valid() {
        let tel = Telemetry::enabled();
        let text = prometheus_text(&tel.snapshot());
        assert!(text.is_empty());
        validate_exposition(&text).unwrap();
    }
}
