//! The structured JSON dump: every span, instant, metric series, and
//! captured event in one self-describing document (`version: 1`). This is
//! the format `paretofab report` consumes.

use crate::json::Value;
use crate::ledger::BusyInterval;
use crate::span::{InstantRecord, SpanRecord};
use crate::{Event, TelemetrySnapshot};

fn attrs_value(attrs: &[(String, String)]) -> Value {
    Value::Obj(
        attrs
            .iter()
            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
            .collect(),
    )
}

pub(crate) fn span_value(s: &SpanRecord) -> Value {
    Value::obj(vec![
        ("id", Value::Num(s.id as f64)),
        (
            "parent",
            if s.parent == 0 {
                Value::Null
            } else {
                Value::Num(s.parent as f64)
            },
        ),
        ("track", Value::Str(s.track.label())),
        ("name", Value::Str(s.name.clone())),
        ("clock", Value::Str(s.domain.label().into())),
        ("start_s", Value::Num(s.start_s)),
        ("end_s", Value::Num(s.end_s)),
        ("attrs", attrs_value(&s.attrs)),
    ])
}

pub(crate) fn instant_value(i: &InstantRecord) -> Value {
    Value::obj(vec![
        ("track", Value::Str(i.track.label())),
        ("name", Value::Str(i.name.clone())),
        ("clock", Value::Str(i.domain.label().into())),
        ("ts_s", Value::Num(i.ts_s)),
        ("attrs", attrs_value(&i.attrs)),
    ])
}

fn ledger_value(iv: &BusyInterval) -> Value {
    Value::obj(vec![
        ("node", Value::Num(iv.node as f64)),
        ("stage", Value::Str(iv.stage.clone())),
        (
            "stratum",
            iv.stratum.map(|s| Value::Num(s as f64)).unwrap_or(Value::Null),
        ),
        ("start_s", Value::Num(iv.start_s)),
        ("end_s", Value::Num(iv.end_s)),
        ("busy0_s", Value::Num(iv.busy0_s)),
        ("busy1_s", Value::Num(iv.busy1_s)),
    ])
}

fn labels_value(labels: &[(String, String)]) -> Value {
    Value::Obj(
        labels
            .iter()
            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
            .collect(),
    )
}

/// Serialize a snapshot (plus any captured events) as the version-1 JSON
/// dump.
pub fn json_dump(snapshot: &TelemetrySnapshot, events: &[Event]) -> String {
    let reg = &snapshot.metrics;
    let counters = Value::Arr(
        reg.counters
            .iter()
            .map(|(k, v)| {
                Value::obj(vec![
                    ("name", Value::Str(k.name.clone())),
                    ("labels", labels_value(&k.labels)),
                    ("value", Value::Num(*v as f64)),
                ])
            })
            .collect(),
    );
    let gauges = Value::Arr(
        reg.gauges
            .iter()
            .map(|(k, v)| {
                Value::obj(vec![
                    ("name", Value::Str(k.name.clone())),
                    ("labels", labels_value(&k.labels)),
                    ("value", Value::Num(*v)),
                ])
            })
            .collect(),
    );
    let histograms = Value::Arr(
        reg.histograms
            .iter()
            .map(|(k, h)| {
                let buckets = Value::Arr(
                    h.counts
                        .iter()
                        .enumerate()
                        .map(|(i, &c)| {
                            Value::obj(vec![
                                (
                                    "le",
                                    h.bounds.get(i).map(|&b| Value::Num(b)).unwrap_or(Value::Null),
                                ),
                                ("count", Value::Num(c as f64)),
                            ])
                        })
                        .collect(),
                );
                Value::obj(vec![
                    ("name", Value::Str(k.name.clone())),
                    ("labels", labels_value(&k.labels)),
                    ("buckets", buckets),
                    ("sum", Value::Num(h.sum)),
                    ("count", Value::Num(h.count as f64)),
                ])
            })
            .collect(),
    );
    let events = Value::Arr(
        events
            .iter()
            .map(|e| {
                Value::obj(vec![
                    ("severity", Value::Str(e.severity.label().into())),
                    ("target", Value::Str(e.target.clone())),
                    ("message", Value::Str(e.message.clone())),
                ])
            })
            .collect(),
    );
    Value::obj(vec![
        ("version", Value::Num(1.0)),
        (
            "spans",
            Value::Arr(snapshot.spans.iter().map(span_value).collect()),
        ),
        (
            "instants",
            Value::Arr(snapshot.instants.iter().map(instant_value).collect()),
        ),
        (
            "ledger",
            Value::Arr(snapshot.ledger.iter().map(ledger_value).collect()),
        ),
        (
            "metrics",
            Value::obj(vec![
                ("counters", counters),
                ("gauges", gauges),
                ("histograms", histograms),
            ]),
        ),
        ("events", events),
    ])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{json, ClockDomain, Severity, SpanId, Telemetry, Track};

    #[test]
    fn dump_parses_and_carries_everything() {
        let tel = Telemetry::enabled();
        let root = tel.span(
            Track::Planner,
            "plan",
            ClockDomain::Wall,
            0.0,
            2.0,
            SpanId::NONE,
            vec![("records".into(), "100".into())],
        );
        tel.span(Track::Planner, "sketch", ClockDomain::Wall, 0.0, 1.0, root, vec![]);
        tel.instant(Track::Node(1), "crash", ClockDomain::Sim, 4.5, vec![]);
        tel.counter_add("c_total", &[("node", "1")], 2);
        tel.gauge_set("g", &[], 0.5);
        tel.observe("h_s", &[], 0.2, &[0.1, 1.0]);
        let events = [Event {
            severity: Severity::Warning,
            target: "estimator".into(),
            message: "degraded".into(),
        }];
        let text = json_dump(&tel.snapshot(), &events);
        let doc = json::parse(&text).unwrap();
        assert_eq!(doc.get("version").unwrap().as_f64(), Some(1.0));
        assert_eq!(doc.get("spans").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("instants").unwrap().as_arr().unwrap().len(), 1);
        let metrics = doc.get("metrics").unwrap();
        assert_eq!(metrics.get("counters").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(metrics.get("gauges").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(
            metrics.get("histograms").unwrap().as_arr().unwrap().len(),
            1
        );
        let events = doc.get("events").unwrap().as_arr().unwrap();
        assert_eq!(events[0].get("severity").unwrap().as_str(), Some("warning"));
        // Child span carries its parent id.
        let spans = doc.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(
            spans[1].get("parent").unwrap().as_f64(),
            spans[0].get("id").unwrap().as_f64()
        );
    }
}
