//! Minimal JSON value, writer, and parser.
//!
//! The workspace has no registry access, so there is no serde; exporters
//! hand-build [`Value`]s and the `report` machinery parses files back with
//! the recursive-descent parser here. The subset is full JSON minus two
//! deliberate relaxations: non-finite numbers are *written* as `null`
//! (they never carry meaning in telemetry dumps), and parsing accepts the
//! same.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document node. Objects use a `BTreeMap` so serialization is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field accessor.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Build an object from entries.
    pub fn obj(entries: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serialize to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.is_finite() {
                    // `{:?}` gives a round-trippable shortest form for f64.
                    let _ = write!(out, "{n:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document; the whole input must be one value plus optional
/// trailing whitespace. Malformations are typed
/// ([`TelemetryError::Json`]), never panics.
///
/// [`TelemetryError::Json`]: crate::TelemetryError::Json
pub fn parse(input: &str) -> Result<Value, crate::TelemetryError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let inner = |bytes: &[u8], pos: &mut usize| -> Result<Value, String> {
        let value = parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        if *pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    };
    inner(bytes, &mut pos).map_err(|detail| crate::TelemetryError::Json { detail })
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            c as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']' at byte {pos}, found {other:?}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    other => return Err(format!("expected ',' or '}}' at byte {pos}, found {other:?}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let mut chunk_start = *pos;
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos]).map_err(|e| e.to_string())?,
                );
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos]).map_err(|e| e.to_string())?,
                );
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed for telemetry
                        // dumps; map lone surrogates to the replacement
                        // character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
                chunk_start = *pos;
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Value::obj(vec![
            ("name", Value::Str("sketch \"fast\"\npath\\x".into())),
            ("count", Value::Num(42.0)),
            ("ratio", Value::Num(0.125)),
            ("flag", Value::Bool(true)),
            ("none", Value::Null),
            (
                "items",
                Value::Arr(vec![Value::Num(1.0), Value::Num(-2.5e-3)]),
            ),
        ]);
        let text = doc.to_json();
        let back = parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = parse(" { \"a\" : [ 1 , \"\\u00e9\" ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_str(),
            Some("é")
        );
    }
}
