//! The metrics registry: counters, gauges, and histograms.
//!
//! Metrics are keyed by `(name, sorted label pairs)` in `BTreeMap`s so
//! every export walks them in one deterministic order regardless of the
//! order in which they were touched — counter increments commute, which is
//! what lets parallel code sections record counters without perturbing
//! determinism (spans, by contrast, must only be recorded from serial
//! code).

use std::collections::BTreeMap;

/// A metric identity: name plus label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (`pareto_recovery_retries_total`).
    pub name: String,
    /// Label pairs, kept sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key; labels are sorted so `{a, b}` and `{b, a}` collide.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// Fixed-bucket histogram (cumulative counts exported Prometheus-style).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bucket bounds, strictly increasing; an implicit `+Inf` bucket
    /// follows.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; `counts.len() ==
    /// bounds.len() + 1` with the last slot the `+Inf` bucket.
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Fold another histogram into this one (per-bucket count sums plus
    /// `sum`/`count`). The bucket bounds must match exactly — merging
    /// differently-bucketed histograms would silently misbin, so it is a
    /// typed error ([`crate::TelemetryError::HistogramMismatch`]) instead.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), crate::TelemetryError> {
        if self.bounds != other.bounds {
            return Err(crate::TelemetryError::HistogramMismatch {
                metric: String::new(),
                detail: format!("{:?} vs {:?}", self.bounds, other.bounds),
            });
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
        Ok(())
    }
}

/// Default histogram bounds for durations in seconds (log-spaced).
pub const DURATION_BOUNDS_S: &[f64] = &[
    1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0, 3600.0,
];

/// Default histogram bounds for sizes/counts (log-spaced).
pub const SIZE_BOUNDS: &[f64] = &[
    1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7,
];

/// Counter of plan-cache events, labelled `{event=hit|miss|evict,
/// stage=<stage name>}`. Recorded by the incremental planning engine's
/// stage driver; CI's cache-reuse job greps it out of the `report`
/// subcommand to assert that warm α sweeps actually reuse artifacts.
pub const PLAN_CACHE_EVENTS_TOTAL: &str = "pareto_plan_cache_events_total";

/// Counter of frontier-explorer candidate points, labelled
/// `{outcome=kept|dominated}` — kept points form the reported frontier,
/// dominated ones were solved but filtered out.
pub const FRONTIER_POINTS_TOTAL: &str = "pareto_frontier_points_total";

/// Counter of scalarized LP solves spent by the frontier explorer
/// (coarse grid + adaptive bisections).
pub const FRONTIER_LP_SOLVES_TOTAL: &str = "pareto_frontier_lp_solves_total";

/// Counter of partition-LP solves, labelled `{start=cold|warm}`. A `warm`
/// solve re-seeded a previous optimal basis and was accepted as provably
/// bit-identical to the cold path; a `cold` solve ran two-phase simplex
/// from scratch (including deterministic fallbacks from abandoned warm
/// attempts, which are additionally counted by
/// [`LP_WARM_FALLBACKS_TOTAL`]). Inert: recording never changes plans.
pub const LP_SOLVES_TOTAL: &str = "pareto_lp_solves_total";

/// Counter of warm-start attempts that were abandoned (shape mismatch,
/// singular or dual-infeasible basis, degeneracy, or a non-unique optimum)
/// and deterministically fell back to the cold path.
pub const LP_WARM_FALLBACKS_TOTAL: &str = "pareto_lp_warm_fallbacks_total";

/// Counter of simplex pivots spent by partition-LP solves, labelled
/// `{start=cold|warm}` like [`LP_SOLVES_TOTAL`]. The warm-vs-cold pivot
/// saving asserted by the bench gate and the warm-sweep tests reads off
/// this counter.
pub const LP_PIVOTS_TOTAL: &str = "pareto_lp_pivots_total";

/// Counter of plan-service requests, labelled `{outcome=served|degraded|
/// shed|error}`. Every admitted or shed request increments exactly one
/// outcome, so the series total equals the request count — the soak
/// harness reconciles the two. Inert: recording never changes plans.
pub const SERVICE_REQUESTS_TOTAL: &str = "pareto_service_requests_total";

/// Counter of per-tenant circuit-breaker transitions, labelled
/// `{to=open|half_open|closed}`. A trip to `open` means K consecutive
/// solver failures; `closed` means a half-open probe succeeded.
pub const SERVICE_BREAKER_TRANSITIONS_TOTAL: &str = "pareto_service_breaker_transitions_total";

/// Counter of client-side retry attempts (first tries excluded),
/// labelled `{reason=shed|error}`.
pub const SERVICE_RETRIES_TOTAL: &str = "pareto_service_retries_total";

/// Counter of requests folded into an in-flight identical computation by
/// the coalescer instead of planning independently.
pub const SERVICE_COALESCED_TOTAL: &str = "pareto_service_coalesced_total";

/// The registry proper.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    /// Monotonic counters.
    pub counters: BTreeMap<MetricKey, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<MetricKey, f64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<MetricKey, Histogram>,
}

impl MetricsRegistry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `v` to a counter (creating it at zero).
    pub fn counter_add(&mut self, key: MetricKey, v: u64) {
        *self.counters.entry(key).or_insert(0) += v;
    }

    /// Set a gauge.
    pub fn gauge_set(&mut self, key: MetricKey, v: f64) {
        self.gauges.insert(key, v);
    }

    /// Observe a value into a histogram created with `bounds` on first
    /// touch (later observations reuse the original bounds).
    pub fn observe(&mut self, key: MetricKey, v: f64, bounds: &[f64]) {
        self.histograms
            .entry(key)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// Total number of registered series.
    pub fn series_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Fold another registry into this one: counters add, gauges take the
    /// other side's value (last write wins), histograms merge per-bucket.
    /// Fails (leaving the overlapping series merged so far) on a
    /// histogram bounds mismatch.
    pub fn merge(&mut self, other: &MetricsRegistry) -> Result<(), crate::TelemetryError> {
        for (key, v) in &other.counters {
            self.counter_add(key.clone(), *v);
        }
        for (key, v) in &other.gauges {
            self.gauge_set(key.clone(), *v);
        }
        for (key, h) in &other.histograms {
            match self.histograms.get_mut(key) {
                Some(mine) => mine.merge(h).map_err(|e| match e {
                    crate::TelemetryError::HistogramMismatch { detail, .. } => {
                        crate::TelemetryError::HistogramMismatch {
                            metric: key.name.to_string(),
                            detail,
                        }
                    }
                    other => other,
                })?,
                None => {
                    self.histograms.insert(key.clone(), h.clone());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_keys_normalize() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add(MetricKey::new("x_total", &[("a", "1"), ("b", "2")]), 3);
        reg.counter_add(MetricKey::new("x_total", &[("b", "2"), ("a", "1")]), 4);
        assert_eq!(reg.counters.len(), 1);
        assert_eq!(
            reg.counters[&MetricKey::new("x_total", &[("a", "1"), ("b", "2")])],
            7
        );
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut reg = MetricsRegistry::new();
        let key = MetricKey::new("g", &[]);
        reg.gauge_set(key.clone(), 1.5);
        reg.gauge_set(key.clone(), 2.5);
        assert_eq!(reg.gauges[&key], 2.5);
    }

    #[test]
    fn histogram_buckets_and_inf_overflow() {
        let mut reg = MetricsRegistry::new();
        let key = MetricKey::new("h", &[]);
        for v in [0.05, 0.5, 0.5, 99.0] {
            reg.observe(key.clone(), v, &[0.1, 1.0]);
        }
        let h = &reg.histograms[&key];
        assert_eq!(h.counts, vec![1, 2, 1]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 100.05).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_observations_land_in_edge_buckets() {
        let mut reg = MetricsRegistry::new();
        let key = MetricKey::new("h", &[]);
        // Below every bound -> first bucket; above every bound (and NaN,
        // for which `v <= b` is false) -> +Inf bucket.
        for v in [-5.0, f64::NEG_INFINITY] {
            reg.observe(key.clone(), v, &[0.1, 1.0]);
        }
        for v in [1e9, f64::INFINITY, f64::NAN] {
            reg.observe(key.clone(), v, &[0.1, 1.0]);
        }
        let h = &reg.histograms[&key];
        assert_eq!(h.counts, vec![2, 0, 3]);
        assert_eq!(h.count, 5);
    }

    #[test]
    fn histogram_merge_adds_buckets_and_rejects_bounds_mismatch() {
        let mut reg_a = MetricsRegistry::new();
        let mut reg_b = MetricsRegistry::new();
        let key = MetricKey::new("h", &[("node", "0")]);
        for v in [0.05, 0.5] {
            reg_a.observe(key.clone(), v, &[0.1, 1.0]);
        }
        for v in [0.07, 5.0, 9.0] {
            reg_b.observe(key.clone(), v, &[0.1, 1.0]);
        }
        let mut merged = reg_a.histograms[&key].clone();
        merged.merge(&reg_b.histograms[&key]).unwrap();
        assert_eq!(merged.counts, vec![2, 1, 2]);
        assert_eq!(merged.count, 5);
        assert!((merged.sum - 14.62).abs() < 1e-9);

        let mut other_bounds = MetricsRegistry::new();
        other_bounds.observe(key.clone(), 0.5, &[0.25, 2.0]);
        let err = merged
            .merge(&other_bounds.histograms[&key])
            .unwrap_err();
        assert!(err.to_string().contains("bounds mismatch"));
    }

    #[test]
    fn registry_merge_combines_all_three_kinds() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.counter_add(MetricKey::new("c_total", &[]), 2);
        b.counter_add(MetricKey::new("c_total", &[]), 3);
        b.counter_add(MetricKey::new("only_b_total", &[]), 1);
        a.gauge_set(MetricKey::new("g", &[]), 1.0);
        b.gauge_set(MetricKey::new("g", &[]), 7.0);
        a.observe(MetricKey::new("h", &[]), 0.05, &[0.1]);
        b.observe(MetricKey::new("h", &[]), 5.0, &[0.1]);
        b.observe(MetricKey::new("h2", &[]), 5.0, &[0.1]);
        a.merge(&b).unwrap();
        assert_eq!(a.counters[&MetricKey::new("c_total", &[])], 5);
        assert_eq!(a.counters[&MetricKey::new("only_b_total", &[])], 1);
        assert_eq!(a.gauges[&MetricKey::new("g", &[])], 7.0);
        assert_eq!(a.histograms[&MetricKey::new("h", &[])].counts, vec![1, 1]);
        assert_eq!(a.histograms[&MetricKey::new("h2", &[])].count, 1);

        let mut clash = MetricsRegistry::new();
        clash.observe(MetricKey::new("h", &[]), 0.5, &[9.9]);
        assert!(a.merge(&clash).is_err());
    }

    #[test]
    fn label_ordering_is_deterministic_across_insertion_orders() {
        let forward = MetricKey::new("m", &[("a", "1"), ("b", "2"), ("c", "3")]);
        let reverse = MetricKey::new("m", &[("c", "3"), ("b", "2"), ("a", "1")]);
        assert_eq!(forward, reverse);
        assert_eq!(
            forward.labels,
            vec![
                ("a".to_string(), "1".to_string()),
                ("b".to_string(), "2".to_string()),
                ("c".to_string(), "3".to_string()),
            ]
        );
    }

    #[test]
    fn iteration_order_is_sorted() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add(MetricKey::new("z", &[]), 1);
        reg.counter_add(MetricKey::new("a", &[("n", "2")]), 1);
        reg.counter_add(MetricKey::new("a", &[("n", "1")]), 1);
        let names: Vec<String> = reg
            .counters
            .keys()
            .map(|k| format!("{}{:?}", k.name, k.labels))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
