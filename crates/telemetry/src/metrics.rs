//! The metrics registry: counters, gauges, and histograms.
//!
//! Metrics are keyed by `(name, sorted label pairs)` in `BTreeMap`s so
//! every export walks them in one deterministic order regardless of the
//! order in which they were touched — counter increments commute, which is
//! what lets parallel code sections record counters without perturbing
//! determinism (spans, by contrast, must only be recorded from serial
//! code).

use std::collections::BTreeMap;

/// A metric identity: name plus label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (`pareto_recovery_retries_total`).
    pub name: String,
    /// Label pairs, kept sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key; labels are sorted so `{a, b}` and `{b, a}` collide.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// Fixed-bucket histogram (cumulative counts exported Prometheus-style).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bucket bounds, strictly increasing; an implicit `+Inf` bucket
    /// follows.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; `counts.len() ==
    /// bounds.len() + 1` with the last slot the `+Inf` bucket.
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }
}

/// Default histogram bounds for durations in seconds (log-spaced).
pub const DURATION_BOUNDS_S: &[f64] = &[
    1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0, 3600.0,
];

/// Default histogram bounds for sizes/counts (log-spaced).
pub const SIZE_BOUNDS: &[f64] = &[
    1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7,
];

/// Counter of plan-cache events, labelled `{event=hit|miss|evict,
/// stage=<stage name>}`. Recorded by the incremental planning engine's
/// stage driver; CI's cache-reuse job greps it out of the `report`
/// subcommand to assert that warm α sweeps actually reuse artifacts.
pub const PLAN_CACHE_EVENTS_TOTAL: &str = "pareto_plan_cache_events_total";

/// Counter of frontier-explorer candidate points, labelled
/// `{outcome=kept|dominated}` — kept points form the reported frontier,
/// dominated ones were solved but filtered out.
pub const FRONTIER_POINTS_TOTAL: &str = "pareto_frontier_points_total";

/// Counter of scalarized LP solves spent by the frontier explorer
/// (coarse grid + adaptive bisections).
pub const FRONTIER_LP_SOLVES_TOTAL: &str = "pareto_frontier_lp_solves_total";

/// The registry proper.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    /// Monotonic counters.
    pub counters: BTreeMap<MetricKey, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<MetricKey, f64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<MetricKey, Histogram>,
}

impl MetricsRegistry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `v` to a counter (creating it at zero).
    pub fn counter_add(&mut self, key: MetricKey, v: u64) {
        *self.counters.entry(key).or_insert(0) += v;
    }

    /// Set a gauge.
    pub fn gauge_set(&mut self, key: MetricKey, v: f64) {
        self.gauges.insert(key, v);
    }

    /// Observe a value into a histogram created with `bounds` on first
    /// touch (later observations reuse the original bounds).
    pub fn observe(&mut self, key: MetricKey, v: f64, bounds: &[f64]) {
        self.histograms
            .entry(key)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// Total number of registered series.
    pub fn series_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_keys_normalize() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add(MetricKey::new("x_total", &[("a", "1"), ("b", "2")]), 3);
        reg.counter_add(MetricKey::new("x_total", &[("b", "2"), ("a", "1")]), 4);
        assert_eq!(reg.counters.len(), 1);
        assert_eq!(
            reg.counters[&MetricKey::new("x_total", &[("a", "1"), ("b", "2")])],
            7
        );
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut reg = MetricsRegistry::new();
        let key = MetricKey::new("g", &[]);
        reg.gauge_set(key.clone(), 1.5);
        reg.gauge_set(key.clone(), 2.5);
        assert_eq!(reg.gauges[&key], 2.5);
    }

    #[test]
    fn histogram_buckets_and_inf_overflow() {
        let mut reg = MetricsRegistry::new();
        let key = MetricKey::new("h", &[]);
        for v in [0.05, 0.5, 0.5, 99.0] {
            reg.observe(key.clone(), v, &[0.1, 1.0]);
        }
        let h = &reg.histograms[&key];
        assert_eq!(h.counts, vec![1, 2, 1]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 100.05).abs() < 1e-9);
    }

    #[test]
    fn iteration_order_is_sorted() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add(MetricKey::new("z", &[]), 1);
        reg.counter_add(MetricKey::new("a", &[("n", "2")]), 1);
        reg.counter_add(MetricKey::new("a", &[("n", "1")]), 1);
        let names: Vec<String> = reg
            .counters
            .keys()
            .map(|k| format!("{}{:?}", k.name, k.labels))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
