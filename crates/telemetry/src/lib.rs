//! Deterministic, zero-decision-feedback instrumentation for the Pareto
//! framework.
//!
//! The contract that makes this layer safe to thread through every hot
//! path is **inertness**: nothing a [`Telemetry`] recorder returns ever
//! feeds back into a planning or execution decision, so a run with
//! telemetry enabled produces bit-identical plans and
//! `RecoveryReport`s to a run with it disabled (the
//! `telemetry_inertness` integration suite enforces this across thread
//! counts and fault plans).
//!
//! Three kinds of data are collected:
//!
//! * **Spans** ([`span`]) — hierarchical intervals on per-track timelines
//!   (planner, coordinator, one per node), stamped with the *simulated*
//!   clock wherever one exists and the wall clock otherwise.
//! * **Metrics** ([`metrics`]) — counters, gauges, and histograms keyed by
//!   name + labels, walked in sorted order by every exporter.
//! * **Events** ([`event`]) — structured warnings/notices with a
//!   process-wide sink (stderr by default, capturable in tests).
//!
//! Exporters ([`export`]) render a [`TelemetrySnapshot`] as Prometheus
//! text, a structured JSON dump, or a chrome-trace (`trace_event`) file
//! that loads directly in `about:tracing` / Perfetto; [`report`] parses
//! and validates those files back (monotonic timestamps per track,
//! matched B/E pairs).

pub mod error;
pub mod event;
pub mod export;
pub mod flight;
pub mod json;
pub mod ledger;
pub mod metrics;
pub mod report;
pub mod span;

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

pub use error::TelemetryError;
pub use event::{CaptureSink, Event, EventSink, Severity, StderrSink, TeeSink};
pub use flight::{FlightFrame, FlightRecorder};
pub use ledger::{BusyInterval, GreenSource, LedgerRow, ReferenceTotal};
pub use metrics::{MetricKey, MetricsRegistry, DURATION_BOUNDS_S, SIZE_BOUNDS};
pub use span::{Attrs, ClockDomain, InstantRecord, SpanId, SpanRecord, Track};

#[derive(Debug, Default)]
struct Recorder {
    spans: Vec<SpanRecord>,
    instants: Vec<InstantRecord>,
    ledger: Vec<BusyInterval>,
    metrics: MetricsRegistry,
    next_id: u64,
}

/// Everything a recorder collected, cloned out for export. `PartialEq` so
/// tests can compare snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// All closed spans, in recording order.
    pub spans: Vec<SpanRecord>,
    /// All instant markers, in recording order.
    pub instants: Vec<InstantRecord>,
    /// Busy intervals recorded for the energy ledger, in recording order.
    pub ledger: Vec<BusyInterval>,
    /// The metrics registry.
    pub metrics: MetricsRegistry,
}

/// The recorder handle. Cheap to share (`Arc`), internally synchronized,
/// and a no-op in the disabled state — the recording fast path is one
/// branch on a plain bool.
///
/// Recording rules that preserve determinism of the *data*:
/// * spans and instants may only be recorded from serial code (their
///   `Vec` order is part of the exported artifact);
/// * parallel code may only add to counters, which commute.
pub struct Telemetry {
    enabled: bool,
    epoch: Instant,
    inner: Mutex<Recorder>,
}

impl Telemetry {
    /// An enabled recorder; its wall epoch is the moment of creation.
    pub fn enabled() -> Arc<Telemetry> {
        Arc::new(Telemetry {
            enabled: true,
            epoch: Instant::now(),
            inner: Mutex::new(Recorder::default()),
        })
    }

    /// A disabled recorder: every record call is a no-op.
    pub fn disabled() -> Arc<Telemetry> {
        Arc::new(Telemetry {
            enabled: false,
            epoch: Instant::now(),
            inner: Mutex::new(Recorder::default()),
        })
    }

    /// Whether this recorder records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Wall-clock seconds since this recorder's epoch (for
    /// [`ClockDomain::Wall`] stamps).
    pub fn wall_now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Record a closed span; returns its id for use as a parent handle.
    /// No-op (returning [`SpanId::NONE`]) when disabled.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        track: Track,
        name: &str,
        domain: ClockDomain,
        start_s: f64,
        end_s: f64,
        parent: SpanId,
        attrs: Attrs,
    ) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        let mut inner = self.inner.lock();
        inner.next_id += 1;
        let id = inner.next_id;
        inner.spans.push(SpanRecord {
            id,
            parent: parent.0,
            track,
            name: name.to_string(),
            domain,
            start_s,
            end_s: end_s.max(start_s),
            attrs,
        });
        SpanId(id)
    }

    /// Record a zero-duration marker. No-op when disabled.
    pub fn instant(&self, track: Track, name: &str, domain: ClockDomain, ts_s: f64, attrs: Attrs) {
        if !self.enabled {
            return;
        }
        self.inner.lock().instants.push(InstantRecord {
            track,
            name: name.to_string(),
            domain,
            ts_s,
            attrs,
        });
    }

    /// Record one busy interval for the energy ledger. `start_s..end_s`
    /// is the simulated-timeline position (display only);
    /// `busy0_s..busy1_s` is the node's cumulative-busy range, the axis
    /// attribution integrates on (see [`ledger`]). Serial code only —
    /// recording order is part of the exported artifact. No-op when
    /// disabled.
    #[allow(clippy::too_many_arguments)]
    pub fn ledger_interval(
        &self,
        node: usize,
        stage: &str,
        stratum: Option<u32>,
        start_s: f64,
        end_s: f64,
        busy0_s: f64,
        busy1_s: f64,
    ) {
        if !self.enabled {
            return;
        }
        self.inner.lock().ledger.push(BusyInterval {
            node,
            stage: stage.to_string(),
            stratum,
            start_s,
            end_s: end_s.max(start_s),
            busy0_s,
            busy1_s: busy1_s.max(busy0_s),
        });
    }

    /// Add to a counter. Safe from parallel sections (increments commute).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        if !self.enabled {
            return;
        }
        self.inner
            .lock()
            .metrics
            .counter_add(MetricKey::new(name, labels), v);
    }

    /// Set a gauge (last write wins).
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        if !self.enabled {
            return;
        }
        self.inner
            .lock()
            .metrics
            .gauge_set(MetricKey::new(name, labels), v);
    }

    /// Observe into a histogram created with `bounds` on first touch.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], v: f64, bounds: &[f64]) {
        if !self.enabled {
            return;
        }
        self.inner
            .lock()
            .metrics
            .observe(MetricKey::new(name, labels), v, bounds);
    }

    /// Clone out everything recorded so far.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.inner.lock();
        TelemetrySnapshot {
            spans: inner.spans.clone(),
            instants: inner.instants.clone(),
            ledger: inner.ledger.clone(),
            metrics: inner.metrics.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let tel = Telemetry::disabled();
        let id = tel.span(
            Track::Planner,
            "plan",
            ClockDomain::Wall,
            0.0,
            1.0,
            SpanId::NONE,
            vec![],
        );
        assert_eq!(id, SpanId::NONE);
        tel.instant(Track::Coordinator, "x", ClockDomain::Sim, 0.0, vec![]);
        tel.ledger_interval(0, "exec", None, 0.0, 1.0, 0.0, 1.0);
        tel.counter_add("c", &[], 1);
        tel.gauge_set("g", &[], 1.0);
        tel.observe("h", &[], 1.0, DURATION_BOUNDS_S);
        let snap = tel.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.instants.is_empty());
        assert!(snap.ledger.is_empty());
        assert_eq!(snap.metrics.series_count(), 0);
    }

    #[test]
    fn spans_get_increasing_ids_and_parents() {
        let tel = Telemetry::enabled();
        let root = tel.span(
            Track::Planner,
            "plan",
            ClockDomain::Wall,
            0.0,
            4.0,
            SpanId::NONE,
            vec![("records".into(), "100".into())],
        );
        let child = tel.span(
            Track::Planner,
            "sketch",
            ClockDomain::Wall,
            0.0,
            1.0,
            root,
            vec![],
        );
        assert!(root.is_some() && child.is_some());
        assert!(child.0 > root.0);
        let snap = tel.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[1].parent, root.0);
    }

    #[test]
    fn span_end_clamped_to_start() {
        let tel = Telemetry::enabled();
        tel.span(
            Track::Node(0),
            "exec",
            ClockDomain::Sim,
            5.0,
            4.0,
            SpanId::NONE,
            vec![],
        );
        let snap = tel.snapshot();
        assert_eq!(snap.spans[0].end_s, 5.0);
    }

    #[test]
    fn wall_now_is_monotonic() {
        let tel = Telemetry::enabled();
        let a = tel.wall_now();
        let b = tel.wall_now();
        assert!(b >= a);
    }
}
