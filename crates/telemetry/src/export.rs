//! Exporters: render a [`TelemetrySnapshot`](crate::TelemetrySnapshot)
//! as Prometheus text, a structured JSON dump, or a chrome-trace file.

mod chrome;
pub(crate) mod json_dump;
mod prometheus;

pub use chrome::chrome_trace;
pub use json_dump::json_dump;
pub use prometheus::{prometheus_text, validate_exposition};
