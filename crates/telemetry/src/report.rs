//! Parsing, validation, and human summaries of exported telemetry.
//!
//! `paretofab report` (and the CI telemetry job) use this module to prove
//! that exported artifacts are well-formed: the JSON parses, every chrome
//! track's timestamps are monotonically non-decreasing, and every `B` has
//! a matching `E` with the same name at the same nesting depth.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::Value;
use crate::TelemetryError;

/// What a chrome-trace validation saw.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChromeStats {
    /// Total events (including metadata).
    pub events: usize,
    /// Matched B/E span pairs.
    pub span_pairs: usize,
    /// Instant (`i`) events.
    pub instants: usize,
    /// Distinct (pid, tid) tracks carrying events.
    pub tracks: usize,
}

/// Validate a parsed chrome-trace document: per-track monotonic `ts`,
/// matched/same-name `B`/`E` pairs, no unclosed spans. Malformations are
/// typed ([`TelemetryError::MalformedTrace`]), never panics.
pub fn validate_chrome_trace(doc: &Value) -> Result<ChromeStats, TelemetryError> {
    validate_chrome_trace_inner(doc)
        .map_err(|detail| TelemetryError::MalformedTrace { detail })
}

fn validate_chrome_trace_inner(doc: &Value) -> Result<ChromeStats, String> {
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or("missing traceEvents array")?;
    let mut stats = ChromeStats {
        events: events.len(),
        ..ChromeStats::default()
    };
    // Per (pid, tid): (last ts, stack of open B names).
    let mut track_state: BTreeMap<(u64, u64), (f64, Vec<String>)> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue; // metadata carries no timestamp semantics
        }
        let name = ev
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ts = ev
            .get("ts")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        let pid = ev
            .get("pid")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event {i}: missing pid"))? as u64;
        let tid = ev
            .get("tid")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event {i}: missing tid"))? as u64;
        let state = track_state
            .entry((pid, tid))
            .or_insert((f64::NEG_INFINITY, Vec::new()));
        if ts < state.0 {
            return Err(format!(
                "event {i} ({name:?}): ts {ts} goes backwards on track ({pid},{tid}) \
                 (previous {})",
                state.0
            ));
        }
        state.0 = ts;
        match ph {
            "B" => state.1.push(name.to_string()),
            "E" => {
                let open = state.1.pop().ok_or_else(|| {
                    format!("event {i} ({name:?}): E without open B on track ({pid},{tid})")
                })?;
                if open != name {
                    return Err(format!(
                        "event {i}: E {name:?} closes B {open:?} on track ({pid},{tid})"
                    ));
                }
                stats.span_pairs += 1;
            }
            "i" | "I" => stats.instants += 1,
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }
    for ((pid, tid), (_, stack)) in &track_state {
        if !stack.is_empty() {
            return Err(format!(
                "track ({pid},{tid}): {} unclosed span(s), first {:?}",
                stack.len(),
                stack[0]
            ));
        }
    }
    stats.tracks = track_state.len();
    Ok(stats)
}

/// What a dump validation saw.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DumpStats {
    /// Spans in the dump.
    pub spans: usize,
    /// Instant markers.
    pub instants: usize,
    /// Metric series (counters + gauges + histograms).
    pub series: usize,
    /// Captured events.
    pub events: usize,
}

/// Validate a parsed version-1 telemetry dump: required sections present,
/// spans well-formed (end ≥ start, known clock), parents resolvable.
/// Malformations are typed ([`TelemetryError::MalformedDump`]), never
/// panics.
pub fn validate_dump(doc: &Value) -> Result<DumpStats, TelemetryError> {
    validate_dump_inner(doc).map_err(|detail| TelemetryError::MalformedDump { detail })
}

fn validate_dump_inner(doc: &Value) -> Result<DumpStats, String> {
    if doc.get("version").and_then(|v| v.as_f64()) != Some(1.0) {
        return Err("not a version-1 telemetry dump".into());
    }
    let spans = doc
        .get("spans")
        .and_then(|v| v.as_arr())
        .ok_or("missing spans array")?;
    let mut ids = std::collections::BTreeSet::new();
    for (i, span) in spans.iter().enumerate() {
        let id = span
            .get("id")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("span {i}: missing id"))?;
        ids.insert(id as u64);
        let start = span
            .get("start_s")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("span {i}: missing start_s"))?;
        let end = span
            .get("end_s")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("span {i}: missing end_s"))?;
        if end < start {
            return Err(format!("span {i}: end {end} < start {start}"));
        }
        match span.get("clock").and_then(|v| v.as_str()) {
            Some("wall") | Some("sim") => {}
            other => return Err(format!("span {i}: bad clock {other:?}")),
        }
    }
    for (i, span) in spans.iter().enumerate() {
        if let Some(parent) = span.get("parent").and_then(|v| v.as_f64()) {
            if !ids.contains(&(parent as u64)) {
                return Err(format!("span {i}: dangling parent {parent}"));
            }
        }
    }
    let instants = doc
        .get("instants")
        .and_then(|v| v.as_arr())
        .ok_or("missing instants array")?;
    let metrics = doc.get("metrics").ok_or("missing metrics object")?;
    let mut series = 0;
    for section in ["counters", "gauges", "histograms"] {
        series += metrics
            .get(section)
            .and_then(|v| v.as_arr())
            .ok_or_else(|| format!("missing metrics.{section}"))?
            .len();
    }
    let events = doc
        .get("events")
        .and_then(|v| v.as_arr())
        .ok_or("missing events array")?;
    Ok(DumpStats {
        spans: spans.len(),
        instants: instants.len(),
        series,
        events: events.len(),
    })
}

/// Render a human summary of a validated dump: the span tree with
/// durations, top-level metrics, and captured warnings.
pub fn summarize_dump(doc: &Value) -> Result<String, TelemetryError> {
    let stats = validate_dump(doc)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "telemetry dump: {} spans, {} instants, {} metric series, {} events",
        stats.spans, stats.instants, stats.series, stats.events
    );

    // Span forest, grouped per track.
    let spans = doc.get("spans").and_then(|v| v.as_arr()).unwrap_or(&[]);
    let mut by_track: BTreeMap<&str, Vec<&Value>> = BTreeMap::new();
    for span in spans {
        let track = span.get("track").and_then(|v| v.as_str()).unwrap_or("?");
        by_track.entry(track).or_default().push(span);
    }
    let all_instants = doc.get("instants").and_then(|v| v.as_arr()).unwrap_or(&[]);
    for inst in all_instants {
        let track = inst.get("track").and_then(|v| v.as_str()).unwrap_or("?");
        by_track.entry(track).or_default();
    }
    for (track, spans) in &by_track {
        let _ = writeln!(out, "\n[{track}]");
        let mut children: BTreeMap<u64, Vec<&Value>> = BTreeMap::new();
        let mut roots: Vec<&Value> = Vec::new();
        for span in spans {
            match span.get("parent").and_then(|v| v.as_f64()) {
                Some(p) => children.entry(p as u64).or_default().push(span),
                None => roots.push(span),
            }
        }
        fn emit(
            span: &Value,
            depth: usize,
            children: &BTreeMap<u64, Vec<&Value>>,
            out: &mut String,
        ) {
            let name = span.get("name").and_then(|v| v.as_str()).unwrap_or("?");
            let start = span.get("start_s").and_then(|v| v.as_f64()).unwrap_or(0.0);
            let end = span.get("end_s").and_then(|v| v.as_f64()).unwrap_or(start);
            let clock = span.get("clock").and_then(|v| v.as_str()).unwrap_or("?");
            let _ = writeln!(
                out,
                "{:indent$}{name}  {:.6}s..{:.6}s  ({:.6}s, {clock})",
                "",
                start,
                end,
                end - start,
                indent = 2 * depth
            );
            let id = span.get("id").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
            if let Some(kids) = children.get(&id) {
                for kid in kids {
                    emit(kid, depth + 1, children, out);
                }
            }
        }
        for root in roots {
            emit(root, 1, &children, &mut out);
        }
        let instants = doc.get("instants").and_then(|v| v.as_arr()).unwrap_or(&[]);
        for inst in instants {
            if inst.get("track").and_then(|v| v.as_str()) == Some(track) {
                let name = inst.get("name").and_then(|v| v.as_str()).unwrap_or("?");
                let ts = inst.get("ts_s").and_then(|v| v.as_f64()).unwrap_or(0.0);
                let _ = writeln!(out, "  ! {name} @ {ts:.6}s");
            }
        }
    }

    // Counters and gauges, flat.
    if let Some(metrics) = doc.get("metrics") {
        let _ = writeln!(out, "\n[metrics]");
        for section in ["counters", "gauges"] {
            for m in metrics
                .get(section)
                .and_then(|v| v.as_arr())
                .unwrap_or(&[])
            {
                let name = m.get("name").and_then(|v| v.as_str()).unwrap_or("?");
                let value = m.get("value").and_then(|v| v.as_f64()).unwrap_or(f64::NAN);
                let labels = match m.get("labels") {
                    Some(Value::Obj(map)) if !map.is_empty() => {
                        let pairs: Vec<String> = map
                            .iter()
                            .map(|(k, v)| format!("{k}={}", v.as_str().unwrap_or("?")))
                            .collect();
                        format!("{{{}}}", pairs.join(","))
                    }
                    _ => String::new(),
                };
                let _ = writeln!(out, "  {name}{labels} = {value}");
            }
        }
        for m in metrics
            .get("histograms")
            .and_then(|v| v.as_arr())
            .unwrap_or(&[])
        {
            let name = m.get("name").and_then(|v| v.as_str()).unwrap_or("?");
            let count = m.get("count").and_then(|v| v.as_f64()).unwrap_or(0.0);
            let sum = m.get("sum").and_then(|v| v.as_f64()).unwrap_or(0.0);
            let _ = writeln!(out, "  {name} histogram: count={count} sum={sum:.6}");
        }
    }

    // Energy-ledger intervals, when the dump carries any.
    let ledger = doc.get("ledger").and_then(|v| v.as_arr()).unwrap_or(&[]);
    if !ledger.is_empty() {
        let _ = writeln!(out, "\n[ledger]");
        let mut busy_by_stage: BTreeMap<String, (usize, f64)> = BTreeMap::new();
        for iv in ledger {
            let stage = iv
                .get("stage")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string();
            let b0 = iv.get("busy0_s").and_then(|v| v.as_f64()).unwrap_or(0.0);
            let b1 = iv.get("busy1_s").and_then(|v| v.as_f64()).unwrap_or(b0);
            let slot = busy_by_stage.entry(stage).or_insert((0, 0.0));
            slot.0 += 1;
            slot.1 += b1 - b0;
        }
        for (stage, (n, busy)) in &busy_by_stage {
            let _ = writeln!(out, "  {stage}: {n} interval(s), {busy:.6}s busy");
        }
    }

    // Captured warnings last — the part humans scan for.
    let events = doc.get("events").and_then(|v| v.as_arr()).unwrap_or(&[]);
    if !events.is_empty() {
        let _ = writeln!(out, "\n[events]");
        for ev in events {
            let severity = ev.get("severity").and_then(|v| v.as_str()).unwrap_or("?");
            let target = ev.get("target").and_then(|v| v.as_str()).unwrap_or("?");
            let message = ev.get("message").and_then(|v| v.as_str()).unwrap_or("");
            let _ = writeln!(out, "  [{severity}] {target}: {message}");
        }
    }
    Ok(out)
}

/// Reconstruct one item-batch's journey from a dump's `lineage` instants:
/// every hop the batch's items took (placement, crash redistribution,
/// steal, elastic handoff, …), in causal recording order. Errors when the
/// dump carries no lineage records for the batch — either the batch id is
/// unknown or the run wasn't traced
/// ([`TelemetryError::LineageNotFound`]).
pub fn lineage_chain(doc: &Value, batch: u32) -> Result<String, TelemetryError> {
    let instants = doc
        .get("instants")
        .and_then(|v| v.as_arr())
        .ok_or(TelemetryError::MalformedDump {
            detail: "missing instants array".into(),
        })?;
    let want = batch.to_string();
    let mut out = String::new();
    let mut hops = 0usize;
    for inst in instants {
        if inst.get("name").and_then(|v| v.as_str()) != Some("lineage") {
            continue;
        }
        let attrs = inst.get("attrs");
        let attr = |k: &str| {
            attrs
                .and_then(|a| a.get(k))
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string()
        };
        if attr("batch") != want {
            continue;
        }
        let ts = inst.get("ts_s").and_then(|v| v.as_f64()).unwrap_or(0.0);
        let _ = writeln!(
            out,
            "hop {}: {} {} -> {} ({} items) @ {:.6}s",
            attr("hop"),
            attr("kind"),
            attr("from"),
            attr("to"),
            attr("items"),
            ts
        );
        hops += 1;
    }
    if hops == 0 {
        return Err(TelemetryError::LineageNotFound { batch });
    }
    Ok(format!("lineage of batch {batch}: {hops} hop group(s)\n{out}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{chrome_trace, json_dump};
    use crate::{json, ClockDomain, SpanId, Telemetry, Track};

    fn sample() -> crate::TelemetrySnapshot {
        let tel = Telemetry::enabled();
        let root = tel.span(
            Track::Planner,
            "plan",
            ClockDomain::Wall,
            0.0,
            3.0,
            SpanId::NONE,
            vec![],
        );
        tel.span(Track::Planner, "sketch", ClockDomain::Wall, 0.0, 1.0, root, vec![]);
        tel.instant(Track::Node(0), "crash", ClockDomain::Sim, 1.5, vec![]);
        tel.counter_add("c_total", &[], 1);
        tel.snapshot()
    }

    #[test]
    fn valid_dump_passes_and_summarizes() {
        let dump = json_dump(&sample(), &[]);
        let doc = json::parse(&dump).unwrap();
        let stats = validate_dump(&doc).unwrap();
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.series, 1);
        let summary = summarize_dump(&doc).unwrap();
        assert!(summary.contains("[planner]"));
        assert!(summary.contains("sketch"));
        assert!(summary.contains("! crash"));
        assert!(summary.contains("c_total = 1"));
    }

    #[test]
    fn chrome_validator_rejects_backwards_ts() {
        let doc = json::parse(
            r#"{"traceEvents":[
                {"name":"a","ph":"B","ts":10.0,"pid":1,"tid":1},
                {"name":"a","ph":"E","ts":5.0,"pid":1,"tid":1}
            ]}"#,
        )
        .unwrap();
        let err = validate_chrome_trace(&doc).unwrap_err();
        assert!(err.to_string().contains("backwards"), "{err}");
    }

    #[test]
    fn chrome_validator_rejects_mismatched_pairs() {
        let doc = json::parse(
            r#"{"traceEvents":[
                {"name":"a","ph":"B","ts":1.0,"pid":1,"tid":1},
                {"name":"b","ph":"E","ts":2.0,"pid":1,"tid":1}
            ]}"#,
        )
        .unwrap();
        assert!(validate_chrome_trace(&doc).is_err());
        let doc = json::parse(
            r#"{"traceEvents":[{"name":"a","ph":"B","ts":1.0,"pid":1,"tid":1}]}"#,
        )
        .unwrap();
        let err = validate_chrome_trace(&doc).unwrap_err();
        assert!(err.to_string().contains("unclosed"), "{err}");
        let doc = json::parse(
            r#"{"traceEvents":[{"name":"a","ph":"E","ts":1.0,"pid":1,"tid":1}]}"#,
        )
        .unwrap();
        assert!(validate_chrome_trace(&doc).is_err());
    }

    #[test]
    fn exported_trace_validates() {
        let trace = chrome_trace(&sample());
        let doc = json::parse(&trace).unwrap();
        let stats = validate_chrome_trace(&doc).unwrap();
        assert_eq!(stats.span_pairs, 2);
        assert_eq!(stats.instants, 1);
    }

    #[test]
    fn lineage_chain_renders_hops_in_order() {
        let tel = Telemetry::enabled();
        let hop = |hop: u32, kind: &str, from: &str, to: &str, items: u32, ts: f64| {
            tel.instant(
                Track::Coordinator,
                "lineage",
                ClockDomain::Sim,
                ts,
                vec![
                    ("batch".into(), "3".into()),
                    ("hop".into(), hop.to_string()),
                    ("kind".into(), kind.into()),
                    ("from".into(), from.into()),
                    ("to".into(), to.into()),
                    ("items".into(), items.to_string()),
                ],
            );
        };
        hop(0, "place", "-", "node1", 5, 0.0);
        hop(1, "redistribute", "node1", "node0", 3, 2.5);
        hop(2, "steal", "node0", "node2", 1, 4.0);
        // Another batch's hop must not leak in.
        tel.instant(
            Track::Coordinator,
            "lineage",
            ClockDomain::Sim,
            1.0,
            vec![("batch".into(), "9".into()), ("hop".into(), "0".into())],
        );
        let dump = json_dump(&tel.snapshot(), &[]);
        let doc = json::parse(&dump).unwrap();
        let chain = lineage_chain(&doc, 3).unwrap();
        assert!(chain.starts_with("lineage of batch 3: 3 hop group(s)"));
        let p0 = chain.find("hop 0: place - -> node1 (5 items)").unwrap();
        let p1 = chain
            .find("hop 1: redistribute node1 -> node0 (3 items)")
            .unwrap();
        let p2 = chain.find("hop 2: steal node0 -> node2 (1 items)").unwrap();
        assert!(p0 < p1 && p1 < p2);
        assert!(lineage_chain(&doc, 42).is_err());
    }

    #[test]
    fn summary_includes_ledger_section() {
        let tel = Telemetry::enabled();
        tel.ledger_interval(0, "exec", Some(1), 0.0, 2.0, 0.0, 2.0);
        tel.ledger_interval(0, "transfer", None, 2.0, 2.5, 2.0, 2.5);
        let dump = json_dump(&tel.snapshot(), &[]);
        let doc = json::parse(&dump).unwrap();
        let summary = summarize_dump(&doc).unwrap();
        assert!(summary.contains("[ledger]"));
        assert!(summary.contains("exec: 1 interval(s), 2.000000s busy"));
        assert!(summary.contains("transfer: 1 interval(s), 0.500000s busy"));
    }

    #[test]
    fn dump_validator_rejects_dangling_parent() {
        let doc = json::parse(
            r#"{"version":1,"spans":[{"id":1,"parent":99,"track":"planner","name":"x",
                "clock":"wall","start_s":0.0,"end_s":1.0,"attrs":{}}],
                "instants":[],"metrics":{"counters":[],"gauges":[],"histograms":[]},
                "events":[]}"#,
        )
        .unwrap();
        let err = validate_dump(&doc).unwrap_err();
        assert!(err.to_string().contains("dangling"), "{err}");
    }
}
