//! Span and instant records.
//!
//! A *span* is a named interval on a *track* (the planner, the recovery
//! coordinator, or one cluster node), stamped in one of two clock domains:
//!
//! * [`ClockDomain::Sim`] — deterministic simulated seconds, used anywhere
//!   a simulated clock exists (the recovery executor, the cluster's job
//!   accounting). Sim-stamped spans are bit-identical across hosts and
//!   thread counts.
//! * [`ClockDomain::Wall`] — host wall-clock seconds since the recorder's
//!   epoch, used where no simulated clock exists (the planning pipeline).
//!   Wall-stamped spans are observational only and machine-dependent.
//!
//! Spans form a hierarchy through parent ids; exporters rebuild the tree
//! per track. *Instants* are zero-duration markers (a crash, a replan).

/// Identifier of a recorded span. `SpanId::NONE` (0) is returned by a
/// disabled recorder and means "no parent".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null id: no span / disabled recorder.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this id refers to a real recorded span.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// Which clock stamped a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockDomain {
    /// Host wall clock, seconds since the recorder's epoch.
    Wall,
    /// Simulated clock, deterministic seconds.
    Sim,
}

impl ClockDomain {
    /// Stable label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            ClockDomain::Wall => "wall",
            ClockDomain::Sim => "sim",
        }
    }
}

/// Where a record lives in the exported timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// The planning pipeline (wall-clock domain).
    Planner,
    /// The recovery coordinator (replans, fault bookkeeping).
    Coordinator,
    /// One simulated cluster node.
    Node(usize),
}

impl Track {
    /// Stable label used by the exporters ("planner", "coordinator",
    /// "node3").
    pub fn label(&self) -> String {
        match self {
            Track::Planner => "planner".into(),
            Track::Coordinator => "coordinator".into(),
            Track::Node(i) => format!("node{i}"),
        }
    }

    /// Parse an exporter label back into a track.
    pub fn from_label(s: &str) -> Option<Track> {
        match s {
            "planner" => Some(Track::Planner),
            "coordinator" => Some(Track::Coordinator),
            _ => s
                .strip_prefix("node")
                .and_then(|n| n.parse().ok())
                .map(Track::Node),
        }
    }
}

/// Key/value attributes attached to spans and instants.
pub type Attrs = Vec<(String, String)>;

/// One closed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id (> 0).
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Timeline this span belongs to.
    pub track: Track,
    /// Span name ("sketch", "exec", "transfer", …).
    pub name: String,
    /// Clock domain of `start_s`/`end_s`.
    pub domain: ClockDomain,
    /// Start, seconds in `domain`.
    pub start_s: f64,
    /// End, seconds in `domain` (`>= start_s`).
    pub end_s: f64,
    /// Attached attributes.
    pub attrs: Attrs,
}

impl SpanRecord {
    /// Span duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// One zero-duration marker.
#[derive(Debug, Clone, PartialEq)]
pub struct InstantRecord {
    /// Timeline this marker belongs to.
    pub track: Track,
    /// Marker name ("crash", "replan", …).
    pub name: String,
    /// Clock domain of `ts_s`.
    pub domain: ClockDomain,
    /// Timestamp, seconds in `domain`.
    pub ts_s: f64,
    /// Attached attributes.
    pub attrs: Attrs,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_labels_round_trip() {
        for t in [Track::Planner, Track::Coordinator, Track::Node(0), Track::Node(17)] {
            assert_eq!(Track::from_label(&t.label()), Some(t));
        }
        assert_eq!(Track::from_label("nodeX"), None);
        assert_eq!(Track::from_label("bogus"), None);
    }

    #[test]
    fn span_id_none_is_zero() {
        assert!(!SpanId::NONE.is_some());
        assert!(SpanId(3).is_some());
    }
}
