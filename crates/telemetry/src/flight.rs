//! Flight recorder: a bounded ring buffer of recent spans, instants, and
//! events that dumps a deterministic JSON "black box" when something goes
//! wrong (a `PlanError`, an audit violation, a chaos minimal-spec
//! discovery).
//!
//! The recorder is observational only — it subscribes to the same event
//! stream and snapshot data every exporter sees, holds at most `capacity`
//! frames (oldest dropped first), and nothing reads it back on the
//! decision path, so it inherits the telemetry layer's inertness
//! guarantee. Determinism: frames are pushed from serial code (the event
//! sink and post-run snapshot drains), so the ring's order — and therefore
//! the dumped JSON — is a pure function of the run.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::event::{Event, EventSink};
use crate::export::json_dump::{instant_value, span_value};
use crate::json::Value;
use crate::span::{InstantRecord, SpanRecord};
use crate::TelemetrySnapshot;

/// One frame in the ring.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightFrame {
    /// A closed span.
    Span(SpanRecord),
    /// A zero-duration marker.
    Instant(InstantRecord),
    /// A structured event.
    Event(Event),
}

struct Inner {
    frames: VecDeque<FlightFrame>,
    /// Total frames ever pushed (so a dump can say how many were dropped).
    pushed: u64,
}

/// The bounded ring buffer. Cheap to share behind an `Arc`; safe to use
/// as the process event sink.
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` frames (minimum 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                frames: VecDeque::new(),
                pushed: 0,
            }),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Push one frame, evicting the oldest when full.
    pub fn push(&self, frame: FlightFrame) {
        let mut inner = self.inner.lock();
        if inner.frames.len() == self.capacity {
            inner.frames.pop_front();
        }
        inner.frames.push_back(frame);
        inner.pushed += 1;
    }

    /// Drain a telemetry snapshot into the ring: spans first, then
    /// instants, each in their deterministic recording order. Called at
    /// dump time so the black box carries the freshest simulated-timeline
    /// state next to the live event stream.
    pub fn absorb_snapshot(&self, snapshot: &TelemetrySnapshot) {
        for s in &snapshot.spans {
            self.push(FlightFrame::Span(s.clone()));
        }
        for i in &snapshot.instants {
            self.push(FlightFrame::Instant(i.clone()));
        }
    }

    /// Frames currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().frames.is_empty()
    }

    /// Total frames ever pushed (held + dropped).
    pub fn pushed(&self) -> u64 {
        self.inner.lock().pushed
    }

    /// Serialize the ring as the flight-recorder JSON document.
    pub fn dump_json(&self, reason: &str) -> String {
        let inner = self.inner.lock();
        let frames = Value::Arr(
            inner
                .frames
                .iter()
                .map(|f| match f {
                    FlightFrame::Span(s) => Value::obj(vec![
                        ("type", Value::Str("span".into())),
                        ("data", span_value(s)),
                    ]),
                    FlightFrame::Instant(i) => Value::obj(vec![
                        ("type", Value::Str("instant".into())),
                        ("data", instant_value(i)),
                    ]),
                    FlightFrame::Event(e) => Value::obj(vec![
                        ("type", Value::Str("event".into())),
                        (
                            "data",
                            Value::obj(vec![
                                ("severity", Value::Str(e.severity.label().into())),
                                ("target", Value::Str(e.target.clone())),
                                ("message", Value::Str(e.message.clone())),
                            ]),
                        ),
                    ]),
                })
                .collect(),
        );
        let dropped = inner.pushed - inner.frames.len() as u64;
        Value::obj(vec![
            ("version", Value::Num(1.0)),
            ("kind", Value::Str("flight-recorder".into())),
            ("reason", Value::Str(reason.into())),
            ("capacity", Value::Num(self.capacity as f64)),
            ("pushed", Value::Num(inner.pushed as f64)),
            ("dropped", Value::Num(dropped as f64)),
            ("frames", frames),
        ])
        .to_json()
    }
}

impl EventSink for FlightRecorder {
    fn emit(&self, event: &Event) {
        self.push(FlightFrame::Event(event.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Severity;
    use crate::{json, ClockDomain, SpanId, Telemetry, Track};

    fn event(n: u64) -> Event {
        Event {
            severity: Severity::Warning,
            target: "test".into(),
            message: format!("event {n}"),
        }
    }

    #[test]
    fn ring_keeps_only_the_tail() {
        let fr = FlightRecorder::new(3);
        for n in 0..5 {
            fr.push(FlightFrame::Event(event(n)));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.pushed(), 5);
        let text = fr.dump_json("test");
        let doc = json::parse(&text).unwrap();
        assert_eq!(doc.get("dropped").unwrap().as_f64(), Some(2.0));
        let frames = doc.get("frames").unwrap().as_arr().unwrap();
        assert_eq!(frames.len(), 3);
        // Oldest two evicted: the tail starts at event 2.
        assert_eq!(
            frames[0].get("data").unwrap().get("message").unwrap().as_str(),
            Some("event 2")
        );
    }

    #[test]
    fn absorb_snapshot_carries_spans_then_instants() {
        let tel = Telemetry::enabled();
        tel.span(
            Track::Node(0),
            "exec",
            ClockDomain::Sim,
            0.0,
            1.0,
            SpanId::NONE,
            vec![],
        );
        tel.instant(Track::Coordinator, "replan", ClockDomain::Sim, 0.5, vec![]);
        let fr = FlightRecorder::new(16);
        fr.absorb_snapshot(&tel.snapshot());
        let doc = json::parse(&fr.dump_json("unit")).unwrap();
        let frames = doc.get("frames").unwrap().as_arr().unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].get("type").unwrap().as_str(), Some("span"));
        assert_eq!(frames[1].get("type").unwrap().as_str(), Some("instant"));
        assert_eq!(
            frames[1].get("data").unwrap().get("name").unwrap().as_str(),
            Some("replan")
        );
    }

    #[test]
    fn dump_is_deterministic_and_carries_reason() {
        let build = || {
            let fr = FlightRecorder::new(4);
            fr.emit(&event(1));
            fr.emit(&event(2));
            fr.dump_json("audit-violation")
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        let doc = json::parse(&a).unwrap();
        assert_eq!(doc.get("reason").unwrap().as_str(), Some("audit-violation"));
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("flight-recorder"));
    }

    #[test]
    fn capacity_floor_is_one() {
        let fr = FlightRecorder::new(0);
        fr.emit(&event(1));
        fr.emit(&event(2));
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.capacity(), 1);
    }
}
