//! `paretofab frontier` end-to-end: the `--out` JSON is byte-identical
//! across repeated runs and across thread counts, and malformed explorer
//! flags exit nonzero with a diagnostic.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_paretofab"))
}

fn out_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("paretofab-frontier-{name}-{}", std::process::id()));
    p
}

/// Run `frontier` with the given extra args, return the JSON written to
/// `--out` (panicking on a nonzero exit).
fn frontier_json(name: &str, extra: &[&str]) -> String {
    let out = out_path(name);
    let status = bin()
        .args([
            "frontier",
            "--preset",
            "rcv1",
            "--nodes",
            "4",
            "--scale",
            "0.05",
            "--seed",
            "31",
            "--max-points",
            "24",
            "--out",
        ])
        .arg(&out)
        .args(extra)
        .output()
        .expect("spawn paretofab");
    assert!(
        status.status.success(),
        "frontier run failed:\n{}",
        String::from_utf8_lossy(&status.stderr)
    );
    let json = std::fs::read_to_string(&out).expect("read --out file");
    let _ = std::fs::remove_file(&out);
    json
}

#[test]
fn out_json_is_byte_identical_across_runs_and_threads() {
    let first = frontier_json("a", &["--threads", "1"]);
    let again = frontier_json("b", &["--threads", "1"]);
    assert_eq!(first, again, "same invocation produced different JSON");

    let threaded = frontier_json("c", &["--threads", "4"]);
    assert_eq!(
        first, threaded,
        "frontier JSON diverged between --threads 1 and --threads 4"
    );

    // Sanity on shape without a JSON parser: the deterministic writer
    // always emits these keys.
    for key in [
        "\"objectives\"",
        "\"baseline\"",
        "\"report\"",
        "\"points\"",
        "\"knee_alpha\"",
        "\"hypervolume_vs_baseline\"",
    ] {
        assert!(first.contains(key), "missing {key} in {first}");
    }
}

#[test]
fn invalid_explorer_flags_exit_nonzero() {
    let cases: &[&[&str]] = &[
        &["frontier", "--preset", "rcv1", "--objectives", "karma"],
        &["frontier", "--preset", "rcv1", "--objectives", ""],
        &["frontier", "--preset", "rcv1", "--tol", "0"],
        &["frontier", "--preset", "rcv1", "--tol", "-1e-3"],
        &["frontier", "--preset", "rcv1", "--tol", "nan"],
        &["frontier", "--preset", "rcv1", "--tol", "abc"],
        &["frontier", "--preset", "rcv1", "--max-points", "1"],
    ];
    for args in cases {
        let out = bin().args(*args).output().expect("spawn paretofab");
        assert!(
            !out.status.success(),
            "expected nonzero exit for {args:?}"
        );
        assert!(
            !out.stderr.is_empty(),
            "expected a diagnostic on stderr for {args:?}"
        );
    }
}

#[test]
fn valid_invocation_exits_zero_without_out_file() {
    let out = bin()
        .args([
            "frontier",
            "--preset",
            "rcv1",
            "--nodes",
            "4",
            "--scale",
            "0.05",
            "--seed",
            "31",
            "--objectives",
            "time,energy,transfer",
            "--tol",
            "1e-2",
            "--max-points",
            "16",
        ])
        .output()
        .expect("spawn paretofab");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("frontier"), "summary missing: {stdout}");
    assert!(stdout.contains("knee"), "knee line missing: {stdout}");
}
