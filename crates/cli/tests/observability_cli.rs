//! `paretofab` observability surfaces end-to-end: the bench harness
//! records a baseline it can cleanly compare against and fails loudly on
//! an injected regression; a traced faulted run's telemetry dump
//! validates through `report` and `report lineage` reconstructs the
//! crashed batch's hop chain deterministically; the flight recorder
//! dumps its ring when a run dies.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_paretofab"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("paretofab-obs-{name}-{}", std::process::id()));
    p
}

/// Small, fast bench matrix shared by the regression tests.
const BENCH_ARGS: [&str; 8] = [
    "bench", "--scale", "0.02", "--nodes", "4", "--seed", "7", "--iters",
];

fn bench(extra: &[&str]) -> std::process::Output {
    bin()
        .args(BENCH_ARGS)
        .arg("1")
        .args(extra)
        .output()
        .expect("spawn paretofab bench")
}

/// Recording a baseline and immediately comparing against it passes; an
/// injected synthetic regression (a gated metric the current run cannot
/// produce) exits nonzero with a `bench-regression:` diagnostic.
#[test]
fn bench_baseline_round_trip_and_injected_regression() {
    let record = tmp("bench.json");
    let out = bench(&["--record", record.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "bench --record failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&record).expect("read bench record");
    for key in ["\"bench\"", "cold_plan.makespan_s", "faulted_run.green_kj"] {
        assert!(json.contains(key), "bench record missing {key}: {json}");
    }

    // Same matrix, same metrics: the self-comparison is clean.
    let out = bench(&["--baseline", record.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "self-baseline comparison failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("within tolerance"),
        "missing clean verdict: {stdout}"
    );

    // Inject a regression: rename a gated metric in the baseline so the
    // current run can no longer produce it.
    let perturbed = tmp("bench-perturbed.json");
    std::fs::write(
        &perturbed,
        json.replace("cold_plan.makespan_s", "cold_plan.makespan_zz"),
    )
    .expect("write perturbed baseline");
    let out = bench(&["--baseline", perturbed.to_str().unwrap()]);
    assert!(
        !out.status.success(),
        "injected regression must exit nonzero"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("bench-regression:") && stdout.contains("missing from current run"),
        "missing regression diagnostic: {stdout}"
    );

    // A baseline from a different matrix is an error, not a pass.
    let out = bin()
        .args([
            "bench", "--scale", "0.03", "--nodes", "4", "--seed", "7", "--iters", "1",
            "--baseline",
        ])
        .arg(&record)
        .output()
        .expect("spawn paretofab bench");
    assert!(!out.status.success(), "matrix mismatch must exit nonzero");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("matrix mismatch"),
        "missing matrix-mismatch diagnostic"
    );

    let _ = std::fs::remove_file(&record);
    let _ = std::fs::remove_file(&perturbed);
}

/// Run a traced, fault-injected workload and return its telemetry dump
/// path (caller removes it).
fn traced_faulted_dump(name: &str) -> PathBuf {
    let dump = tmp(name);
    let out = bin()
        .args([
            "run", "--preset", "rcv1", "--scale", "0.05", "--nodes", "4", "--seed", "31",
            "--strategy", "het-energy-aware", "--alpha", "0.995", "--support", "0.15",
            "--faults", "crash:1@0.5", "--telemetry-out",
        ])
        .arg(&dump)
        .output()
        .expect("spawn paretofab run");
    assert!(
        out.status.success(),
        "traced faulted run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    dump
}

/// The telemetry dump of a faulted run validates and summarizes through
/// `report`, and `report lineage` reconstructs the crashed batch's full
/// hop chain — placement then redistribution off the dead node — with
/// byte-identical output across invocations.
#[test]
fn report_validates_dump_and_reconstructs_lineage() {
    let dump = traced_faulted_dump("dump.json");

    let out = bin()
        .args(["report", "--input"])
        .arg(&dump)
        .output()
        .expect("spawn paretofab report");
    assert!(
        out.status.success(),
        "report failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("telemetry dump:"), "summary header missing: {stdout}");
    assert!(stdout.contains("[ledger]"), "ledger section missing: {stdout}");

    let lineage = |batch: &str| -> std::process::Output {
        bin()
            .args(["report", "lineage", "--input"])
            .arg(&dump)
            .args(["--batch", batch])
            .output()
            .expect("spawn paretofab report lineage")
    };
    let out = lineage("1");
    assert!(
        out.status.success(),
        "report lineage failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let chain = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(chain.contains("lineage of batch 1"), "header missing: {chain}");
    assert!(chain.contains("place - -> node1"), "hop 0 missing: {chain}");
    assert!(
        chain.contains("redistribute node1 -> "),
        "post-crash redistribution missing: {chain}"
    );

    // Deterministic reconstruction: same dump, same bytes.
    let again = lineage("1");
    assert_eq!(out.stdout, again.stdout, "lineage output is not stable");

    // A batch that never existed is a clean error.
    let out = lineage("99");
    assert!(!out.status.success(), "unknown batch must exit nonzero");

    let _ = std::fs::remove_file(&dump);
}

/// A run that cannot complete (every node crashes) dumps the flight
/// ring — bounded, JSON, tagged with the failure reason — while a clean
/// run leaves the armed recorder silent.
#[test]
fn flight_recorder_dumps_on_failure_only() {
    let flight = tmp("flight.json");
    let out = bin()
        .args([
            "run", "--preset", "rcv1", "--scale", "0.02", "--nodes", "2", "--seed", "7",
            "--faults", "crash:0@0.01,crash:1@0.01", "--flight-out",
        ])
        .arg(&flight)
        .output()
        .expect("spawn paretofab run");
    assert!(!out.status.success(), "all-nodes-crash run must fail");
    let dump = std::fs::read_to_string(&flight).expect("flight dump written");
    for key in ["\"flight-recorder\"", "\"run-error\"", "\"frames\""] {
        assert!(dump.contains(key), "flight dump missing {key}: {dump}");
    }
    let _ = std::fs::remove_file(&flight);

    let flight = tmp("flight-clean.json");
    let out = bin()
        .args([
            "run", "--preset", "rcv1", "--scale", "0.02", "--nodes", "2", "--seed", "7",
            "--flight-out",
        ])
        .arg(&flight)
        .output()
        .expect("spawn paretofab run");
    assert!(
        out.status.success(),
        "clean run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        !flight.exists(),
        "flight recorder must stay silent on a clean run"
    );
}
