//! Hand-rolled argument parsing (no CLI dependency, mirrors the style of
//! the `experiments` binary).

use std::path::PathBuf;

use pareto_cluster::Durability;
use pareto_core::framework::Strategy;
use pareto_core::frontier::ObjectiveSet;
use pareto_core::partitioner::PartitionLayout;
use pareto_datagen::DataKind;
use pareto_workloads::WorkloadKind;

/// Usage text shown on parse errors.
pub const USAGE: &str = "\
usage:
  paretofab gen --preset <swissprot|treebank|uk|arabic|rcv1>
                [--scale F] [--seed N] --out FILE
  paretofab partition <common options> --out DIR
  paretofab run       <common options>
  paretofab frontier  <common options> [--objectives LIST] [--tol T]
                      [--max-points N] [--out FILE]
                      (adaptive dominance-based frontier exploration:
                       coarse alpha grid + bisection of intervals whose
                       plans differ, through a warm planning session.
                       LIST is comma-separated from time, energy,
                       transfer (default time,energy); --tol is the
                       normalized convergence tolerance (default 1e-3);
                       --max-points caps LP solves (default 48); --out
                       writes a deterministic JSON frontier report)
  paretofab plan      <common options> [--sweep A1,A2,...] [--out FILE]
                      (incremental planning session; a sweep reuses the
                       cached sketch/stratify/profile artifacts per alpha
                       and prints cache hit/miss statistics; --out writes
                       a deterministic plan summary for diffing)
  paretofab replan    <common options> [--drop-node N] [--restore-node N]
                      [--realpha A] [--append-scale F]
                      (plan cold, apply the deltas, replan warm; prints
                       which stages were reused vs recomputed)
  paretofab report    --input DUMP.json [--trace TRACE.json]
                      (validate + summarize telemetry artifacts)
  paretofab report lineage --input DUMP.json --batch N
                      (reconstruct work-batch N's causal hop chain —
                       place, redistribute, steal, handoff, rescue — from
                       a traced run's telemetry dump)
  paretofab bench     [--record FILE] [--baseline FILE] [--iters N]
                      [--scale F] [--seed N] [--nodes P]
                      (perf/energy regression harness: run the fixed
                       workload matrix — cold plan, warm replan, WAL
                       recover, frontier explore, faulted run — and emit
                       named metrics. --record writes BENCH JSON;
                       --baseline diffs gated metrics against a previous
                       record and exits nonzero on out-of-tolerance
                       regressions; --iters controls wall-clock sampling
                       (default 3))
  paretofab chaos     <common options> [--schedules N] [--inject-corruption]
                      [--with-elastic]
                      (sweep N seeded fault schedules through the invariant
                       auditor and shrink any violation to a minimal
                       reproducing --faults spec; exits nonzero on
                       violations. --inject-corruption adds a known-bad
                       schedule that must be caught and shrunk;
                       --with-elastic composes a seeded elastic roster
                       plan — joins, drains, preemptions — into every
                       schedule and shrinks over both event kinds)
  paretofab serve     --soak [--requests N] [--tenants N] [--clients N]
                      [--sim-workers N] [--replan-pct N] [--queue-cap N]
                      [--cache-cap N] [--no-chaos] [--seed N] [--nodes P]
                      [--threads T] [--dataset-scale F] [--out FILE]
                      (closed-loop seeded soak through the plan-serving
                       daemon: N mixed plan/replan requests with injected
                       solver stalls, crashes, and overload; prints
                       terminal-outcome counts, p50/p99 latency, cache
                       hit rate, and shed/degraded/retry tallies. The
                       summary JSON — written to --out or stdout — is
                       bit-identical for a given seed across runs and
                       planning thread counts; wall-clock is reported
                       separately and never enters the JSON. Exits
                       nonzero on any audit violation)
  paretofab serve     --listen ADDR [--workers N] [--queue-cap N]
                      [--cache-cap N] [--seed N] [--nodes P] [--threads T]
                      [--dataset-scale F]
                      (live TCP plan server on ADDR, length-prefixed
                       frames over a bounded worker pool; runs until
                       killed)
  paretofab elastic   <common options> [--candidate N] [--out FILE]
                      (autoscaling advisor: plan the full roster, drop the
                       candidate node and replan warm, then decide whether
                       re-admitting it pays for its data-migration cost
                       using the fitted f_i models and transfer-cost
                       accounting; --out writes a deterministic JSON
                       advice report. Default candidate: highest node id)

common options:
  --input FILE            dataset in loader text format
  --preset NAME           …or generate the synthetic preset instead
  --kind <tree|graph|text> (required with --input)
  --nodes P               cluster size (default 8)
  --strategy <stratified|het-aware|het-energy-aware|het-energy-aware-norm|
              random|round-robin|cluster-mode>   (default het-aware)
  --alpha A               scalarization weight for the energy-aware strategies
  --layout <representative|similar>              (default representative)
  --workload <patterns|patterns-eclat|lz77|webgraph>  (default patterns)
  --support S             mining support fraction (default 0.1)
  --scale F --seed N      synthetic generation controls
  --threads N             planning worker threads (default 1; the plan is
                          bit-identical at any thread count)
  --lp-warm <on|off>      LP warm-starting across re-solves (default on;
                          plans are bit-identical either way, only pivot
                          counters differ)
  --durability <none|snapshot|wal>  KV durability mode for `run`
                          (default none; wal verifies bit-identical
                           recovery after the workload and prints a
                           durability report)
  --faults SPEC           inject faults into `run` and report the recovery.
                          SPEC is comma-separated events:
                            crash:NODE@T       kill NODE at simulated second T
                            slow:NODE@FACTOR   NODE runs FACTOR x slower
                            kv:NODE@COUNT      COUNT transient store errors
                            net:NODE@FROM-TO@F degrade NODE's network by F
                            torn:NODE@K        truncate NODE's WAL tail by K bytes
                            rot:NODE@OFF@MASK  XOR NODE's WAL byte OFF with MASK
                            snaploss:NODE      NODE loses its checkpoint snapshot
                            recrash:NODE@R     crash NODE mid-recovery after R records
                            seeded:SEED        deterministic generated plan
  --elastic SPEC          planned roster transitions for `run`, executed
                          alongside any --faults. SPEC is comma-separated:
                            join:NODE@T        NODE joins the roster at second T
                            drain:NODE@T       NODE finishes/hands off, then leaves
                            preempt:NODE@T@G   preemption notice at T, grace G s
                            eseeded:SEED       deterministic generated plan

telemetry options (partition / run / frontier / plan / replan):
  --trace-out FILE        write a chrome-trace (trace_event JSON) loadable
                          in about:tracing or ui.perfetto.dev
  --metrics-out FILE      write the metrics registry in Prometheus text format
  --telemetry-out FILE    write the full structured JSON dump (spans,
                          instants, metrics, captured events)
  --flight-out FILE       arm the flight recorder: a bounded ring of recent
                          spans/instants/events dumped as JSON to FILE when
                          something goes wrong (a plan/run error, an audit
                          violation, a chaos minimal-spec discovery)
  Telemetry is observational only: results are bit-identical with or
  without these flags.";

/// A parsed invocation.
#[derive(Debug, Clone)]
pub enum Command {
    /// Generate a synthetic corpus to a file.
    Gen {
        /// Preset name.
        preset: String,
        /// Scale factor.
        scale: f64,
        /// Seed.
        seed: u64,
        /// Output path.
        out: PathBuf,
    },
    /// Plan a partitioning and write partition files.
    Partition {
        /// Shared data/cluster/strategy options.
        common: Common,
        /// Output directory.
        out: PathBuf,
    },
    /// Plan, place, and execute on the simulated cluster.
    Run {
        /// Shared data/cluster/strategy options.
        common: Common,
    },
    /// Explore the predicted Pareto frontier adaptively (no execution).
    Frontier {
        /// Shared data/cluster/strategy options.
        common: Common,
        /// Objective axes the dominance filter ranks on.
        objectives: ObjectiveSet,
        /// Normalized convergence tolerance for bisection.
        tol: f64,
        /// Hard budget on scalarized LP solves.
        max_points: usize,
        /// Deterministic JSON frontier report (optional).
        out: Option<PathBuf>,
    },
    /// Plan through a warm [`pareto_core::PlanSession`], optionally
    /// sweeping α, and print cache reuse statistics.
    Plan {
        /// Shared data/cluster/strategy options.
        common: Common,
        /// α values to sweep (empty: plan once with the configured
        /// strategy).
        sweep: Vec<f64>,
        /// Deterministic plan-summary output for diffing (optional).
        out: Option<PathBuf>,
    },
    /// Plan cold, apply deltas, replan warm; print stage reuse.
    Replan {
        /// Shared data/cluster/strategy options.
        common: Common,
        /// Drop this node from the roster before replanning.
        drop_node: Option<usize>,
        /// Return this node to the roster before replanning (applied
        /// after any drop).
        restore_node: Option<usize>,
        /// Change the scalarization weight before replanning.
        realpha: Option<f64>,
        /// Append a synthetic tail of this scale before replanning
        /// (0 = no append).
        append_scale: f64,
    },
    /// Validate and summarize previously written telemetry artifacts.
    Report {
        /// The structured JSON dump (`--telemetry-out` of a prior run).
        input: PathBuf,
        /// Optional chrome-trace file to validate alongside.
        trace: Option<PathBuf>,
        /// `report lineage --batch N`: reconstruct this work batch's
        /// causal hop chain instead of printing the summary.
        lineage_batch: Option<u32>,
    },
    /// Perf/energy regression harness over the fixed workload matrix.
    Bench {
        /// Shared data/cluster/strategy options (scale/seed/nodes feed
        /// the matrix; the data source is always the rcv1 preset).
        common: Common,
        /// Write the bench record JSON here.
        record: Option<PathBuf>,
        /// Diff gated metrics against this previous record; exit nonzero
        /// on out-of-tolerance regressions.
        baseline: Option<PathBuf>,
        /// Wall-clock sampling iterations per workload.
        iters: u32,
    },
    /// Sweep seeded fault schedules through the invariant auditor and
    /// shrink any violation to a minimal reproducing `--faults` spec.
    Chaos {
        /// Shared data/cluster/strategy options.
        common: Common,
        /// Number of seeded schedules to sweep.
        schedules: u32,
        /// Plant a known-bad corrupted schedule that must be caught.
        inject_corruption: bool,
        /// Compose a seeded elastic roster plan into every schedule.
        with_elastic: bool,
    },
    /// Plan-serving daemon: deterministic soak (`--soak`) or live TCP
    /// server (`--listen ADDR`).
    Serve {
        /// Shared seed/threads/telemetry options (data-source flags are
        /// unused: tenant datasets are synthesized per tenant).
        common: Common,
        /// Service + traffic shape.
        opts: ServeOpts,
        /// Deterministic soak-summary JSON (optional; stdout otherwise).
        out: Option<PathBuf>,
    },
    /// Autoscaling advisor: decide whether re-admitting a candidate node
    /// pays for its migration cost, through a warm planning session.
    Elastic {
        /// Shared data/cluster/strategy options.
        common: Common,
        /// Candidate node to evaluate (default: highest node id).
        candidate: Option<usize>,
        /// Deterministic JSON advice report (optional).
        out: Option<PathBuf>,
    },
}

/// `serve` configuration: mode plus service/traffic shape.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Serve live TCP on this address; `None` runs the deterministic
    /// closed-loop soak (the `--soak` mode).
    pub listen: Option<String>,
    /// Logical soak requests.
    pub requests: usize,
    /// Distinct tenants.
    pub tenants: usize,
    /// Closed-loop soak clients.
    pub clients: usize,
    /// Simulated executor slots in the soak.
    pub sim_workers: usize,
    /// Percent of soak requests that are replans.
    pub replan_pct: u8,
    /// Admission queue capacity.
    pub queue_cap: usize,
    /// Live worker-pool size (`--listen` mode).
    pub workers: usize,
    /// Shared plan-cache capacity.
    pub cache_cap: usize,
    /// Cluster size for the planning substrate.
    pub nodes: usize,
    /// Per-tenant synthetic dataset scale.
    pub dataset_scale: f64,
    /// Inject seeded solver stalls / crashes into the soak.
    pub chaos: bool,
}

/// Options shared by `partition` and `run`.
#[derive(Debug, Clone)]
pub struct Common {
    /// Input file (exclusive with `preset`).
    pub input: Option<PathBuf>,
    /// Synthetic preset (exclusive with `input`).
    pub preset: Option<String>,
    /// Data kind for `input`.
    pub kind: Option<DataKind>,
    /// Cluster size.
    pub nodes: usize,
    /// Partitioning strategy.
    pub strategy: Strategy,
    /// Record layout.
    pub layout: PartitionLayout,
    /// Workload driven by the estimator and `run`.
    pub workload: WorkloadKind,
    /// Generation scale (presets only).
    pub scale: f64,
    /// Seed for everything.
    pub seed: u64,
    /// Planning worker threads (1 = serial; results are thread-count
    /// invariant).
    pub threads: usize,
    /// LP warm-starting across re-solves (plans are bit-identical either
    /// way; `--lp-warm off` is the reference the identity job diffs
    /// against).
    pub lp_warm: bool,
    /// Fault-injection spec (`run` only; see `--faults` in [`USAGE`]).
    /// Parsed against the cluster size at execution time.
    pub faults: Option<String>,
    /// Elastic roster spec (`run` only; see `--elastic` in [`USAGE`]).
    /// Parsed against the cluster size at execution time.
    pub elastic: Option<String>,
    /// KV durability mode (`run` only; WAL arms every node's store and
    /// verifies bit-identical recovery after the workload).
    pub durability: Durability,
    /// Write a chrome-trace (`trace_event` JSON) here.
    pub trace_out: Option<PathBuf>,
    /// Write Prometheus-text metrics here.
    pub metrics_out: Option<PathBuf>,
    /// Write the full structured telemetry dump here.
    pub telemetry_out: Option<PathBuf>,
    /// Arm the flight recorder and dump its ring here on failure.
    pub flight_out: Option<PathBuf>,
}

impl Default for Common {
    fn default() -> Self {
        Common {
            input: None,
            preset: None,
            kind: None,
            nodes: 8,
            strategy: Strategy::HetAware,
            layout: PartitionLayout::Representative,
            workload: WorkloadKind::FrequentPatterns { support: 0.1 },
            scale: 0.25,
            seed: 2017,
            threads: 1,
            lp_warm: true,
            faults: None,
            elastic: None,
            durability: Durability::None,
            trace_out: None,
            metrics_out: None,
            telemetry_out: None,
            flight_out: None,
        }
    }
}

impl Common {
    /// True when any telemetry output was requested.
    pub fn wants_telemetry(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.telemetry_out.is_some()
    }
}

/// Parse an argv (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter().peekable();
    let sub = it.next().ok_or("missing subcommand")?.as_str();
    // `report` takes an optional `lineage` mode token before its flags.
    let report_lineage =
        sub == "report" && it.peek().map(|s| s.as_str()) == Some("lineage");
    if report_lineage {
        it.next();
    }
    let mut common = Common::default();
    let mut out: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;
    let mut alpha: Option<f64> = None;
    let mut support: Option<f64> = None;
    let mut strategy_name: Option<String> = None;
    let mut sweep: Vec<f64> = Vec::new();
    let mut drop_node: Option<usize> = None;
    let mut restore_node: Option<usize> = None;
    let mut realpha: Option<f64> = None;
    let mut append_scale: f64 = 0.0;
    let mut schedules: u32 = 256;
    let mut inject_corruption = false;
    let mut with_elastic = false;
    let mut candidate: Option<usize> = None;
    let mut objectives: Option<ObjectiveSet> = None;
    let mut tol: f64 = 1e-3;
    let mut max_points: usize = 48;
    let mut batch: Option<u32> = None;
    let mut record: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut iters: u32 = 3;
    // `serve` has its own nodes/scale defaults (small planning substrate,
    // tiny per-tenant datasets); track whether the user overrode them.
    let mut nodes_explicit = false;
    let mut soak = false;
    let mut listen: Option<String> = None;
    let mut requests: usize = 1000;
    let mut tenants: usize = 4;
    let mut clients: usize = 12;
    let mut sim_workers: usize = 2;
    let mut replan_pct: u8 = 20;
    let mut queue_cap: usize = 4;
    let mut serve_workers: usize = 2;
    let mut cache_cap: usize = 64;
    let mut dataset_scale: f64 = 0.01;
    let mut chaos = true;

    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .map(|s| s.to_string())
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--input" => common.input = Some(PathBuf::from(value("--input")?)),
            "--preset" => common.preset = Some(value("--preset")?),
            "--kind" => {
                common.kind = Some(match value("--kind")?.as_str() {
                    "tree" => DataKind::Tree,
                    "graph" => DataKind::Graph,
                    "text" => DataKind::Text,
                    other => return Err(format!("unknown kind {other:?}")),
                })
            }
            "--nodes" => {
                common.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("bad --nodes: {e}"))?;
                nodes_explicit = true;
            }
            "--strategy" => strategy_name = Some(value("--strategy")?),
            "--alpha" => {
                alpha = Some(
                    value("--alpha")?
                        .parse()
                        .map_err(|e| format!("bad --alpha: {e}"))?,
                )
            }
            "--layout" => {
                common.layout = match value("--layout")?.as_str() {
                    "representative" => PartitionLayout::Representative,
                    "similar" => PartitionLayout::SimilarTogether,
                    other => return Err(format!("unknown layout {other:?}")),
                }
            }
            "--workload" => {
                common.workload = match value("--workload")?.as_str() {
                    "patterns" => WorkloadKind::FrequentPatterns { support: 0.1 },
                    "patterns-eclat" => {
                        WorkloadKind::FrequentPatternsEclat { support: 0.1 }
                    }
                    "lz77" => WorkloadKind::Lz77,
                    "webgraph" => WorkloadKind::WebGraph,
                    other => return Err(format!("unknown workload {other:?}")),
                }
            }
            "--support" => {
                support = Some(
                    value("--support")?
                        .parse()
                        .map_err(|e| format!("bad --support: {e}"))?,
                )
            }
            "--scale" => {
                common.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?
            }
            "--seed" => {
                common.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--threads" => {
                common.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if common.threads == 0 {
                    return Err("--threads must be >= 1".into());
                }
            }
            "--lp-warm" => {
                common.lp_warm = match value("--lp-warm")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("bad --lp-warm {other:?} (expected on|off)")),
                }
            }
            "--faults" => common.faults = Some(value("--faults")?),
            "--elastic" => common.elastic = Some(value("--elastic")?),
            "--durability" => {
                common.durability = match value("--durability")?.as_str() {
                    "none" => Durability::None,
                    "snapshot" => Durability::SnapshotOnCheckpoint,
                    "wal" => Durability::Wal,
                    other => return Err(format!("unknown durability {other:?}")),
                }
            }
            "--schedules" => {
                schedules = value("--schedules")?
                    .parse()
                    .map_err(|e| format!("bad --schedules: {e}"))?;
                if schedules == 0 {
                    return Err("--schedules must be >= 1".into());
                }
            }
            "--inject-corruption" => inject_corruption = true,
            "--with-elastic" => with_elastic = true,
            "--candidate" => {
                candidate = Some(
                    value("--candidate")?
                        .parse()
                        .map_err(|e| format!("bad --candidate: {e}"))?,
                )
            }
            "--sweep" => {
                sweep = value("--sweep")?
                    .split(',')
                    .map(|s| s.trim().parse::<f64>())
                    .collect::<Result<Vec<f64>, _>>()
                    .map_err(|e| format!("bad --sweep: {e}"))?;
                if sweep.is_empty() {
                    return Err("--sweep needs at least one alpha".into());
                }
                // Duplicate alphas would silently re-plan identical
                // points; keep the first occurrence of each.
                let mut seen = std::collections::BTreeSet::new();
                sweep.retain(|a| seen.insert(a.to_bits()));
            }
            "--objectives" => {
                objectives = Some(
                    ObjectiveSet::parse(&value("--objectives")?)
                        .map_err(|e| format!("bad --objectives: {e}"))?,
                )
            }
            "--tol" => {
                tol = value("--tol")?
                    .parse()
                    .map_err(|e| format!("bad --tol: {e}"))?;
                if !tol.is_finite() || tol <= 0.0 {
                    return Err(format!("--tol must be finite and > 0, got {tol}"));
                }
            }
            "--max-points" => {
                max_points = value("--max-points")?
                    .parse()
                    .map_err(|e| format!("bad --max-points: {e}"))?;
                if max_points < 2 {
                    return Err("--max-points must be >= 2".into());
                }
            }
            "--drop-node" => {
                drop_node = Some(
                    value("--drop-node")?
                        .parse()
                        .map_err(|e| format!("bad --drop-node: {e}"))?,
                )
            }
            "--restore-node" => {
                restore_node = Some(
                    value("--restore-node")?
                        .parse()
                        .map_err(|e| format!("bad --restore-node: {e}"))?,
                )
            }
            "--realpha" => {
                realpha = Some(
                    value("--realpha")?
                        .parse()
                        .map_err(|e| format!("bad --realpha: {e}"))?,
                )
            }
            "--append-scale" => {
                append_scale = value("--append-scale")?
                    .parse()
                    .map_err(|e| format!("bad --append-scale: {e}"))?;
                if append_scale.is_nan() || append_scale < 0.0 {
                    return Err(format!("--append-scale must be >= 0, got {append_scale}"));
                }
            }
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--trace-out" => common.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--metrics-out" => {
                common.metrics_out = Some(PathBuf::from(value("--metrics-out")?))
            }
            "--telemetry-out" => {
                common.telemetry_out = Some(PathBuf::from(value("--telemetry-out")?))
            }
            "--flight-out" => common.flight_out = Some(PathBuf::from(value("--flight-out")?)),
            "--trace" => trace = Some(PathBuf::from(value("--trace")?)),
            "--batch" => {
                batch = Some(
                    value("--batch")?
                        .parse()
                        .map_err(|e| format!("bad --batch: {e}"))?,
                )
            }
            "--soak" => soak = true,
            "--listen" => listen = Some(value("--listen")?),
            "--requests" => {
                requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?;
                if requests == 0 {
                    return Err("--requests must be >= 1".into());
                }
            }
            "--tenants" => {
                tenants = value("--tenants")?
                    .parse()
                    .map_err(|e| format!("bad --tenants: {e}"))?;
                if tenants == 0 {
                    return Err("--tenants must be >= 1".into());
                }
            }
            "--clients" => {
                clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("bad --clients: {e}"))?;
                if clients == 0 {
                    return Err("--clients must be >= 1".into());
                }
            }
            "--sim-workers" => {
                sim_workers = value("--sim-workers")?
                    .parse()
                    .map_err(|e| format!("bad --sim-workers: {e}"))?;
                if sim_workers == 0 {
                    return Err("--sim-workers must be >= 1".into());
                }
            }
            "--replan-pct" => {
                replan_pct = value("--replan-pct")?
                    .parse()
                    .map_err(|e| format!("bad --replan-pct: {e}"))?;
                if replan_pct > 100 {
                    return Err("--replan-pct must be <= 100".into());
                }
            }
            "--queue-cap" => {
                queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("bad --queue-cap: {e}"))?;
                if queue_cap == 0 {
                    return Err("--queue-cap must be >= 1".into());
                }
            }
            "--workers" => {
                serve_workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?;
                if serve_workers == 0 {
                    return Err("--workers must be >= 1".into());
                }
            }
            "--cache-cap" => {
                cache_cap = value("--cache-cap")?
                    .parse()
                    .map_err(|e| format!("bad --cache-cap: {e}"))?;
                if cache_cap == 0 {
                    return Err("--cache-cap must be >= 1".into());
                }
            }
            "--dataset-scale" => {
                dataset_scale = value("--dataset-scale")?
                    .parse()
                    .map_err(|e| format!("bad --dataset-scale: {e}"))?;
                if !dataset_scale.is_finite() || dataset_scale <= 0.0 {
                    return Err(format!(
                        "--dataset-scale must be finite and > 0, got {dataset_scale}"
                    ));
                }
            }
            "--no-chaos" => chaos = false,
            "--record" => record = Some(PathBuf::from(value("--record")?)),
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline")?)),
            "--iters" => {
                iters = value("--iters")?
                    .parse()
                    .map_err(|e| format!("bad --iters: {e}"))?;
                if iters == 0 {
                    return Err("--iters must be >= 1".into());
                }
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }

    // Resolve strategy name + alpha.
    if let Some(name) = strategy_name {
        common.strategy = match name.as_str() {
            "stratified" => Strategy::Stratified,
            "het-aware" => Strategy::HetAware,
            "het-energy-aware" => Strategy::HetEnergyAware {
                alpha: alpha.unwrap_or(0.995),
            },
            "het-energy-aware-norm" => Strategy::HetEnergyAwareNormalized {
                alpha: alpha.unwrap_or(0.5),
            },
            "random" => Strategy::Random,
            "round-robin" => Strategy::RoundRobin,
            "cluster-mode" => Strategy::ClusterMode,
            other => return Err(format!("unknown strategy {other:?}")),
        };
    } else if let Some(a) = alpha {
        common.strategy = Strategy::HetEnergyAware { alpha: a };
    }
    // Resolve support into the workload.
    if let Some(s) = support {
        if !(0.0..=1.0).contains(&s) || s == 0.0 {
            return Err(format!("--support must be in (0, 1], got {s}"));
        }
        match common.workload {
            WorkloadKind::FrequentPatterns { .. } => {
                common.workload = WorkloadKind::FrequentPatterns { support: s };
            }
            WorkloadKind::FrequentPatternsEclat { .. } => {
                common.workload = WorkloadKind::FrequentPatternsEclat { support: s };
            }
            _ => {}
        }
    }

    match sub {
        "gen" => {
            let preset = common
                .preset
                .clone()
                .ok_or("gen requires --preset")?;
            Ok(Command::Gen {
                preset,
                scale: common.scale,
                seed: common.seed,
                out: out.ok_or("gen requires --out FILE")?,
            })
        }
        "partition" => {
            validate_data_source(&common)?;
            Ok(Command::Partition {
                common,
                out: out.ok_or("partition requires --out DIR")?,
            })
        }
        "run" => {
            validate_data_source(&common)?;
            Ok(Command::Run { common })
        }
        "frontier" => {
            validate_data_source(&common)?;
            Ok(Command::Frontier {
                common,
                objectives: objectives.unwrap_or_else(ObjectiveSet::time_energy),
                tol,
                max_points,
                out,
            })
        }
        "plan" => {
            validate_data_source(&common)?;
            Ok(Command::Plan { common, sweep, out })
        }
        "replan" => {
            validate_data_source(&common)?;
            if drop_node.is_none()
                && restore_node.is_none()
                && realpha.is_none()
                && append_scale == 0.0
            {
                return Err("replan needs at least one delta: --drop-node, --restore-node, \
                     --realpha, or --append-scale"
                    .into());
            }
            Ok(Command::Replan {
                common,
                drop_node,
                restore_node,
                realpha,
                append_scale,
            })
        }
        "report" => Ok(Command::Report {
            input: common.input.ok_or("report requires --input DUMP.json")?,
            trace,
            lineage_batch: if report_lineage {
                Some(batch.ok_or("report lineage requires --batch N")?)
            } else {
                None
            },
        }),
        "bench" => Ok(Command::Bench {
            common,
            record,
            baseline,
            iters,
        }),
        "chaos" => {
            validate_data_source(&common)?;
            Ok(Command::Chaos {
                common,
                schedules,
                inject_corruption,
                with_elastic,
            })
        }
        "serve" => {
            if !soak && listen.is_none() {
                return Err("serve needs --soak or --listen ADDR".into());
            }
            if soak && listen.is_some() {
                return Err("--soak and --listen are mutually exclusive".into());
            }
            Ok(Command::Serve {
                opts: ServeOpts {
                    listen,
                    requests,
                    tenants,
                    clients,
                    sim_workers,
                    replan_pct,
                    queue_cap,
                    workers: serve_workers,
                    cache_cap,
                    // The planning substrate defaults to a small 4-node
                    // cluster (tenant datasets are tiny); an explicit
                    // --nodes wins.
                    nodes: if nodes_explicit { common.nodes } else { 4 },
                    dataset_scale,
                    chaos,
                },
                common,
                out,
            })
        }
        "elastic" => {
            validate_data_source(&common)?;
            if let Some(c) = candidate {
                if c >= common.nodes {
                    return Err(format!(
                        "--candidate {c} is out of range (cluster has {} nodes)",
                        common.nodes
                    ));
                }
            }
            Ok(Command::Elastic {
                common,
                candidate,
                out,
            })
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn validate_data_source(common: &Common) -> Result<(), String> {
    match (&common.input, &common.preset) {
        (Some(_), Some(_)) => Err("--input and --preset are mutually exclusive".into()),
        (None, None) => Err("need --input FILE or --preset NAME".into()),
        (Some(_), None) if common.kind.is_none() => {
            Err("--input requires --kind <tree|graph|text>".into())
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_gen() {
        let cmd = parse(&argv("gen --preset rcv1 --scale 0.1 --seed 3 --out x.txt")).unwrap();
        match cmd {
            Command::Gen {
                preset,
                scale,
                seed,
                out,
            } => {
                assert_eq!(preset, "rcv1");
                assert_eq!(scale, 0.1);
                assert_eq!(seed, 3);
                assert_eq!(out, PathBuf::from("x.txt"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_run_with_strategy_and_support() {
        let cmd = parse(&argv(
            "run --preset treebank --nodes 4 --strategy het-energy-aware --alpha 0.99 \
             --workload patterns --support 0.05",
        ))
        .unwrap();
        match cmd {
            Command::Run { common } => {
                assert_eq!(common.nodes, 4);
                assert_eq!(
                    common.strategy,
                    Strategy::HetEnergyAware { alpha: 0.99 }
                );
                assert_eq!(
                    common.workload,
                    WorkloadKind::FrequentPatterns { support: 0.05 }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_conflicting_sources() {
        assert!(parse(&argv("run --preset rcv1 --input x.txt --kind text")).is_err());
        assert!(parse(&argv("run")).is_err());
        assert!(parse(&argv("partition --preset rcv1")).is_err()); // no --out
    }

    #[test]
    fn input_requires_kind() {
        assert!(parse(&argv("run --input x.txt")).is_err());
        assert!(parse(&argv("run --input x.txt --kind text")).is_ok());
    }

    #[test]
    fn rejects_unknown_flags_and_values() {
        assert!(parse(&argv("run --preset rcv1 --bogus 1")).is_err());
        assert!(parse(&argv("run --preset rcv1 --layout diagonal")).is_err());
        assert!(parse(&argv("run --preset rcv1 --support 0")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
    }

    #[test]
    fn parses_frontier() {
        let cmd = parse(&argv("frontier --preset rcv1 --nodes 4")).unwrap();
        match cmd {
            Command::Frontier {
                objectives,
                tol,
                max_points,
                out,
                ..
            } => {
                assert_eq!(objectives, ObjectiveSet::time_energy());
                assert_eq!(tol, 1e-3);
                assert_eq!(max_points, 48);
                assert!(out.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_frontier_explorer_flags() {
        let cmd = parse(&argv(
            "frontier --preset rcv1 --objectives time,energy,transfer \
             --tol 1e-4 --max-points 32 --out f.json",
        ))
        .unwrap();
        match cmd {
            Command::Frontier {
                objectives,
                tol,
                max_points,
                out,
                ..
            } => {
                assert_eq!(objectives, ObjectiveSet::full());
                assert_eq!(tol, 1e-4);
                assert_eq!(max_points, 32);
                assert_eq!(out, Some(PathBuf::from("f.json")));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Invalid specs are parse errors (nonzero CLI exit).
        assert!(parse(&argv("frontier --preset rcv1 --objectives frobnicate")).is_err());
        assert!(parse(&argv("frontier --preset rcv1 --objectives")).is_err());
        assert!(parse(&argv("frontier --preset rcv1 --tol 0")).is_err());
        assert!(parse(&argv("frontier --preset rcv1 --tol -1e-3")).is_err());
        assert!(parse(&argv("frontier --preset rcv1 --tol nan")).is_err());
        assert!(parse(&argv("frontier --preset rcv1 --tol nope")).is_err());
        assert!(parse(&argv("frontier --preset rcv1 --max-points 1")).is_err());
        assert!(parse(&argv("frontier --preset rcv1 --max-points nope")).is_err());
    }

    #[test]
    fn sweep_deduplicates_alphas() {
        let cmd = parse(&argv(
            "plan --preset rcv1 --sweep 1.0,0.999,1.0,0.995,0.999",
        ))
        .unwrap();
        match cmd {
            Command::Plan { sweep, .. } => assert_eq!(sweep, vec![1.0, 0.999, 0.995]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_threads() {
        let cmd = parse(&argv("run --preset rcv1 --threads 8")).unwrap();
        match cmd {
            Command::Run { common } => assert_eq!(common.threads, 8),
            other => panic!("unexpected {other:?}"),
        }
        // Default is serial.
        let cmd = parse(&argv("run --preset rcv1")).unwrap();
        match cmd {
            Command::Run { common } => assert_eq!(common.threads, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("run --preset rcv1 --threads 0")).is_err());
        assert!(parse(&argv("run --preset rcv1 --threads nope")).is_err());
    }

    #[test]
    fn parses_faults_spec() {
        let cmd = parse(&argv(
            "run --preset rcv1 --nodes 4 --faults crash:1@5.0,slow:2@3,seeded:99",
        ))
        .unwrap();
        match cmd {
            Command::Run { common } => {
                assert_eq!(
                    common.faults.as_deref(),
                    Some("crash:1@5.0,slow:2@3,seeded:99")
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // Default: no faults.
        let cmd = parse(&argv("run --preset rcv1")).unwrap();
        match cmd {
            Command::Run { common } => assert!(common.faults.is_none()),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("run --preset rcv1 --faults")).is_err());
    }

    #[test]
    fn parses_telemetry_outputs() {
        let cmd = parse(&argv(
            "run --preset rcv1 --trace-out t.json --metrics-out m.prom \
             --telemetry-out d.json",
        ))
        .unwrap();
        match cmd {
            Command::Run { common } => {
                assert_eq!(common.trace_out, Some(PathBuf::from("t.json")));
                assert_eq!(common.metrics_out, Some(PathBuf::from("m.prom")));
                assert_eq!(common.telemetry_out, Some(PathBuf::from("d.json")));
                assert!(common.wants_telemetry());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Default: no telemetry.
        let cmd = parse(&argv("run --preset rcv1")).unwrap();
        match cmd {
            Command::Run { common } => assert!(!common.wants_telemetry()),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("run --preset rcv1 --trace-out")).is_err());
    }

    #[test]
    fn parses_report() {
        let cmd = parse(&argv("report --input dump.json --trace trace.json")).unwrap();
        match cmd {
            Command::Report {
                input,
                trace,
                lineage_batch,
            } => {
                assert_eq!(input, PathBuf::from("dump.json"));
                assert_eq!(trace, Some(PathBuf::from("trace.json")));
                assert_eq!(lineage_batch, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(&argv("report --input dump.json")).unwrap();
        assert!(matches!(cmd, Command::Report { trace: None, .. }));
        assert!(parse(&argv("report")).is_err());
    }

    #[test]
    fn parses_report_lineage() {
        let cmd = parse(&argv("report lineage --input dump.json --batch 3")).unwrap();
        match cmd {
            Command::Report {
                input,
                lineage_batch,
                ..
            } => {
                assert_eq!(input, PathBuf::from("dump.json"));
                assert_eq!(lineage_batch, Some(3));
            }
            other => panic!("unexpected {other:?}"),
        }
        // The lineage mode requires a batch id; plain report ignores it.
        assert!(parse(&argv("report lineage --input dump.json")).is_err());
        assert!(parse(&argv("report lineage --batch 3")).is_err()); // no --input
        assert!(parse(&argv("report lineage --input d.json --batch nope")).is_err());
    }

    #[test]
    fn parses_bench() {
        let cmd = parse(&argv(
            "bench --record b.json --baseline prev.json --iters 5 --scale 0.02 --seed 9 \
             --nodes 4",
        ))
        .unwrap();
        match cmd {
            Command::Bench {
                common,
                record,
                baseline,
                iters,
            } => {
                assert_eq!(record, Some(PathBuf::from("b.json")));
                assert_eq!(baseline, Some(PathBuf::from("prev.json")));
                assert_eq!(iters, 5);
                assert_eq!(common.scale, 0.02);
                assert_eq!(common.seed, 9);
                assert_eq!(common.nodes, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Bench needs no data source: the matrix is always the rcv1 preset.
        let cmd = parse(&argv("bench")).unwrap();
        assert!(matches!(
            cmd,
            Command::Bench {
                record: None,
                baseline: None,
                iters: 3,
                ..
            }
        ));
        assert!(parse(&argv("bench --iters 0")).is_err());
        assert!(parse(&argv("bench --iters nope")).is_err());
        assert!(parse(&argv("bench --record")).is_err());
    }

    #[test]
    fn parses_flight_out() {
        let cmd = parse(&argv("run --preset rcv1 --flight-out fr.json")).unwrap();
        match cmd {
            Command::Run { common } => {
                assert_eq!(common.flight_out, Some(PathBuf::from("fr.json")));
                // The flight recorder alone does not imply the full
                // telemetry outputs…
                assert!(!common.wants_telemetry());
            }
            other => panic!("unexpected {other:?}"),
        }
        // …and the default is unarmed.
        let cmd = parse(&argv("run --preset rcv1")).unwrap();
        match cmd {
            Command::Run { common } => assert!(common.flight_out.is_none()),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("run --preset rcv1 --flight-out")).is_err());
    }

    #[test]
    fn parses_plan_with_sweep() {
        let cmd = parse(&argv(
            "plan --preset rcv1 --nodes 4 --sweep 1.0,0.999,0.995 --out plans.txt",
        ))
        .unwrap();
        match cmd {
            Command::Plan { common, sweep, out } => {
                assert_eq!(common.nodes, 4);
                assert_eq!(sweep, vec![1.0, 0.999, 0.995]);
                assert_eq!(out, Some(PathBuf::from("plans.txt")));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Sweep and out are optional; a bare plan is a single cold plan.
        let cmd = parse(&argv("plan --preset rcv1")).unwrap();
        assert!(matches!(
            cmd,
            Command::Plan { ref sweep, out: None, .. } if sweep.is_empty()
        ));
        assert!(parse(&argv("plan --preset rcv1 --sweep")).is_err());
        assert!(parse(&argv("plan --preset rcv1 --sweep nope")).is_err());
        assert!(parse(&argv("plan")).is_err()); // no data source
    }

    #[test]
    fn parses_replan_deltas() {
        let cmd = parse(&argv(
            "replan --preset rcv1 --nodes 4 --drop-node 2 --realpha 0.99 --append-scale 0.01",
        ))
        .unwrap();
        match cmd {
            Command::Replan {
                drop_node,
                realpha,
                append_scale,
                ..
            } => {
                assert_eq!(drop_node, Some(2));
                assert_eq!(realpha, Some(0.99));
                assert_eq!(append_scale, 0.01);
            }
            other => panic!("unexpected {other:?}"),
        }
        // At least one delta is required.
        assert!(parse(&argv("replan --preset rcv1")).is_err());
        assert!(parse(&argv("replan --preset rcv1 --append-scale -1")).is_err());
        assert!(parse(&argv("replan --preset rcv1 --drop-node nope")).is_err());
    }

    #[test]
    fn restore_node_is_a_replan_delta() {
        let cmd = parse(&argv("replan --preset rcv1 --nodes 4 --restore-node 2")).unwrap();
        match cmd {
            Command::Replan {
                drop_node,
                restore_node,
                ..
            } => {
                assert_eq!(drop_node, None);
                assert_eq!(restore_node, Some(2));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Drop + restore compose in one invocation.
        let cmd = parse(&argv(
            "replan --preset rcv1 --nodes 4 --drop-node 1 --restore-node 1",
        ))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Replan {
                drop_node: Some(1),
                restore_node: Some(1),
                ..
            }
        ));
        assert!(parse(&argv("replan --preset rcv1 --restore-node nope")).is_err());
        assert!(parse(&argv("replan --preset rcv1 --restore-node")).is_err());
    }

    #[test]
    fn parses_elastic_spec_and_chaos_flag() {
        let spec = "join:3@20,drain:1@40,preempt:2@60@15,eseeded:7";
        let cmd =
            parse(&argv(&format!("run --preset rcv1 --nodes 4 --elastic {spec}"))).unwrap();
        match cmd {
            Command::Run { common } => assert_eq!(common.elastic.as_deref(), Some(spec)),
            other => panic!("unexpected {other:?}"),
        }
        // Default: no elastic plan.
        let cmd = parse(&argv("run --preset rcv1")).unwrap();
        match cmd {
            Command::Run { common } => assert!(common.elastic.is_none()),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("run --preset rcv1 --elastic")).is_err());
        let cmd = parse(&argv("chaos --preset rcv1 --with-elastic")).unwrap();
        assert!(matches!(cmd, Command::Chaos { with_elastic: true, .. }));
        let cmd = parse(&argv("chaos --preset rcv1")).unwrap();
        assert!(matches!(cmd, Command::Chaos { with_elastic: false, .. }));
    }

    #[test]
    fn parses_elastic_subcommand() {
        let cmd = parse(&argv(
            "elastic --preset rcv1 --nodes 4 --candidate 3 --out advice.json",
        ))
        .unwrap();
        match cmd {
            Command::Elastic {
                common,
                candidate,
                out,
            } => {
                assert_eq!(common.nodes, 4);
                assert_eq!(candidate, Some(3));
                assert_eq!(out, Some(PathBuf::from("advice.json")));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Candidate defaults at execution time; out is optional.
        let cmd = parse(&argv("elastic --preset rcv1")).unwrap();
        assert!(matches!(
            cmd,
            Command::Elastic { candidate: None, out: None, .. }
        ));
        assert!(parse(&argv("elastic")).is_err()); // no data source
        assert!(parse(&argv("elastic --preset rcv1 --nodes 4 --candidate 4")).is_err());
        assert!(parse(&argv("elastic --preset rcv1 --candidate nope")).is_err());
    }

    #[test]
    fn parses_durability_modes() {
        for (name, mode) in [
            ("none", Durability::None),
            ("snapshot", Durability::SnapshotOnCheckpoint),
            ("wal", Durability::Wal),
        ] {
            let cmd = parse(&argv(&format!("run --preset rcv1 --durability {name}"))).unwrap();
            match cmd {
                Command::Run { common } => assert_eq!(common.durability, mode),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Default: no durability.
        let cmd = parse(&argv("run --preset rcv1")).unwrap();
        match cmd {
            Command::Run { common } => assert_eq!(common.durability, Durability::None),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("run --preset rcv1 --durability paper")).is_err());
        assert!(parse(&argv("run --preset rcv1 --durability")).is_err());
    }

    #[test]
    fn parses_chaos() {
        let cmd = parse(&argv(
            "chaos --preset rcv1 --nodes 4 --schedules 64 --inject-corruption",
        ))
        .unwrap();
        match cmd {
            Command::Chaos {
                common,
                schedules,
                inject_corruption,
                with_elastic,
            } => {
                assert_eq!(common.nodes, 4);
                assert_eq!(schedules, 64);
                assert!(inject_corruption);
                assert!(!with_elastic);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Defaults: 256 schedules, no planted corruption.
        let cmd = parse(&argv("chaos --preset rcv1")).unwrap();
        assert!(matches!(
            cmd,
            Command::Chaos {
                schedules: 256,
                inject_corruption: false,
                ..
            }
        ));
        assert!(parse(&argv("chaos")).is_err()); // no data source
        assert!(parse(&argv("chaos --preset rcv1 --schedules 0")).is_err());
        assert!(parse(&argv("chaos --preset rcv1 --schedules nope")).is_err());
    }

    #[test]
    fn parses_storage_fault_clauses() {
        let spec = "torn:1@13,rot:2@40@8,snaploss:3,recrash:0@2";
        let cmd = parse(&argv(&format!("run --preset rcv1 --nodes 4 --faults {spec}"))).unwrap();
        match cmd {
            Command::Run { common } => assert_eq!(common.faults.as_deref(), Some(spec)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cluster_mode_and_norm_strategies() {
        let cmd = parse(&argv("run --preset rcv1 --strategy cluster-mode")).unwrap();
        match cmd {
            Command::Run { common } => assert_eq!(common.strategy, Strategy::ClusterMode),
            other => panic!("unexpected {other:?}"),
        }
        let cmd =
            parse(&argv("run --preset rcv1 --strategy het-energy-aware-norm --alpha 0.4"))
                .unwrap();
        match cmd {
            Command::Run { common } => assert_eq!(
                common.strategy,
                Strategy::HetEnergyAwareNormalized { alpha: 0.4 }
            ),
            other => panic!("unexpected {other:?}"),
        }
    }
}
