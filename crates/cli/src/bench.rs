//! `paretofab bench`: the perf/energy regression harness.
//!
//! Runs a fixed workload matrix — cold plan, warm replan, WAL recover,
//! frontier explore, warm α sweep, faulted run — and emits named metrics
//! as a deterministic BENCH JSON record. Metrics come in two kinds:
//!
//! - **gated** (`"gate": true`): deterministic outputs of the run
//!   (predicted makespan, LP solves, cache hit rate, attributed
//!   green/dirty joules). `--baseline` compares these against a previous
//!   record within each metric's relative tolerance band and exits
//!   nonzero on any out-of-band drift — a genuine behavioral regression.
//! - **ungated** (`"gate": false`): wall-clock samples (p50/p99 over
//!   `--iters` runs). Recorded for trend dashboards but never compared,
//!   because CI timing noise would make them flaky gates.
//!
//! The matrix is self-contained (always the rcv1 preset, strategy forced
//! to het-energy-aware α=0.995) so a record is comparable across
//! branches; `--scale/--seed/--nodes/--iters` are captured in the record
//! and must match between baseline and current run.

use std::fs;
use std::path::Path;
use std::time::Instant;

use pareto_cluster::{FaultPlan, KvStore, NodeSpec, SimCluster};
use pareto_core::framework::{Framework, FrameworkConfig, Strategy};
use pareto_core::frontier::FrontierConfig;
use pareto_core::{ElasticPlan, PlanSession, RecoveryConfig};
use pareto_telemetry::json::{self, Value};
use pareto_telemetry::{event, metrics, Telemetry};
use pareto_workloads::WorkloadKind;

use crate::args::Common;

/// Relative tolerance band for gated metrics: the ledger reconciliation
/// bound from the energy-attribution layer, reused here so "no worse than
/// the accounting can resolve" is one number everywhere.
const GATE_TOL_REL: f64 = 1e-3;

/// One named measurement in a bench record.
struct Metric {
    name: String,
    value: f64,
    /// Compared against the baseline (deterministic run output) vs
    /// recorded-only (wall-clock sample).
    gate: bool,
    tol_rel: f64,
}

impl Metric {
    fn gated(name: impl Into<String>, value: f64) -> Metric {
        Metric {
            name: name.into(),
            value,
            gate: true,
            tol_rel: GATE_TOL_REL,
        }
    }

    fn wall(name: impl Into<String>, value: f64) -> Metric {
        Metric {
            name: name.into(),
            value,
            gate: false,
            tol_rel: 0.0,
        }
    }
}

/// The fixed matrix parameters captured in (and compared between)
/// records.
struct Matrix {
    preset: &'static str,
    scale: f64,
    seed: u64,
    nodes: usize,
    iters: u32,
}

/// Nearest-rank percentile of an unsorted sample (p in [0, 100]).
fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Push `p50_wall_s` / `p99_wall_s` metrics for one workload's samples.
fn push_wall(metrics: &mut Vec<Metric>, workload: &str, samples: &[f64]) {
    metrics.push(Metric::wall(
        format!("{workload}.p50_wall_s"),
        percentile(samples, 50.0),
    ));
    metrics.push(Metric::wall(
        format!("{workload}.p99_wall_s"),
        percentile(samples, 99.0),
    ));
}

fn framework_cfg(m: &Matrix) -> FrameworkConfig {
    FrameworkConfig {
        strategy: Strategy::HetEnergyAware { alpha: 0.995 },
        seed: m.seed,
        ..FrameworkConfig::default()
    }
}

fn bench_cluster(m: &Matrix) -> SimCluster {
    SimCluster::new(NodeSpec::paper_cluster(m.nodes, 400.0, 2, 9, m.seed))
}

const BENCH_WORKLOAD: WorkloadKind = WorkloadKind::FrequentPatterns { support: 0.1 };

/// Workload 1: cold planning — a fresh session pays the full pipeline
/// every iteration.
fn cold_plan(m: &Matrix) -> Result<Vec<Metric>, String> {
    let mut metrics = Vec::new();
    let mut walls = Vec::new();
    let mut last = None;
    for _ in 0..m.iters {
        let dataset = pareto_datagen::rcv1_syn(m.seed, m.scale);
        let cluster = bench_cluster(m);
        let mut session = PlanSession::new(&cluster, framework_cfg(m), dataset, BENCH_WORKLOAD);
        let t0 = Instant::now();
        let plan = session.plan().map_err(|e| e.to_string())?;
        walls.push(t0.elapsed().as_secs_f64());
        last = Some(plan);
    }
    let plan = last.expect("iters >= 1");
    let point = plan
        .pareto
        .as_ref()
        .ok_or("bench strategy fits no pareto point")?;
    metrics.push(Metric::gated("cold_plan.makespan_s", point.predicted_makespan));
    metrics.push(Metric::gated(
        "cold_plan.dirty_kj",
        point.predicted_dirty_joules / 1000.0,
    ));
    push_wall(&mut metrics, "cold_plan", &walls);
    Ok(metrics)
}

/// Workload 2: warm replanning — one session, alternating α so the
/// sketch/stratify/profile artifacts are reused while the optimizer
/// re-solves; the cache hit rate is the gated output.
fn warm_replan(m: &Matrix) -> Result<Vec<Metric>, String> {
    let dataset = pareto_datagen::rcv1_syn(m.seed, m.scale);
    let cluster = bench_cluster(m);
    let mut session = PlanSession::new(&cluster, framework_cfg(m), dataset, BENCH_WORKLOAD);
    session.plan().map_err(|e| e.to_string())?; // cold fill
    let mut walls = Vec::new();
    for i in 0..m.iters {
        session.set_alpha(if i % 2 == 0 { 0.999 } else { 0.995 });
        let t0 = Instant::now();
        session.plan().map_err(|e| e.to_string())?;
        walls.push(t0.elapsed().as_secs_f64());
    }
    let (mut hits, mut misses) = (0u64, 0u64);
    for (_, kind, count) in session.cache_stats().events() {
        match kind {
            "hit" => hits += count,
            "miss" => misses += count,
            _ => {}
        }
    }
    let rate = hits as f64 / (hits + misses).max(1) as f64;
    let mut metrics = vec![Metric::gated("warm_replan.cache_hit_rate", rate)];
    push_wall(&mut metrics, "warm_replan", &walls);
    Ok(metrics)
}

/// Workload 3: WAL recovery — replay a fixed log back into a store.
fn wal_recover(m: &Matrix) -> Result<Vec<Metric>, String> {
    let store = KvStore::new();
    store.enable_wal();
    for i in 0..2000u32 {
        store
            .set(&format!("key{i}"), format!("value-{i}").into_bytes())
            .map_err(|e| format!("bench kv set: {e:?}"))?;
        store
            .incr("counter")
            .map_err(|e| format!("bench kv incr: {e:?}"))?;
    }
    let wal = store.wal_bytes();
    let mut walls = Vec::new();
    let mut replayed = 0u64;
    for _ in 0..m.iters {
        let t0 = Instant::now();
        let (_, report) = KvStore::recover(None, &wal).map_err(|e| format!("recover: {e:?}"))?;
        walls.push(t0.elapsed().as_secs_f64());
        replayed = report.records_replayed;
    }
    let mut metrics = vec![Metric::gated("wal_recover.records_replayed", replayed as f64)];
    push_wall(&mut metrics, "wal_recover", &walls);
    Ok(metrics)
}

/// Workload 4: adaptive frontier exploration — a fresh session per
/// iteration so every run pays the full solve; LP effort and frontier
/// size are the gated outputs.
fn frontier_explore(m: &Matrix) -> Result<Vec<Metric>, String> {
    let fcfg = FrontierConfig {
        max_points: 24,
        ..FrontierConfig::default()
    };
    let mut walls = Vec::new();
    let mut last = None;
    for _ in 0..m.iters {
        let dataset = pareto_datagen::rcv1_syn(m.seed, m.scale);
        let cluster = bench_cluster(m);
        let mut session = PlanSession::new(&cluster, framework_cfg(m), dataset, BENCH_WORKLOAD);
        let t0 = Instant::now();
        let outcome = session.explore_frontier(&fcfg).map_err(|e| e.to_string())?;
        walls.push(t0.elapsed().as_secs_f64());
        last = Some(outcome.result.report());
    }
    let report = last.expect("iters >= 1");
    let mut metrics = vec![
        Metric::gated("frontier_explore.lp_solves", report.lp_solves as f64),
        Metric::gated("frontier_explore.points_kept", report.points_kept as f64),
    ];
    push_wall(&mut metrics, "frontier_explore", &walls);
    Ok(metrics)
}

/// Workload 5: LP warm-starting — the same α sweep through a warm session
/// with basis reuse on vs off. The gated outputs are the solver-work
/// tallies read off the inert `pareto_lp_*` counters: pivots are a
/// deterministic property of the solve path, so the gate catches both a
/// warm-start regression (savings evaporate) and a solver change that
/// alters the pivot trajectory.
fn warm_sweep(m: &Matrix) -> Result<Vec<Metric>, String> {
    const ALPHAS: [f64; 6] = [1.0, 0.999, 0.995, 0.9, 0.5, 0.0];
    let run = |lp_warm: bool| -> Result<(std::sync::Arc<Telemetry>, f64), String> {
        let tel = Telemetry::enabled();
        let dataset = pareto_datagen::rcv1_syn(m.seed, m.scale);
        let cluster = bench_cluster(m);
        let cfg = FrameworkConfig {
            lp_warm,
            ..framework_cfg(m)
        };
        let mut session =
            PlanSession::new(&cluster, cfg, dataset, BENCH_WORKLOAD).with_telemetry(tel.clone());
        let t0 = Instant::now();
        for &alpha in &ALPHAS {
            session.set_alpha(alpha);
            session.plan().map_err(|e| e.to_string())?;
        }
        Ok((tel, t0.elapsed().as_secs_f64()))
    };
    let counter = |tel: &Telemetry, name: &str, labels: &[(&str, &str)]| -> u64 {
        tel.snapshot()
            .metrics
            .counters
            .get(&metrics::MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0)
    };
    let pivots = |tel: &Telemetry| -> u64 {
        counter(tel, metrics::LP_PIVOTS_TOTAL, &[("start", "cold")])
            + counter(tel, metrics::LP_PIVOTS_TOTAL, &[("start", "warm")])
    };
    let mut walls = Vec::new();
    let mut last = None;
    for _ in 0..m.iters {
        let (tel, wall) = run(true)?;
        walls.push(wall);
        last = Some(tel);
    }
    let tel_warm = last.expect("iters >= 1");
    let (tel_cold, _) = run(false)?;
    let warm_pivots = pivots(&tel_warm);
    let cold_pivots = pivots(&tel_cold);
    if warm_pivots >= cold_pivots {
        return Err(format!(
            "warm sweep spent {warm_pivots} pivots, cold {cold_pivots} — warm-starting saved nothing"
        ));
    }
    let mut metrics = vec![
        Metric::gated("warm_sweep.pivots_warm_start", warm_pivots as f64),
        Metric::gated("warm_sweep.pivots_cold_start", cold_pivots as f64),
        Metric::gated(
            "warm_sweep.warm_solves",
            counter(&tel_warm, metrics::LP_SOLVES_TOTAL, &[("start", "warm")]) as f64,
        ),
        Metric::gated(
            "warm_sweep.warm_fallbacks",
            counter(&tel_warm, metrics::LP_WARM_FALLBACKS_TOTAL, &[]) as f64,
        ),
    ];
    push_wall(&mut metrics, "warm_sweep", &walls);
    Ok(metrics)
}

/// Workload 6: a fault-injected run with telemetry armed, so the gated
/// metrics include the energy ledger's attributed green/dirty joules —
/// the regression gate over the paper's energy objective.
fn faulted_run(m: &Matrix) -> Result<Vec<Metric>, String> {
    let spec = "crash:1@0.5,slow:0@3";
    let faults = FaultPlan::parse(spec, m.nodes).map_err(|e| e.to_string())?;
    let mut walls = Vec::new();
    let mut metrics = Vec::new();
    for iter in 0..m.iters {
        let tel = Telemetry::enabled();
        let dataset = pareto_datagen::rcv1_syn(m.seed, m.scale);
        let cluster = bench_cluster(m).with_telemetry(tel.clone());
        let fw = Framework::new(&cluster, framework_cfg(m)).with_telemetry(tel.clone());
        let t0 = Instant::now();
        let out = fw
            .try_run_with_elastic(
                &dataset,
                BENCH_WORKLOAD,
                &faults,
                &ElasticPlan::none(),
                &RecoveryConfig::default(),
            )
            .map_err(|e| e.to_string())?;
        walls.push(t0.elapsed().as_secs_f64());
        if iter + 1 == m.iters {
            let rows = cluster.attribute_energy(&tel.snapshot().ledger);
            let energy_j: f64 = rows.iter().map(|r| r.energy_j).sum();
            let green_j: f64 = rows.iter().map(|r| r.green_j).sum();
            let rec = &out.outcome.recovery;
            metrics.push(Metric::gated("faulted_run.makespan_s", rec.makespan_s));
            metrics.push(Metric::gated("faulted_run.replans", f64::from(rec.replans)));
            metrics.push(Metric::gated("faulted_run.green_kj", green_j / 1000.0));
            metrics.push(Metric::gated(
                "faulted_run.dirty_kj",
                (energy_j - green_j) / 1000.0,
            ));
        }
    }
    push_wall(&mut metrics, "faulted_run", &walls);
    Ok(metrics)
}

/// Serialize a record deterministically via the telemetry JSON model
/// (fixed key order; wall metrics vary run to run by nature).
fn record_json(m: &Matrix, metrics: &[Metric]) -> String {
    let matrix = Value::obj(vec![
        ("preset", Value::Str(m.preset.into())),
        ("scale", Value::Num(m.scale)),
        ("seed", Value::Num(m.seed as f64)),
        ("nodes", Value::Num(m.nodes as f64)),
        ("iters", Value::Num(f64::from(m.iters))),
    ]);
    let entries = Value::Arr(
        metrics
            .iter()
            .map(|metric| {
                Value::obj(vec![
                    ("name", Value::Str(metric.name.clone())),
                    ("value", Value::Num(metric.value)),
                    (
                        "gate",
                        if metric.gate {
                            Value::Num(1.0)
                        } else {
                            Value::Num(0.0)
                        },
                    ),
                    ("tol_rel", Value::Num(metric.tol_rel)),
                ])
            })
            .collect(),
    );
    Value::obj(vec![
        ("version", Value::Num(1.0)),
        ("kind", Value::Str("bench".into())),
        ("matrix", matrix),
        ("metrics", entries),
    ])
    .to_json()
}

fn matrix_field(doc: &Value, key: &str) -> Result<f64, String> {
    doc.get("matrix")
        .and_then(|m| m.get(key))
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("baseline matrix missing {key:?}"))
}

/// Compare gated metrics against a baseline record. Returns the list of
/// regression lines (empty = pass).
fn compare_against(
    baseline_text: &str,
    m: &Matrix,
    metrics: &[Metric],
) -> Result<Vec<String>, String> {
    let doc = json::parse(baseline_text).map_err(|e| format!("parse baseline: {e}"))?;
    if doc.get("kind").and_then(Value::as_str) != Some("bench") {
        return Err("baseline is not a bench record".into());
    }
    let preset = doc
        .get("matrix")
        .and_then(|mx| mx.get("preset"))
        .and_then(Value::as_str)
        .ok_or("baseline matrix missing preset")?;
    if preset != m.preset {
        return Err(format!(
            "baseline matrix mismatch: preset {preset:?} vs {:?}",
            m.preset
        ));
    }
    for (key, ours) in [
        ("scale", m.scale),
        ("seed", m.seed as f64),
        ("nodes", m.nodes as f64),
        ("iters", f64::from(m.iters)),
    ] {
        let theirs = matrix_field(&doc, key)?;
        if theirs != ours {
            return Err(format!(
                "baseline matrix mismatch: {key} {theirs} vs {ours} — re-record instead of comparing"
            ));
        }
    }
    let entries = doc
        .get("metrics")
        .and_then(Value::as_arr)
        .ok_or("baseline missing metrics array")?;
    let mut regressions = Vec::new();
    for entry in entries {
        let name = entry
            .get("name")
            .and_then(Value::as_str)
            .ok_or("baseline metric missing name")?;
        let gate = entry.get("gate").and_then(Value::as_f64).unwrap_or(0.0) != 0.0;
        if !gate {
            continue;
        }
        let base = entry
            .get("value")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("baseline metric {name:?} missing value"))?;
        let tol = entry
            .get("tol_rel")
            .and_then(Value::as_f64)
            .unwrap_or(GATE_TOL_REL);
        let Some(current) = metrics.iter().find(|metric| metric.name == name) else {
            regressions.push(format!(
                "bench-regression: {name} missing from current run (baseline {base})"
            ));
            continue;
        };
        let rel = (current.value - base).abs() / base.abs().max(1e-9);
        if rel > tol {
            regressions.push(format!(
                "bench-regression: {name} baseline={base} current={} rel={rel:.3e} tol={tol:.1e}",
                current.value
            ));
        }
    }
    Ok(regressions)
}

/// `bench`: run the matrix, optionally record, optionally gate against a
/// baseline.
pub fn bench_cmd(
    common: &Common,
    record: Option<&Path>,
    baseline: Option<&Path>,
    iters: u32,
) -> Result<(), String> {
    let m = Matrix {
        preset: "rcv1",
        scale: common.scale,
        seed: common.seed,
        nodes: common.nodes,
        iters,
    };
    println!(
        "bench matrix       preset={} scale={} seed={} nodes={} iters={}",
        m.preset, m.scale, m.seed, m.nodes, m.iters
    );
    let mut metrics = Vec::new();
    for (label, run) in [
        ("cold_plan", cold_plan as fn(&Matrix) -> Result<Vec<Metric>, String>),
        ("warm_replan", warm_replan),
        ("wal_recover", wal_recover),
        ("frontier_explore", frontier_explore),
        ("warm_sweep", warm_sweep),
        ("faulted_run", faulted_run),
    ] {
        let t0 = Instant::now();
        metrics.extend(run(&m)?);
        println!(
            "bench workload     {label} done in {:.3}s",
            t0.elapsed().as_secs_f64()
        );
    }
    for metric in &metrics {
        println!(
            "bench metric       {} = {}{}",
            metric.name,
            metric.value,
            if metric.gate { "  [gated]" } else { "" }
        );
    }

    if let Some(path) = record {
        fs::write(path, record_json(&m, &metrics)).map_err(|e| format!("write {path:?}: {e}"))?;
        event::info("cli", format!("wrote bench record to {}", path.display()));
    }
    if let Some(path) = baseline {
        let text = fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
        let regressions = compare_against(&text, &m, &metrics)?;
        if regressions.is_empty() {
            println!(
                "bench result       all gated metrics within tolerance of {}",
                path.display()
            );
        } else {
            for line in &regressions {
                println!("{line}");
            }
            return Err(format!(
                "{} gated metric(s) regressed vs {}",
                regressions.len(),
                path.display()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_matrix() -> Matrix {
        Matrix {
            preset: "rcv1",
            scale: 0.02,
            seed: 2017,
            nodes: 4,
            iters: 1,
        }
    }

    #[test]
    fn record_round_trips_and_compares_clean_against_itself() {
        let m = tiny_matrix();
        let metrics = vec![
            Metric::gated("cold_plan.makespan_s", 12.5),
            Metric::wall("cold_plan.p50_wall_s", 0.03),
        ];
        let text = record_json(&m, &metrics);
        let regressions = compare_against(&text, &m, &metrics).unwrap();
        assert!(regressions.is_empty(), "{regressions:?}");
    }

    #[test]
    fn gated_drift_is_a_regression_but_wall_drift_is_not() {
        let m = tiny_matrix();
        let baseline = record_json(
            &m,
            &[
                Metric::gated("faulted_run.green_kj", 100.0),
                Metric::wall("faulted_run.p50_wall_s", 0.5),
            ],
        );
        // Wall time tripled: fine. Green joules off by 1%: regression.
        let current = vec![
            Metric::gated("faulted_run.green_kj", 101.0),
            Metric::wall("faulted_run.p50_wall_s", 1.5),
        ];
        let regressions = compare_against(&baseline, &m, &current).unwrap();
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].contains("faulted_run.green_kj"));
    }

    #[test]
    fn matrix_mismatch_is_an_error_not_a_pass() {
        let m = tiny_matrix();
        let baseline = record_json(&m, &[Metric::gated("x", 1.0)]);
        let other = Matrix {
            nodes: 8,
            ..tiny_matrix()
        };
        let err = compare_against(&baseline, &other, &[Metric::gated("x", 1.0)]).unwrap_err();
        assert!(err.contains("matrix mismatch"), "{err}");
    }

    #[test]
    fn missing_gated_metric_fails_comparison() {
        let m = tiny_matrix();
        let baseline = record_json(&m, &[Metric::gated("frontier_explore.lp_solves", 9.0)]);
        let regressions = compare_against(&baseline, &m, &[]).unwrap();
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("missing from current run"));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let samples = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&samples, 50.0), 3.0);
        assert_eq!(percentile(&samples, 99.0), 5.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }
}
