//! `paretofab` — the framework as a command-line middleware.
//!
//! ```text
//! paretofab gen       --preset rcv1 --scale 0.25 --seed 7 --out corpus.txt
//! paretofab partition --input corpus.txt --kind text --nodes 8 \
//!                     --strategy het-aware --workload patterns --support 0.1 \
//!                     --out parts/
//! paretofab run       --input corpus.txt --kind text --nodes 8 \
//!                     --strategy het-energy-aware --alpha 0.995 \
//!                     --workload patterns --support 0.1
//! ```
//!
//! `gen` writes a synthetic corpus in the plain-text loader format;
//! `partition` plans a placement and writes one file per partition plus a
//! plan summary; `run` additionally executes the workload on the simulated
//! heterogeneous cluster and prints makespan/dirty-energy/quality.

mod args;
mod bench;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
