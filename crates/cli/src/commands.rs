//! Command implementations.

use std::fs;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use pareto_cluster::{Durability, FaultPlan, FaultSpec, NodeSpec, SimCluster};
use pareto_core::framework::{DurabilityReport, Framework, FrameworkConfig, Quality, Strategy};
use pareto_core::frontier::{FrontierConfig, FrontierResult, ObjectiveSet};
use pareto_core::{
    advise_join, run_chaos, ChaosConfig, ElasticPlan, ElasticSpec, JoinAdvice, RecoveryConfig,
};
use pareto_core::PlanSession;
use pareto_datagen::{loaders, writers, DataKind, Dataset};
use pareto_telemetry::{
    event, export, json, report, CaptureSink, FlightRecorder, StderrSink, TeeSink, Telemetry,
};

use pareto_service::{run_soak, PlanService, RetryPolicy, Server, ServiceConfig, SoakConfig};

use crate::args::{Command, Common, ServeOpts};
use crate::bench;

/// Dispatch a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Gen {
            preset,
            scale,
            seed,
            out,
        } => gen(&preset, scale, seed, &out),
        Command::Partition { common, out } => partition(&common, &out),
        Command::Run { common } => execute(&common),
        Command::Frontier {
            common,
            objectives,
            tol,
            max_points,
            out,
        } => frontier(&common, objectives, tol, max_points, out.as_deref()),
        Command::Report {
            input,
            trace,
            lineage_batch,
        } => report_cmd(&input, trace.as_deref(), lineage_batch),
        Command::Bench {
            common,
            record,
            baseline,
            iters,
        } => bench::bench_cmd(&common, record.as_deref(), baseline.as_deref(), iters),
        Command::Plan { common, sweep, out } => plan_cmd(&common, &sweep, out.as_deref()),
        Command::Replan {
            common,
            drop_node,
            restore_node,
            realpha,
            append_scale,
        } => replan_cmd(&common, drop_node, restore_node, realpha, append_scale),
        Command::Chaos {
            common,
            schedules,
            inject_corruption,
            with_elastic,
        } => chaos_cmd(&common, schedules, inject_corruption, with_elastic),
        Command::Serve { common, opts, out } => serve_cmd(&common, &opts, out.as_deref()),
        Command::Elastic {
            common,
            candidate,
            out,
        } => elastic_cmd(&common, candidate, out.as_deref()),
    }
}

/// Telemetry wiring for one CLI invocation: an enabled recorder shared by
/// the framework and the simulated cluster, plus a capture sink so the
/// JSON dump includes every structured event. Created only when the user
/// asked for an output file — otherwise commands run with the disabled
/// recorder and pay a single branch per call site.
struct TelemetrySession {
    tel: Arc<Telemetry>,
    capture: Arc<CaptureSink>,
    flight: Arc<FlightRecorder>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    telemetry_out: Option<PathBuf>,
    flight_out: Option<PathBuf>,
}

/// Frames the flight recorder's ring holds: enough for the interesting
/// tail of a failing run without unbounded growth.
const FLIGHT_CAPACITY: usize = 4096;

impl TelemetrySession {
    fn start(common: &Common) -> Option<TelemetrySession> {
        if !common.wants_telemetry() && common.flight_out.is_none() {
            return None;
        }
        let capture = Arc::new(CaptureSink::new());
        let flight = Arc::new(FlightRecorder::new(FLIGHT_CAPACITY));
        event::set_sink(Arc::new(TeeSink(
            Arc::new(TeeSink(Arc::new(StderrSink), capture.clone())),
            flight.clone(),
        )));
        Some(TelemetrySession {
            tel: Telemetry::enabled(),
            capture,
            flight,
            trace_out: common.trace_out.clone(),
            metrics_out: common.metrics_out.clone(),
            telemetry_out: common.telemetry_out.clone(),
            flight_out: common.flight_out.clone(),
        })
    }

    fn recorder(session: &Option<TelemetrySession>) -> Option<Arc<Telemetry>> {
        session.as_ref().map(|s| s.tel.clone())
    }

    /// Write the requested exporter files from the final snapshot.
    fn finish(&self) -> Result<(), String> {
        let snapshot = self.tel.snapshot();
        if let Some(path) = &self.trace_out {
            write_text(path, &export::chrome_trace(&snapshot))?;
        }
        if let Some(path) = &self.metrics_out {
            write_text(path, &export::prometheus_text(&snapshot))?;
        }
        if let Some(path) = &self.telemetry_out {
            write_text(path, &export::json_dump(&snapshot, &self.capture.events()))?;
        }
        for (label, path) in [
            ("chrome trace", &self.trace_out),
            ("prometheus metrics", &self.metrics_out),
            ("telemetry dump", &self.telemetry_out),
        ] {
            if let Some(path) = path {
                event::info("cli", format!("wrote {label} to {}", path.display()));
            }
        }
        Ok(())
    }

    /// Dump the flight recorder's ring to `--flight-out` (no-op without
    /// the flag). Absorbs the final telemetry snapshot first so the black
    /// box carries the simulated timeline next to the live event stream.
    fn dump_flight(&self, reason: &str) {
        let Some(path) = &self.flight_out else {
            return;
        };
        self.flight.absorb_snapshot(&self.tel.snapshot());
        match fs::write(path, self.flight.dump_json(reason)) {
            Ok(()) => event::info(
                "cli",
                format!("flight recorder dumped to {} ({reason})", path.display()),
            ),
            Err(e) => event::warn("cli", format!("flight dump {path:?} failed: {e}")),
        }
    }
}

/// Pass `result` through; on failure, dump the flight recorder first so
/// the error leaves a black box behind.
fn flight_guard<T>(
    session: &Option<TelemetrySession>,
    result: Result<T, String>,
    reason: &str,
) -> Result<T, String> {
    if result.is_err() {
        if let Some(s) = session {
            s.dump_flight(reason);
        }
    }
    result
}

fn write_text(path: &Path, contents: &str) -> Result<(), String> {
    fs::write(path, contents).map_err(|e| format!("write {path:?}: {e}"))
}

/// `report`: validate and summarize a `--telemetry-out` dump (and
/// optionally a `--trace-out` chrome trace). `report lineage --batch N`
/// reconstructs one work batch's causal hop chain instead.
fn report_cmd(input: &Path, trace: Option<&Path>, lineage_batch: Option<u32>) -> Result<(), String> {
    let text = fs::read_to_string(input).map_err(|e| format!("read {input:?}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("parse {input:?}: {e}"))?;
    report::validate_dump(&doc).map_err(|e| format!("invalid dump {input:?}: {e}"))?;
    if let Some(batch) = lineage_batch {
        print!("{}", report::lineage_chain(&doc, batch)?);
        return Ok(());
    }
    print!("{}", report::summarize_dump(&doc)?);
    if let Some(tpath) = trace {
        let ttext = fs::read_to_string(tpath).map_err(|e| format!("read {tpath:?}: {e}"))?;
        let tdoc = json::parse(&ttext).map_err(|e| format!("parse {tpath:?}: {e}"))?;
        let stats = report::validate_chrome_trace(&tdoc)
            .map_err(|e| format!("invalid chrome trace {tpath:?}: {e}"))?;
        println!(
            "chrome trace {}: OK — {} events ({} span pairs, {} instants) on {} track(s)",
            tpath.display(),
            stats.events,
            stats.span_pairs,
            stats.instants,
            stats.tracks
        );
    }
    Ok(())
}

fn dataset_from_preset(name: &str, seed: u64, scale: f64) -> Result<Dataset, String> {
    Ok(match name {
        "swissprot" => pareto_datagen::swissprot_syn(seed, scale),
        "treebank" => pareto_datagen::treebank_syn(seed, scale),
        "uk" => pareto_datagen::uk_syn(seed, scale),
        "arabic" => pareto_datagen::arabic_syn(seed, scale),
        "rcv1" => pareto_datagen::rcv1_syn(seed, scale),
        other => return Err(format!("unknown preset {other:?}")),
    })
}

fn load_dataset(common: &Common) -> Result<Dataset, String> {
    if let Some(preset) = &common.preset {
        return dataset_from_preset(preset, common.seed, common.scale);
    }
    let input = common.input.as_ref().expect("validated by the parser");
    let kind = common.kind.expect("validated by the parser");
    let file = fs::File::open(input).map_err(|e| format!("open {input:?}: {e}"))?;
    let name = input
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "dataset".into());
    loaders::load(&name, kind, BufReader::new(file)).map_err(|e| format!("load {input:?}: {e}"))
}

fn gen(preset: &str, scale: f64, seed: u64, out: &Path) -> Result<(), String> {
    let ds = dataset_from_preset(preset, seed, scale)?;
    let file = fs::File::create(out).map_err(|e| format!("create {out:?}: {e}"))?;
    writers::write(&ds, BufWriter::new(file)).map_err(|e| format!("write {out:?}: {e}"))?;
    event::info(
        "cli",
        format!(
            "wrote {} ({} records, {} kind) to {}",
            ds.name,
            ds.len(),
            ds.kind,
            out.display()
        ),
    );
    Ok(())
}

fn build_framework_parts(
    common: &Common,
    tel: Option<Arc<Telemetry>>,
) -> (Dataset, SimCluster, FrameworkConfig) {
    let mut cluster = SimCluster::new(NodeSpec::paper_cluster(
        common.nodes,
        400.0,
        2,
        9,
        common.seed,
    ));
    if let Some(tel) = tel {
        cluster = cluster.with_telemetry(tel);
    }
    let cfg = FrameworkConfig {
        strategy: common.strategy,
        layout: common.layout,
        seed: common.seed,
        threads: common.threads,
        lp_warm: common.lp_warm,
        durability: common.durability,
        ..FrameworkConfig::default()
    };
    (Dataset::new("placeholder", DataKind::Text, vec![]), cluster, cfg)
}

fn partition(common: &Common, out: &Path) -> Result<(), String> {
    let session = TelemetrySession::start(common);
    let dataset = load_dataset(common)?;
    let (_, cluster, cfg) = build_framework_parts(common, TelemetrySession::recorder(&session));
    let mut fw = Framework::new(&cluster, cfg);
    if let Some(tel) = TelemetrySession::recorder(&session) {
        fw = fw.with_telemetry(tel);
    }
    let plan = fw.plan(&dataset, common.workload);

    fs::create_dir_all(out).map_err(|e| format!("mkdir {out:?}: {e}"))?;
    for (node, indices) in plan.partitions.iter().enumerate() {
        let sub = Dataset::new(
            format!("{}-part{node}", dataset.name),
            dataset.kind,
            indices.iter().map(|&i| dataset.items[i].clone()).collect(),
        );
        let path = out.join(format!("partition-{node:02}.txt"));
        let file = fs::File::create(&path).map_err(|e| format!("create {path:?}: {e}"))?;
        writers::write(&sub, BufWriter::new(file)).map_err(|e| format!("write {path:?}: {e}"))?;
    }
    // Plan summary.
    let path = out.join("plan.txt");
    let mut f = BufWriter::new(fs::File::create(&path).map_err(|e| format!("{e}"))?);
    let mut emit = |line: String| {
        let _ = writeln!(f, "{line}");
    };
    emit(format!("dataset: {} ({} records)", dataset.name, dataset.len()));
    emit(format!("strategy: {}", common.strategy.label()));
    emit(format!("sizes: {:?}", plan.sizes));
    emit(format!(
        "planning: {:.3}s total (sketch {:.3}s, stratify {:.3}s, profile {:.3}s, \
         optimize {:.3}s) on {} thread(s)",
        plan.timings.total_s,
        plan.timings.sketch_s,
        plan.timings.stratify_s,
        plan.timings.profile_s,
        plan.timings.optimize_s,
        common.threads
    ));
    if let Some(point) = &plan.pareto {
        emit(format!("alpha: {}", point.alpha));
        emit(format!("predicted makespan: {:.2}s", point.predicted_makespan));
        emit(format!(
            "predicted dirty energy: {:.1} kJ",
            point.predicted_dirty_joules / 1000.0
        ));
    }
    if let Some(models) = &plan.time_models {
        for m in models {
            emit(format!(
                "node {}: f(x) = {:.6e}*x + {:.3} (R^2 {:.4})",
                m.node_id, m.fit.slope, m.fit.intercept, m.fit.r_squared
            ));
        }
    }
    event::info(
        "cli",
        format!(
            "wrote {} partition files + plan.txt to {}",
            plan.partitions.len(),
            out.display()
        ),
    );
    if let Some(session) = &session {
        session.finish()?;
    }
    Ok(())
}

/// `frontier`: adaptive dominance-based frontier exploration through a
/// warm [`PlanSession`] — a coarse α grid refined by bisecting only
/// intervals whose plans differ, replacing the historical hand-rolled
/// fixed sweep. With `--out` the frontier is written as deterministic
/// JSON (byte-identical across runs and thread counts).
fn frontier(
    common: &Common,
    objectives: ObjectiveSet,
    tol: f64,
    max_points: usize,
    out: Option<&Path>,
) -> Result<(), String> {
    let tel = TelemetrySession::start(common);
    let dataset = load_dataset(common)?;
    let (_, cluster, cfg) = build_framework_parts(common, TelemetrySession::recorder(&tel));
    let mut session = PlanSession::new(&cluster, cfg, dataset, common.workload);
    if let Some(rec) = TelemetrySession::recorder(&tel) {
        session = session.with_telemetry(rec);
    }
    let fcfg = FrontierConfig {
        objectives,
        tol,
        max_points,
        ..FrontierConfig::default()
    };
    let outcome = flight_guard(
        &tel,
        session.explore_frontier(&fcfg).map_err(|e| e.to_string()),
        "plan-error",
    )?;
    let result = &outcome.result;
    let report = result.report();

    println!(
        "adaptive Pareto frontier for {} on {} nodes (objectives {}):",
        session.dataset().name,
        common.nodes,
        result.objectives
    );
    println!(
        "{:>12} {:>12} {:>14} {:>14}  sizes",
        "alpha", "time_s", "dirty_kJ", "transfer_kB"
    );
    for point in &result.points {
        println!(
            "{:>12.6} {:>12.2} {:>14.2} {:>14.2}  {:?}",
            point.alpha,
            point.makespan_s,
            point.dirty_joules / 1000.0,
            point.transfer_bytes / 1000.0,
            point.sizes
        );
    }
    println!(
        "frontier           {} point(s) kept, {} dominated candidate(s) filtered",
        report.points_kept, report.dominated_candidates
    );
    println!(
        "refinement         {} LP solve(s), {} bisection(s), finest alpha gap {:.3e}",
        report.lp_solves, report.bisections, report.finest_gap
    );
    println!(
        "knee               alpha={:.6} time={:.2}s dirty={:.2}kJ",
        report.knee_alpha,
        report.knee_time_s,
        report.knee_dirty_joules / 1000.0
    );
    println!(
        "hypervolume        {:.4e} vs equal-split baseline (time {:.2}s, dirty {:.2}kJ)",
        report.hypervolume_vs_baseline,
        result.baseline.0,
        result.baseline.1 / 1000.0
    );
    println!(
        "frontier cache     {}",
        if outcome.cache_hit { "hit" } else { "miss" }
    );
    print_cache_stats(&session.cache_stats());

    if let Some(path) = out {
        write_text(path, &frontier_json(result))?;
        event::info("cli", format!("wrote frontier JSON to {}", path.display()));
    }
    if let Some(tel) = &tel {
        tel.finish()?;
    }
    Ok(())
}

/// Serialize a frontier deterministically: fixed key order, `{}` float
/// formatting (shortest round-trip representation), no timings — so two
/// runs over the same inputs produce byte-identical files at any thread
/// count.
fn frontier_json(result: &FrontierResult) -> String {
    use std::fmt::Write as _;
    let report = result.report();
    let mut s = String::new();
    s.push_str("{\n  \"objectives\": [");
    for (i, o) in result.objectives.objectives().iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{}\"", o.label());
    }
    s.push_str("],\n");
    let _ = writeln!(
        s,
        "  \"baseline\": {{\"time_s\": {}, \"dirty_joules\": {}}},",
        result.baseline.0, result.baseline.1
    );
    let _ = writeln!(
        s,
        "  \"report\": {{\"points_kept\": {}, \"dominated_candidates\": {}, \
         \"lp_solves\": {}, \"bisections\": {}, \"finest_gap\": {}, \
         \"knee_alpha\": {}, \"knee_time_s\": {}, \"knee_dirty_joules\": {}, \
         \"hypervolume_vs_baseline\": {}}},",
        report.points_kept,
        report.dominated_candidates,
        report.lp_solves,
        report.bisections,
        report.finest_gap,
        report.knee_alpha,
        report.knee_time_s,
        report.knee_dirty_joules,
        report.hypervolume_vs_baseline
    );
    s.push_str("  \"points\": [\n");
    for (i, p) in result.points.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"alpha\": {}, \"time_s\": {}, \"dirty_joules\": {}, \
             \"transfer_bytes\": {}, \"sizes\": {:?}}}",
            p.alpha, p.makespan_s, p.dirty_joules, p.transfer_bytes, p.sizes
        );
        s.push_str(if i + 1 < result.points.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn execute(common: &Common) -> Result<(), String> {
    let session = TelemetrySession::start(common);
    let dataset = load_dataset(common)?;
    let (_, cluster, cfg) = build_framework_parts(common, TelemetrySession::recorder(&session));
    let mut fw = Framework::new(&cluster, cfg);
    if let Some(tel) = TelemetrySession::recorder(&session) {
        fw = fw.with_telemetry(tel);
    }
    if common.faults.is_some() || common.elastic.is_some() {
        let faults = match &common.faults {
            Some(spec) => FaultPlan::parse(spec, common.nodes).map_err(|e| e.to_string())?,
            None => FaultPlan::none(),
        };
        let elastic = match &common.elastic {
            Some(spec) => ElasticPlan::parse(spec, common.nodes).map_err(|e| e.to_string())?,
            None => ElasticPlan::none(),
        };
        let result = flight_guard(
            &session,
            execute_with_faults(&fw, &dataset, common, &faults, &elastic),
            "run-error",
        );
        if let Some(session) = &session {
            session.finish()?;
        }
        return result;
    }
    let outcome = fw.run(&dataset, common.workload);

    println!(
        "dataset            {} ({} records)",
        dataset.name,
        dataset.len()
    );
    println!("strategy           {}", common.strategy.label());
    println!("partition sizes    {:?}", outcome.plan.sizes);
    println!(
        "planning time      {:.3} s (sketch {:.3} / stratify {:.3} / profile {:.3} / \
         optimize {:.3}) on {} thread(s)",
        outcome.plan.timings.total_s,
        outcome.plan.timings.sketch_s,
        outcome.plan.timings.stratify_s,
        outcome.plan.timings.profile_s,
        outcome.plan.timings.optimize_s,
        common.threads
    );
    println!(
        "makespan           {:.2} s",
        outcome.report.makespan_seconds
    );
    println!(
        "dirty energy       {:.1} kJ (linear) / {:.1} kJ (clamped)",
        outcome.report.total_dirty_linear / 1000.0,
        outcome.report.total_dirty_clamped / 1000.0
    );
    println!(
        "total energy       {:.1} kJ",
        outcome.report.total_energy_joules / 1000.0
    );
    println!("imbalance          {:.2}", outcome.report.imbalance());
    match outcome.quality {
        Quality::Mining {
            global_frequent,
            candidates,
            false_positives,
        } => println!(
            "quality            {global_frequent} frequent patterns, \
             {candidates} candidates, {false_positives} false positives pruned"
        ),
        Quality::Compression {
            input_bytes,
            output_bytes,
            ratio,
        } => println!(
            "quality            {input_bytes} -> {output_bytes} bytes (ratio {ratio:.2})"
        ),
    }
    if let Some(dur) = &outcome.durability {
        print_durability(dur)?;
    }
    if let Some(session) = &session {
        session.finish()?;
    }
    Ok(())
}

fn durability_label(mode: Durability) -> &'static str {
    match mode {
        Durability::None => "none",
        Durability::SnapshotOnCheckpoint => "snapshot",
        Durability::Wal => "wal",
    }
}

/// Print the post-run durability verification and fail the command when
/// any node's recovery was not bit-identical.
fn print_durability(dur: &DurabilityReport) -> Result<(), String> {
    println!(
        "durability         {} — {} WAL record(s) across {} node(s)",
        durability_label(dur.mode),
        dur.total_wal_records(),
        dur.nodes.len()
    );
    for node in &dur.nodes {
        println!(
            "                   node {}: {} record(s), {} WAL byte(s), recovery {}",
            node.node_id,
            node.wal_records,
            node.wal_bytes,
            if node.recovered_ok { "ok" } else { "MISMATCH" }
        );
    }
    if !dur.all_recovered() {
        return Err("durability verification failed: recovered state diverged".into());
    }
    Ok(())
}

/// One printable line per plan: α (when the LP ran), sizes, and the LP's
/// predicted objectives. Timing is reported separately so this line stays
/// deterministic across runs.
fn plan_line(plan: &pareto_core::Plan) -> String {
    match &plan.pareto {
        Some(p) => format!(
            "alpha={} sizes={:?} makespan_s={:.4} dirty_kj={:.4}",
            p.alpha,
            plan.sizes,
            p.predicted_makespan,
            p.predicted_dirty_joules / 1000.0
        ),
        None => format!("alpha=- sizes={:?}", plan.sizes),
    }
}

fn reuse_line(reuse: pareto_core::StageReuse) -> String {
    let flag = |b: bool| if b { "hit" } else { "miss" };
    format!(
        "sketch={} stratify={} profile={} optimize={} partition={}",
        flag(reuse.sketch),
        flag(reuse.stratify),
        flag(reuse.profile),
        flag(reuse.optimize),
        flag(reuse.partition)
    )
}

fn print_cache_stats(stats: &pareto_core::CacheStats) {
    println!("cache events:");
    for (stage, event, count) in stats.events() {
        println!("  {stage}/{event} = {count}");
    }
}

/// `plan`: run the incremental planning engine through a warm
/// [`PlanSession`], optionally sweeping α. The first plan pays the full
/// pipeline; every later α reuses the cached sketch/stratify/profile
/// artifacts, which the printed cache statistics make visible.
fn plan_cmd(common: &Common, sweep: &[f64], out: Option<&Path>) -> Result<(), String> {
    let tel = TelemetrySession::start(common);
    let dataset = load_dataset(common)?;
    let (_, cluster, cfg) = build_framework_parts(common, TelemetrySession::recorder(&tel));
    let mut session = PlanSession::new(&cluster, cfg, dataset, common.workload);
    if let Some(rec) = TelemetrySession::recorder(&tel) {
        session = session.with_telemetry(rec);
    }
    println!(
        "dataset            {} ({} records)",
        session.dataset().name,
        session.dataset().len()
    );
    println!("nodes              {}", common.nodes);

    let mut plans = Vec::new();
    if sweep.is_empty() {
        let plan = flight_guard(&tel, session.plan().map_err(|e| e.to_string()), "plan-error")?;
        println!("plan               {}", plan_line(&plan));
        println!("stage cache        {}", reuse_line(session.last_reuse()));
        plans.push(plan);
    } else {
        for &alpha in sweep {
            session.set_alpha(alpha);
            let plan =
                flight_guard(&tel, session.plan().map_err(|e| e.to_string()), "plan-error")?;
            println!(
                "plan               {}  [{}; {:.4}s]",
                plan_line(&plan),
                reuse_line(session.last_reuse()),
                plan.timings.total_s
            );
            plans.push(plan);
        }
    }
    if plans.len() >= 2 {
        let cold_s = plans[0].timings.total_s;
        let warm: Vec<f64> = plans[1..].iter().map(|p| p.timings.total_s).collect();
        let warm_avg_s = warm.iter().sum::<f64>() / warm.len() as f64;
        println!("sweep-timing: cold_s={cold_s:.6} warm_avg_s={warm_avg_s:.6}");
    }
    print_cache_stats(&session.cache_stats());

    if let Some(path) = out {
        // Deterministic summary (no timings) so CI can diff cold vs warm
        // sweeps byte-for-byte.
        let mut text = String::new();
        for plan in &plans {
            text.push_str(&plan_line(plan));
            text.push('\n');
        }
        write_text(path, &text)?;
        event::info("cli", format!("wrote plan summary to {}", path.display()));
    }
    if let Some(tel) = &tel {
        tel.finish()?;
    }
    Ok(())
}

/// `replan`: plan cold, apply the requested deltas (append records, drop
/// or restore a node, change α), replan warm, and print which stages were
/// recomputed.
fn replan_cmd(
    common: &Common,
    drop_node: Option<usize>,
    restore_node: Option<usize>,
    realpha: Option<f64>,
    append_scale: f64,
) -> Result<(), String> {
    let tel = TelemetrySession::start(common);
    let dataset = load_dataset(common)?;
    let (_, cluster, cfg) = build_framework_parts(common, TelemetrySession::recorder(&tel));
    let mut session = PlanSession::new(&cluster, cfg, dataset, common.workload);
    if let Some(rec) = TelemetrySession::recorder(&tel) {
        session = session.with_telemetry(rec);
    }
    let cold = session.plan().map_err(|e| e.to_string())?;
    println!(
        "cold plan          {}  [{:.4}s]",
        plan_line(&cold),
        cold.timings.total_s
    );

    if append_scale > 0.0 {
        let preset = common
            .preset
            .as_deref()
            .ok_or("--append-scale needs --preset to synthesize the appended records")?;
        // A different seed so the appended records are new content, not a
        // replay of the existing prefix.
        let extra = dataset_from_preset(preset, common.seed.wrapping_add(1), append_scale)?;
        let n = extra.len();
        session.append_items(extra.items);
        println!(
            "delta              appended {n} records (dataset now {})",
            session.dataset().len()
        );
    }
    if let Some(node) = drop_node {
        session.drop_node(node).map_err(|e| e.to_string())?;
        println!(
            "delta              dropped node {node} (roster now {:?})",
            session.roster()
        );
    }
    if let Some(node) = restore_node {
        session.restore_node(node).map_err(|e| e.to_string())?;
        println!(
            "delta              restored node {node} (roster now {:?})",
            session.roster()
        );
    }
    if let Some(alpha) = realpha {
        session.set_alpha(alpha);
        println!("delta              alpha -> {alpha}");
    }

    let warm = session.plan().map_err(|e| e.to_string())?;
    println!(
        "warm replan        {}  [{:.4}s]",
        plan_line(&warm),
        warm.timings.total_s
    );
    println!("stage cache        {}", reuse_line(session.last_reuse()));
    print_cache_stats(&session.cache_stats());
    if let Some(tel) = &tel {
        tel.finish()?;
    }
    Ok(())
}

/// `run --faults` / `run --elastic`: execute through the fault-tolerant
/// path (with any planned roster transitions) and print the structured
/// recovery report next to the usual plan summary.
fn execute_with_faults(
    fw: &Framework,
    dataset: &Dataset,
    common: &Common,
    faults: &FaultPlan,
    elastic: &ElasticPlan,
) -> Result<(), String> {
    let out = fw
        .try_run_with_elastic(
            dataset,
            common.workload,
            faults,
            elastic,
            &RecoveryConfig::default(),
        )
        .map_err(|e| e.to_string())?;
    let rec = &out.outcome.recovery;
    println!(
        "dataset            {} ({} records)",
        dataset.name,
        dataset.len()
    );
    println!("strategy           {}", common.strategy.label());
    println!("partition sizes    {:?}", out.plan.sizes);
    println!("faults injected    {}", rec.faults_injected);
    for ev in faults.events() {
        println!("                   node {} <- {:?}", ev.node_id, ev.kind);
    }
    if !elastic.is_empty() {
        println!("roster events      {}", elastic.len());
        for ev in elastic.events() {
            println!("                   node {} <- {:?}", ev.node_id, ev.kind);
        }
        println!(
            "elastic            {} join(s), {} drain(s), {} preempt(s); left nodes {:?}",
            rec.joins_applied, rec.drains_applied, rec.preempts_applied, rec.left_nodes
        );
        println!(
            "handoffs           {} record(s) covering {} item(s), {} store retry(ies)",
            rec.handoff_records, rec.items_handed_off, rec.handoff_retries
        );
    }
    println!(
        "crashed nodes      {:?} ({} replans, {} retries, {} speculative steals)",
        rec.crashed_nodes, rec.replans, rec.retries_spent, rec.speculative_steals
    );
    println!(
        "items              {}/{} completed ({} reassigned, {} stolen){}",
        rec.items_completed,
        rec.items_total,
        rec.items_reassigned,
        rec.items_stolen,
        if rec.exactly_once {
            " — exactly once"
        } else {
            " — INCOMPLETE"
        }
    );
    println!(
        "makespan           {:.2} s vs {:.2} s fault-free (+{:.1}%)",
        rec.makespan_s,
        rec.fault_free_makespan_s,
        rec.makespan_overhead * 100.0
    );
    println!(
        "dirty energy       {:.1} kJ vs {:.1} kJ fault-free ({:+.1} kJ)",
        rec.dirty_linear_j / 1000.0,
        rec.fault_free_dirty_linear_j / 1000.0,
        rec.dirty_overhead_j / 1000.0
    );
    if !rec.exactly_once {
        return Err(format!(
            "{} of {} items lost (all nodes failed)",
            rec.items_total - rec.items_completed,
            rec.items_total
        ));
    }
    Ok(())
}

/// `chaos`: sweep seeded fault schedules through the executor + invariant
/// auditor and shrink every violation to a minimal reproducing `--faults`
/// spec. Exit codes are CI-oriented: a clean sweep succeeds, a violation
/// fails — unless `--inject-corruption` planted one on purpose, in which
/// case *catching* it is the success condition and the stable
/// `minimal-spec:` line is printed for diffing across runs.
fn chaos_cmd(
    common: &Common,
    schedules: u32,
    inject_corruption: bool,
    with_elastic: bool,
) -> Result<(), String> {
    let session = TelemetrySession::start(common);
    let dataset = load_dataset(common)?;
    let (_, cluster, cfg) = build_framework_parts(common, TelemetrySession::recorder(&session));
    let tel = TelemetrySession::recorder(&session).unwrap_or_else(Telemetry::disabled);
    let chaos = ChaosConfig {
        schedules,
        seed: common.seed,
        spec: FaultSpec::storage(),
        recovery: RecoveryConfig::default(),
        inject_corruption,
        elastic: with_elastic.then(ElasticSpec::default),
    };
    let report = flight_guard(
        &session,
        run_chaos(&cluster, &dataset, common.workload, &cfg, &chaos, &tel)
            .map_err(|e| e.to_string()),
        "chaos-error",
    )?;

    println!(
        "dataset            {} ({} records)",
        dataset.name,
        dataset.len()
    );
    println!(
        "chaos              {} schedule(s) from seed {}, {} invariant checks{}",
        report.schedules_run,
        common.seed,
        report.checks,
        if with_elastic {
            " (elastic roster churn composed)"
        } else {
            ""
        }
    );
    for failure in &report.failures {
        println!("violation          schedule seed {}", failure.schedule_seed);
        println!("                   full spec: {}", failure.spec);
        for v in &failure.violations {
            println!("                   {v}");
        }
        // Stable one-line reproducer, greppable/diffable by CI.
        println!("minimal-spec: {}", failure.minimal_spec);
    }
    if !report.failures.is_empty() {
        if let Some(session) = &session {
            session.dump_flight("chaos-violation");
        }
    }
    if let Some(session) = &session {
        session.finish()?;
    }
    if inject_corruption {
        if report.failures.is_empty() {
            return Err(
                "--inject-corruption planted a corrupted schedule but the auditor caught nothing"
                    .into(),
            );
        }
        println!(
            "result             planted corruption caught and shrunk ({} failing schedule(s))",
            report.failures.len()
        );
        return Ok(());
    }
    if !report.is_clean() {
        return Err(format!(
            "{} of {} schedule(s) violated invariants",
            report.failures.len(),
            report.schedules_run
        ));
    }
    println!("result             all schedules clean");
    Ok(())
}

/// `elastic`: the autoscaling advisor. Plan the full roster once (cold),
/// drop the candidate and replan warm (the printed stage cache shows the
/// sketch/stratify/profile artifacts surviving the roster change), then
/// ask [`advise_join`] whether re-admitting the candidate pays for the
/// data migration its LP share would cost, and restore the roster warm.
fn elastic_cmd(
    common: &Common,
    candidate: Option<usize>,
    out: Option<&Path>,
) -> Result<(), String> {
    let tel = TelemetrySession::start(common);
    let dataset = load_dataset(common)?;
    let (_, cluster, cfg) = build_framework_parts(common, TelemetrySession::recorder(&tel));
    let candidate = candidate.unwrap_or(common.nodes.saturating_sub(1));
    let backlog_items = dataset.len();
    let total_bytes: u64 = dataset
        .items
        .iter()
        .map(|i| i.payload.to_bytes().len() as u64)
        .sum();
    let bytes_per_item = if backlog_items == 0 {
        0
    } else {
        total_bytes / backlog_items as u64
    };
    let mut session = PlanSession::new(&cluster, cfg, dataset, common.workload);
    if let Some(rec) = TelemetrySession::recorder(&tel) {
        session = session.with_telemetry(rec);
    }

    let cold = session.plan().map_err(|e| e.to_string())?;
    println!(
        "cold plan          {}  [{:.4}s]",
        plan_line(&cold),
        cold.timings.total_s
    );
    let models = cold.time_models.as_ref().ok_or_else(|| {
        format!(
            "strategy {} fits no per-node time models; the advisor needs \
             het-aware or an energy-aware strategy",
            common.strategy.label()
        )
    })?;
    let fits: Vec<_> = models.iter().map(|m| m.fit).collect();
    let profiles = cold.energy_profiles.clone();
    let alpha = match common.strategy {
        Strategy::HetEnergyAware { alpha } => alpha,
        Strategy::HetEnergyAwareNormalized { alpha } => alpha,
        _ => 1.0,
    };

    session.drop_node(candidate).map_err(|e| e.to_string())?;
    let without = session.plan().map_err(|e| e.to_string())?;
    println!(
        "without candidate  {}  [{}]",
        plan_line(&without),
        reuse_line(session.last_reuse())
    );

    let advice = advise_join(
        &cluster,
        &fits,
        &profiles,
        session.roster(),
        candidate,
        backlog_items,
        bytes_per_item,
        alpha,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "advisor            candidate {} over roster {:?} ({} backlog items)",
        advice.candidate, advice.roster, advice.backlog_items
    );
    println!(
        "makespan           {:.4} s current -> {:.4} s joined (payoff {:+.4} s)",
        advice.current_makespan_s, advice.joined_makespan_s, advice.payoff_s
    );
    println!(
        "migration          {} item(s), {} byte(s), {:.4} s before the candidate contributes",
        advice.migration_items, advice.migration_bytes, advice.migration_seconds
    );
    println!(
        "verdict            {}",
        if advice.worthwhile {
            "join: the makespan win pays for the migration"
        } else {
            "stay: migration costs more than the join saves"
        }
    );

    session.restore_node(candidate).map_err(|e| e.to_string())?;
    let restored = session.plan().map_err(|e| e.to_string())?;
    println!(
        "restored roster    {}  [{}]",
        plan_line(&restored),
        reuse_line(session.last_reuse())
    );
    print_cache_stats(&session.cache_stats());

    if let Some(path) = out {
        write_text(path, &advice_json(&advice))?;
        event::info("cli", format!("wrote elastic advice to {}", path.display()));
    }
    if let Some(tel) = &tel {
        tel.finish()?;
    }
    Ok(())
}

/// `serve`: the plan-serving daemon. `--soak` replays a seeded
/// closed-loop traffic mix — injected solver stalls, crashes, and
/// overload included — through the service core in simulated time and
/// emits a deterministic summary JSON (bit-identical for a given seed
/// across runs and planning thread counts; wall-clock is printed
/// separately and never enters the JSON). `--listen` serves live TCP
/// until the process is killed.
fn serve_cmd(common: &Common, opts: &ServeOpts, out: Option<&Path>) -> Result<(), String> {
    let tel = TelemetrySession::start(common);
    let service = ServiceConfig {
        seed: common.seed,
        nodes: opts.nodes,
        threads: common.threads,
        cache_capacity: opts.cache_cap,
        dataset_scale: opts.dataset_scale,
        queue_capacity: opts.queue_cap,
        workers: opts.workers,
        ..ServiceConfig::default()
    };

    if let Some(addr) = &opts.listen {
        let svc = Arc::new(PlanService::new(service, TelemetrySession::recorder(&tel)));
        let server = Server::start(svc);
        let listener = std::net::TcpListener::bind(addr.as_str())
            .map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local addr: {e}"))?;
        println!(
            "serving plan requests on {local} ({} workers, queue capacity {})",
            opts.workers, opts.queue_cap
        );
        server
            .serve_tcp(listener)
            .join()
            .map_err(|_| "accept loop panicked".to_string())?;
        return Ok(());
    }

    let cfg = SoakConfig {
        service,
        requests: opts.requests,
        tenants: opts.tenants,
        clients: opts.clients,
        sim_workers: opts.sim_workers,
        retry: RetryPolicy::default(),
        replan_pct: opts.replan_pct,
        chaos: opts.chaos,
        think_max: 6,
    };
    let wall = std::time::Instant::now();
    let soak = run_soak(cfg, TelemetrySession::recorder(&tel));
    let wall_s = wall.elapsed().as_secs_f64();

    let o = &soak.outcomes;
    println!(
        "requests           {} issued, {} terminal",
        soak.issued,
        o.total()
    );
    println!(
        "outcomes           served={} degraded={} shed={} error={}",
        o.served, o.degraded, o.shed, o.error
    );
    println!(
        "resilience         shed_events={} retries={} coalesced={} stalls={} crashes={}",
        soak.shed_events, soak.retries, soak.coalesced, soak.stalls_injected,
        soak.crashes_injected
    );
    let hit_rate =
        soak.cache_hits as f64 / (soak.cache_hits + soak.cache_misses).max(1) as f64;
    println!(
        "stage cache        {} hits / {} misses ({:.1}% hit rate), {} evictions",
        soak.cache_hits,
        soak.cache_misses,
        100.0 * hit_rate,
        soak.cache_evictions
    );
    println!(
        "latency            p50={} p99={} sim ticks",
        soak.latency_p50, soak.latency_p99
    );
    // Wall-clock is operator information only — deliberately kept out of
    // the gated deterministic JSON.
    println!("soak-wall          {wall_s:.3}s");

    match out {
        Some(path) => {
            write_text(path, &soak.json)?;
            event::info("cli", format!("wrote soak summary to {}", path.display()));
        }
        None => println!("{}", soak.json),
    }
    if let Some(tel) = &tel {
        tel.finish()?;
    }
    if soak.audit_violations > 0 {
        return Err(format!(
            "soak audit violations: {}",
            soak.audit_violations
        ));
    }
    Ok(())
}

/// Serialize a [`JoinAdvice`] deterministically: fixed key order and `{}`
/// float formatting (shortest round-trip representation), so two runs
/// over the same inputs produce byte-identical files at any thread count.
fn advice_json(a: &JoinAdvice) -> String {
    format!(
        "{{\n  \"candidate\": {},\n  \"roster\": {:?},\n  \"backlog_items\": {},\n  \
         \"current_makespan_s\": {},\n  \"joined_makespan_s\": {},\n  \
         \"migration_items\": {},\n  \"migration_bytes\": {},\n  \
         \"migration_seconds\": {},\n  \"payoff_s\": {},\n  \"worthwhile\": {}\n}}\n",
        a.candidate,
        a.roster,
        a.backlog_items,
        a.current_makespan_s,
        a.joined_makespan_s,
        a.migration_items,
        a.migration_bytes,
        a.migration_seconds,
        a.payoff_s,
        a.worthwhile
    )
}
