//! Property-based tests for the workloads: codec roundtrips on arbitrary
//! inputs, Apriori correctness against a brute-force reference, and SON
//! exactness over arbitrary partitionings.

use proptest::prelude::*;

use pareto_datagen::ItemSet;
use pareto_workloads::{
    lz77_compress, lz77_decompress, son_distributed_mine, webgraph_compress,
    webgraph_decompress, Apriori, AprioriConfig, Lz77Config, WebGraphConfig,
};

proptest! {
    /// LZ77 roundtrips on arbitrary byte strings.
    #[test]
    fn lz77_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let (c, _) = lz77_compress(&data, &Lz77Config::default());
        prop_assert_eq!(lz77_decompress(&c).unwrap(), data);
    }

    /// LZ77 roundtrips on highly repetitive strings (match-heavy paths).
    #[test]
    fn lz77_roundtrip_repetitive(
        unit in proptest::collection::vec(any::<u8>(), 1..16),
        reps in 1usize..400,
    ) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let (c, _) = lz77_compress(&data, &Lz77Config::default());
        prop_assert_eq!(lz77_decompress(&c).unwrap(), data);
    }

    /// LZ77 with varied window/chain settings still roundtrips.
    #[test]
    fn lz77_roundtrip_configs(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        window_exp in 6u32..16,
        chain in 1usize..64,
    ) {
        let cfg = Lz77Config {
            window: 1usize << window_exp,
            max_chain: chain,
        };
        let (c, _) = lz77_compress(&data, &cfg);
        prop_assert_eq!(lz77_decompress(&c).unwrap(), data);
    }

    /// WebGraph codec roundtrips on arbitrary sorted adjacency lists.
    #[test]
    fn webgraph_roundtrip(
        raw in proptest::collection::vec(
            proptest::collection::vec(0u32..10_000, 0..64), 0..64),
        window in 1usize..10,
    ) {
        let lists: Vec<Vec<u32>> = raw
            .into_iter()
            .map(|mut l| {
                l.sort_unstable();
                l.dedup();
                l
            })
            .collect();
        let refs: Vec<&[u32]> = lists.iter().map(Vec::as_slice).collect();
        let (stream, _) = webgraph_compress(&refs, &WebGraphConfig { window });
        prop_assert_eq!(webgraph_decompress(&stream).unwrap(), lists);
    }

    /// Apriori agrees with brute-force enumeration on small databases.
    #[test]
    fn apriori_matches_bruteforce(
        raw in proptest::collection::vec(
            proptest::collection::vec(0u64..8, 0..6), 1..12),
        support_pct in 1u32..=100,
    ) {
        let db: Vec<ItemSet> = raw.iter().map(|t| ItemSet::from_items(t.clone())).collect();
        let refs: Vec<&ItemSet> = db.iter().collect();
        let support = support_pct as f64 / 100.0;
        let cfg = AprioriConfig { min_support: support, max_len: 8, max_candidates: 0 };
        let (out, _) = Apriori::new(cfg).mine(&refs);
        let minsup = ((support * db.len() as f64).ceil() as u32).max(1);

        // Brute force: enumerate all subsets of the 8-item universe.
        let mut expected = Vec::new();
        for mask in 1u32..256 {
            let items: Vec<u64> = (0..8).filter(|b| mask & (1 << b) != 0).map(|b| b as u64).collect();
            let count = refs
                .iter()
                .filter(|t| items.iter().all(|&i| t.contains(i)))
                .count() as u32;
            if count >= minsup {
                expected.push((items, count));
            }
        }
        expected.sort_by(|a, b| (a.0.len(), &a.0).cmp(&(b.0.len(), &b.0)));
        let got: Vec<(Vec<u64>, u32)> = out
            .itemsets
            .iter()
            .map(|f| (f.items.clone(), f.count))
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// SON over an arbitrary contiguous partitioning equals direct mining.
    #[test]
    fn son_exact_for_any_split(
        raw in proptest::collection::vec(
            proptest::collection::vec(0u64..10, 1..6), 4..24),
        cuts in proptest::collection::vec(0.0f64..1.0, 1..4),
        support_pct in 20u32..=90,
    ) {
        let db: Vec<ItemSet> = raw.iter().map(|t| ItemSet::from_items(t.clone())).collect();
        let refs: Vec<&ItemSet> = db.iter().collect();
        let support = support_pct as f64 / 100.0;
        let cfg = AprioriConfig { min_support: support, max_len: 6, max_candidates: 0 };

        // Build partition boundaries from the cut fractions.
        let mut bounds: Vec<usize> = cuts.iter().map(|c| (c * refs.len() as f64) as usize).collect();
        bounds.push(0);
        bounds.push(refs.len());
        bounds.sort_unstable();
        bounds.dedup();
        let partitions: Vec<Vec<&ItemSet>> = bounds
            .windows(2)
            .map(|w| refs[w[0]..w[1]].to_vec())
            .collect();

        let son = son_distributed_mine(&partitions, &cfg);
        let (direct, _) = Apriori::new(cfg).mine(&refs);
        prop_assert_eq!(son.global_frequent, direct.itemsets);
    }

    /// Every itemset Apriori reports really has the support it claims.
    #[test]
    fn apriori_counts_are_true(
        raw in proptest::collection::vec(
            proptest::collection::vec(0u64..20, 0..8), 1..20),
        support_pct in 10u32..=100,
    ) {
        let db: Vec<ItemSet> = raw.iter().map(|t| ItemSet::from_items(t.clone())).collect();
        let refs: Vec<&ItemSet> = db.iter().collect();
        let cfg = AprioriConfig {
            min_support: support_pct as f64 / 100.0,
            max_len: 5,
            max_candidates: 0,
        };
        let (out, _) = Apriori::new(cfg).mine(&refs);
        let minsup = Apriori::new(cfg).abs_support(db.len());
        for f in &out.itemsets {
            let true_count = refs
                .iter()
                .filter(|t| f.items.iter().all(|&i| t.contains(i)))
                .count() as u32;
            prop_assert_eq!(f.count, true_count);
            prop_assert!(f.count >= minsup);
        }
    }
}
