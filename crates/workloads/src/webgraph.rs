//! WebGraph-style adjacency-list compression (after Boldi & Vigna, WWW
//! 2004), the paper's second graph-compression workload (§V-C2).
//!
//! Each vertex's sorted neighbor list is coded against a *reference* list
//! chosen from a small window of previously coded lists:
//!
//! ```text
//! varint ref_delta        (0 = no reference)
//! [if ref: varint n_runs, then alternating keep/skip run lengths
//!          covering the reference list]
//! varint n_residuals, then gap-coded residual neighbors (varint deltas)
//! ```
//!
//! When consecutive lists share many targets (pages on the same host) the
//! copy-runs are long and the residuals few — so partitions that *group
//! similar vertices together* compress markedly better, which is exactly
//! the quality effect Fig. 4(e–f) of the paper measures.

/// Codec tuning.
#[derive(Debug, Clone, Copy)]
pub struct WebGraphConfig {
    /// How many previous lists are candidate references.
    pub window: usize,
}

impl Default for WebGraphConfig {
    fn default() -> Self {
        WebGraphConfig { window: 7 }
    }
}

/// Append a LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint; advances `pos`.
fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64, WebGraphError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = data.get(*pos).ok_or(WebGraphError::Truncated)?;
        *pos += 1;
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(WebGraphError::Corrupt("varint overflow"));
        }
    }
}

/// Compress a sequence of sorted adjacency lists. Returns the byte stream
/// and the exact op count (per-element comparisons during reference
/// selection and coding).
///
/// ```
/// use pareto_workloads::{webgraph_compress, webgraph_decompress, WebGraphConfig};
///
/// let lists: Vec<Vec<u32>> = (0..50).map(|i| vec![10, 11, 12, 100 + i]).collect();
/// let refs: Vec<&[u32]> = lists.iter().map(Vec::as_slice).collect();
/// let (stream, _) = webgraph_compress(&refs, &WebGraphConfig::default());
/// assert!(stream.len() < 4 * lists.iter().map(Vec::len).sum::<usize>());
/// assert_eq!(webgraph_decompress(&stream).unwrap(), lists);
/// ```
pub fn webgraph_compress(lists: &[&[u32]], cfg: &WebGraphConfig) -> (Vec<u8>, u64) {
    let mut out = Vec::new();
    let mut ops: u64 = 0;
    put_varint(&mut out, lists.len() as u64);
    for (i, list) in lists.iter().enumerate() {
        debug_assert!(
            list.windows(2).all(|w| w[0] < w[1]),
            "adjacency lists must be sorted strictly ascending"
        );
        // Pick the reference with the largest intersection in the window.
        let mut best_ref = 0usize; // 0 = none; r means lists[i - r]
        let mut best_inter = 0usize;
        for r in 1..=cfg.window.min(i) {
            let cand = lists[i - r];
            let inter = sorted_intersection_size(list, cand);
            ops += (list.len() + cand.len()) as u64;
            if inter > best_inter {
                best_inter = inter;
                best_ref = r;
            }
        }
        // Only reference when the copy actually pays for the run encoding.
        if best_inter < 2 {
            best_ref = 0;
        }
        put_varint(&mut out, best_ref as u64);
        let mut residuals: Vec<u32> = Vec::new();
        if best_ref > 0 {
            let reference = lists[i - best_ref];
            // keep[j] = reference[j] ∈ list.
            let mut keep = vec![false; reference.len()];
            let (mut a, mut b) = (0usize, 0usize);
            while a < list.len() && b < reference.len() {
                ops += 1;
                match list[a].cmp(&reference[b]) {
                    std::cmp::Ordering::Less => {
                        residuals.push(list[a]);
                        a += 1;
                    }
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        keep[b] = true;
                        a += 1;
                        b += 1;
                    }
                }
            }
            residuals.extend_from_slice(&list[a..]);
            // Run-length code the keep bitmap: runs alternate keep/skip,
            // starting with keep.
            let mut runs: Vec<u64> = Vec::new();
            let mut current = true;
            let mut run_len = 0u64;
            for &k in &keep {
                if k == current {
                    run_len += 1;
                } else {
                    runs.push(run_len);
                    current = k;
                    run_len = 1;
                }
            }
            runs.push(run_len);
            put_varint(&mut out, runs.len() as u64);
            for r in runs {
                put_varint(&mut out, r);
            }
        } else {
            residuals.extend_from_slice(list);
        }
        // Gap-code residuals.
        put_varint(&mut out, residuals.len() as u64);
        let mut prev = 0u64;
        for (j, &r) in residuals.iter().enumerate() {
            ops += 1;
            let gap = if j == 0 {
                r as u64
            } else {
                (r as u64) - prev - 1
            };
            put_varint(&mut out, gap);
            prev = r as u64;
        }
    }
    (out, ops)
}

/// Decompression errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WebGraphError {
    /// Stream ended early.
    Truncated,
    /// Structurally invalid stream.
    Corrupt(&'static str),
}

impl std::fmt::Display for WebGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WebGraphError::Truncated => write!(f, "truncated webgraph stream"),
            WebGraphError::Corrupt(m) => write!(f, "corrupt webgraph stream: {m}"),
        }
    }
}

impl std::error::Error for WebGraphError {}

/// Decompress a stream produced by [`webgraph_compress`].
pub fn webgraph_decompress(stream: &[u8]) -> Result<Vec<Vec<u32>>, WebGraphError> {
    let mut pos = 0usize;
    let n = get_varint(stream, &mut pos)? as usize;
    let mut lists: Vec<Vec<u32>> = Vec::with_capacity(n);
    for i in 0..n {
        let ref_delta = get_varint(stream, &mut pos)? as usize;
        let mut copied: Vec<u32> = Vec::new();
        if ref_delta > 0 {
            if ref_delta > i {
                return Err(WebGraphError::Corrupt("reference before stream start"));
            }
            let reference: &[u32] = &lists[i - ref_delta];
            let n_runs = get_varint(stream, &mut pos)? as usize;
            let mut idx = 0usize;
            let mut keep = true;
            for _ in 0..n_runs {
                let run = get_varint(stream, &mut pos)? as usize;
                if idx + run > reference.len() {
                    return Err(WebGraphError::Corrupt("copy run exceeds reference"));
                }
                if keep {
                    copied.extend_from_slice(&reference[idx..idx + run]);
                }
                idx += run;
                keep = !keep;
            }
        }
        let n_res = get_varint(stream, &mut pos)? as usize;
        let mut residuals = Vec::with_capacity(n_res);
        let mut prev = 0u64;
        for j in 0..n_res {
            let gap = get_varint(stream, &mut pos)?;
            let v = if j == 0 { gap } else { prev + 1 + gap };
            if v > u32::MAX as u64 {
                return Err(WebGraphError::Corrupt("residual exceeds u32"));
            }
            residuals.push(v as u32);
            prev = v;
        }
        // Merge copied + residuals (both sorted, disjoint).
        let mut merged = Vec::with_capacity(copied.len() + residuals.len());
        let (mut a, mut b) = (0usize, 0usize);
        while a < copied.len() && b < residuals.len() {
            if copied[a] < residuals[b] {
                merged.push(copied[a]);
                a += 1;
            } else {
                merged.push(residuals[b]);
                b += 1;
            }
        }
        merged.extend_from_slice(&copied[a..]);
        merged.extend_from_slice(&residuals[b..]);
        lists.push(merged);
    }
    Ok(lists)
}

fn sorted_intersection_size(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(lists: Vec<Vec<u32>>) -> usize {
        let refs: Vec<&[u32]> = lists.iter().map(Vec::as_slice).collect();
        let (stream, _) = webgraph_compress(&refs, &WebGraphConfig::default());
        let decoded = webgraph_decompress(&stream).expect("valid stream");
        assert_eq!(decoded, lists, "roundtrip mismatch");
        stream.len()
    }

    #[test]
    fn roundtrip_basics() {
        roundtrip(vec![]);
        roundtrip(vec![vec![]]);
        roundtrip(vec![vec![5]]);
        roundtrip(vec![vec![1, 2, 3], vec![], vec![1000, 2000]]);
    }

    #[test]
    fn roundtrip_with_references() {
        // Consecutive similar lists exercise the copy-run path.
        roundtrip(vec![
            vec![10, 20, 30, 40, 50],
            vec![10, 20, 30, 40, 55],
            vec![10, 20, 31, 40, 50, 60],
            vec![9, 20, 30, 40],
        ]);
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn similar_ordering_compresses_better() {
        // Host-clustered lists, visited grouped vs interleaved. Grouped
        // (similar-together) must compress smaller (Fig. 4e/4f effect).
        let host_a: Vec<Vec<u32>> = (0..50)
            .map(|i| vec![100, 101, 102, 103, 104, 200 + i])
            .collect();
        let host_b: Vec<Vec<u32>> = (0..50)
            .map(|i| vec![900, 901, 902, 903, 904, 1200 + i])
            .collect();
        let grouped: Vec<Vec<u32>> =
            host_a.iter().chain(host_b.iter()).cloned().collect();
        let mut interleaved = Vec::new();
        for (a, b) in host_a.iter().zip(&host_b) {
            interleaved.push(a.clone());
            interleaved.push(b.clone());
        }
        let size = |lists: &[Vec<u32>]| {
            let refs: Vec<&[u32]> = lists.iter().map(Vec::as_slice).collect();
            webgraph_compress(&refs, &WebGraphConfig { window: 1 }).0.len()
        };
        assert!(
            size(&grouped) < size(&interleaved),
            "grouped {} vs interleaved {}",
            size(&grouped),
            size(&interleaved)
        );
    }

    #[test]
    fn compresses_redundant_graph() {
        let lists: Vec<Vec<u32>> = (0..200)
            .map(|i| vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10 + (i % 3)])
            .collect();
        let refs: Vec<&[u32]> = lists.iter().map(Vec::as_slice).collect();
        let (stream, ops) = webgraph_compress(&refs, &WebGraphConfig::default());
        let raw_bytes = lists.iter().map(|l| 4 * l.len()).sum::<usize>();
        assert!(stream.len() * 4 < raw_bytes, "must compress well");
        assert!(ops > 0);
    }

    #[test]
    fn decompress_rejects_corruption() {
        assert_eq!(webgraph_decompress(&[]), Err(WebGraphError::Truncated));
        // One list claimed, no data.
        assert_eq!(webgraph_decompress(&[1]), Err(WebGraphError::Truncated));
        // Reference pointing before start.
        let bad = [1u8, 5, 0, 0]; // n=1, ref_delta=5 (> i=0)
        assert!(matches!(
            webgraph_decompress(&bad),
            Err(WebGraphError::Corrupt(_))
        ));
    }

    #[test]
    fn ops_deterministic() {
        let lists: Vec<Vec<u32>> = (0..30).map(|i| vec![i, i + 10, i + 20]).collect();
        let refs: Vec<&[u32]> = lists.iter().map(Vec::as_slice).collect();
        let (_, o1) = webgraph_compress(&refs, &WebGraphConfig::default());
        let (_, o2) = webgraph_compress(&refs, &WebGraphConfig::default());
        assert_eq!(o1, o2);
    }
}
