//! Frequent tree mining via pivot itemization (§V-C1, after Tatikonda &
//! Parthasarathy, ICDE 2010).
//!
//! Trees are reduced to sets of hashed LCA-pivots by `pareto-datagen`; a
//! frequent *pivot pattern* — a set of pivots co-occurring in at least
//! `support` of the trees — corresponds to a frequent embedded structural
//! fragment. Mining is then exactly Apriori over the pivot sets, which is
//! the reduction the hashing-tree-structured-data line of work uses to make
//! tree mining tractable.

use pareto_datagen::{ItemSet, LabeledTree};

use crate::apriori::{Apriori, AprioriConfig, MiningOutput};

/// Frequent tree miner over pivot sets.
#[derive(Debug, Clone)]
pub struct FrequentTreeMiner {
    cfg: AprioriConfig,
}

impl FrequentTreeMiner {
    /// Create a miner with the given support fraction.
    pub fn new(min_support: f64) -> Self {
        FrequentTreeMiner {
            cfg: AprioriConfig {
                min_support,
                ..AprioriConfig::default()
            },
        }
    }

    /// Full Apriori configuration access.
    pub fn with_config(cfg: AprioriConfig) -> Self {
        FrequentTreeMiner { cfg }
    }

    /// The underlying Apriori configuration.
    pub fn config(&self) -> &AprioriConfig {
        &self.cfg
    }

    /// Mine trees directly (itemizes each tree first). Returns the mining
    /// output and total ops including itemization.
    pub fn mine_trees(&self, trees: &[&LabeledTree]) -> (MiningOutput, u64) {
        let mut ops = 0u64;
        let sets: Vec<ItemSet> = trees
            .iter()
            .map(|t| {
                // Pivot extraction is linear in tree size.
                ops += t.len() as u64 * 4;
                t.item_set()
            })
            .collect();
        let refs: Vec<&ItemSet> = sets.iter().collect();
        let (out, mine_ops) = Apriori::new(self.cfg).mine(&refs);
        (out, ops + mine_ops)
    }

    /// Mine pre-itemized pivot sets (the framework path: `DataItem.items`
    /// already holds each tree's pivots).
    pub fn mine_pivot_sets(&self, sets: &[&ItemSet]) -> (MiningOutput, u64) {
        Apriori::new(self.cfg).mine(sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pareto_datagen::generators::{gen_trees, TreeGenConfig};

    #[test]
    fn common_substructure_is_found() {
        // 10 copies of the same tree: every pivot is in every tree, so
        // frequent singletons must exist at support 1.0.
        let tree = LabeledTree::new(vec![0, 0, 0, 1, 1], vec![5, 6, 7, 8, 9]).unwrap();
        let trees: Vec<&LabeledTree> = std::iter::repeat_n(&tree, 10).collect();
        let (out, ops) = FrequentTreeMiner::new(1.0).mine_trees(&trees);
        assert!(!out.itemsets.is_empty());
        assert!(out.itemsets.iter().all(|f| f.count == 10));
        assert!(ops > 0);
    }

    #[test]
    fn unrelated_trees_share_nothing() {
        let t1 = LabeledTree::new(vec![0, 0, 1], vec![1, 2, 3]).unwrap();
        let t2 = LabeledTree::new(vec![0, 0, 1], vec![100, 200, 300]).unwrap();
        let trees = vec![&t1, &t2];
        let (out, _) = FrequentTreeMiner::new(1.0).mine_trees(&trees);
        assert!(
            out.itemsets.is_empty(),
            "disjoint label spaces cannot share pivots"
        );
    }

    #[test]
    fn family_structure_yields_frequent_patterns() {
        let ds = gen_trees(
            &TreeGenConfig {
                num_trees: 80,
                num_families: 2,
                mutation_rate: 0.05,
                ..TreeGenConfig::default()
            },
            3,
        );
        let sets: Vec<&ItemSet> = ds.items.iter().map(|i| &i.items).collect();
        let (out, _) = FrequentTreeMiner::new(0.2).mine_pivot_sets(&sets);
        assert!(
            !out.itemsets.is_empty(),
            "family templates must produce frequent pivots"
        );
    }

    #[test]
    fn support_monotonicity() {
        let ds = gen_trees(
            &TreeGenConfig {
                num_trees: 60,
                num_families: 3,
                ..TreeGenConfig::default()
            },
            5,
        );
        let sets: Vec<&ItemSet> = ds.items.iter().map(|i| &i.items).collect();
        let hi = FrequentTreeMiner::new(0.5).mine_pivot_sets(&sets).0;
        let lo = FrequentTreeMiner::new(0.1).mine_pivot_sets(&sets).0;
        assert!(lo.itemsets.len() >= hi.itemsets.len());
    }
}
