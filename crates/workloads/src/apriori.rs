//! Apriori frequent-itemset mining (Agrawal & Srikant, VLDB 1994).
//!
//! The classic level-wise algorithm: count 1-itemsets, then repeatedly
//! join the frequent `(k−1)`-itemsets into `k`-candidates, prune candidates
//! with an infrequent subset, and count the survivors against the
//! transactions. The returned `ops` tally counts every transaction-item
//! touch and every candidate containment probe — the quantity that actually
//! drives runtime ("the total number of candidate patterns represents the
//! search space", paper §I).

use std::collections::HashMap;

use pareto_datagen::ItemSet;

/// Mining parameters.
#[derive(Debug, Clone, Copy)]
pub struct AprioriConfig {
    /// Minimum support as a fraction of the transaction count (0, 1].
    pub min_support: f64,
    /// Upper bound on itemset length (defense against candidate
    /// explosions on pathological inputs; the paper's experiments vary
    /// support rather than length).
    pub max_len: usize,
    /// Hard cap on live candidates per level (0 = unlimited). A bound
    /// explosion guard only: when it binds, mining (and SON exactness) is
    /// truncated — size workloads so it never binds in experiments.
    pub max_candidates: usize,
}

impl Default for AprioriConfig {
    fn default() -> Self {
        AprioriConfig {
            min_support: 0.1,
            max_len: 4,
            max_candidates: 200_000,
        }
    }
}

/// One frequent itemset with its absolute support count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentItemset {
    /// The items, sorted ascending.
    pub items: Vec<u64>,
    /// Number of transactions containing all the items.
    pub count: u32,
}

/// Result of one mining run.
#[derive(Debug, Clone, Default)]
pub struct MiningOutput {
    /// All frequent itemsets, every length, sorted by (len, items).
    pub itemsets: Vec<FrequentItemset>,
    /// Total candidates generated across levels (the search-space size).
    pub candidates_generated: u64,
    /// Number of transactions mined.
    pub num_transactions: usize,
}

impl MiningOutput {
    /// Frequent itemsets of exactly length `k`.
    pub fn of_len(&self, k: usize) -> impl Iterator<Item = &FrequentItemset> {
        self.itemsets.iter().filter(move |s| s.items.len() == k)
    }

    /// The **closed** frequent itemsets: those with no frequent superset
    /// of identical support (the lossless condensed representation the
    /// CloseGraph line of work — the paper's reference [23] — mines
    /// directly; here derived by post-processing).
    pub fn closed_itemsets(&self) -> Vec<&FrequentItemset> {
        self.itemsets
            .iter()
            .filter(|f| {
                !self.itemsets.iter().any(|g| {
                    g.count == f.count
                        && g.items.len() > f.items.len()
                        && is_subset(&f.items, &g.items)
                })
            })
            .collect()
    }
}

/// `a ⊆ b` for sorted item slices.
fn is_subset(a: &[u64], b: &[u64]) -> bool {
    let mut j = 0usize;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

/// The miner.
///
/// ```
/// use pareto_datagen::ItemSet;
/// use pareto_workloads::{Apriori, AprioriConfig};
///
/// let db: Vec<ItemSet> = [vec![1u64, 2, 3], vec![1, 2], vec![2, 3]]
///     .into_iter()
///     .map(ItemSet::from_items)
///     .collect();
/// let refs: Vec<&ItemSet> = db.iter().collect();
/// let (out, ops) = Apriori::new(AprioriConfig {
///     min_support: 0.6, // at least 2 of 3 transactions
///     ..AprioriConfig::default()
/// })
/// .mine(&refs);
/// assert!(out.itemsets.iter().any(|f| f.items == vec![1, 2] && f.count == 2));
/// assert!(ops > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Apriori {
    cfg: AprioriConfig,
}

impl Apriori {
    /// Create a miner.
    pub fn new(cfg: AprioriConfig) -> Self {
        assert!(
            cfg.min_support > 0.0 && cfg.min_support <= 1.0,
            "support must be in (0, 1]"
        );
        assert!(cfg.max_len >= 1);
        Apriori { cfg }
    }

    /// Absolute support threshold for `n` transactions.
    pub fn abs_support(&self, n: usize) -> u32 {
        ((self.cfg.min_support * n as f64).ceil() as u32).max(1)
    }

    /// Mine the transactions. Returns the output and the exact op count.
    pub fn mine(&self, transactions: &[&ItemSet]) -> (MiningOutput, u64) {
        let n = transactions.len();
        let mut ops: u64 = 0;
        let mut out = MiningOutput {
            num_transactions: n,
            ..MiningOutput::default()
        };
        if n == 0 {
            return (out, ops);
        }
        let minsup = self.abs_support(n);

        // --- L1: singleton counts ---
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for t in transactions {
            ops += t.len() as u64;
            for item in t.iter() {
                *counts.entry(item).or_insert(0) += 1;
            }
        }
        let mut frequent: Vec<FrequentItemset> = counts
            .into_iter()
            .filter(|&(_, c)| c >= minsup)
            .map(|(item, count)| FrequentItemset {
                items: vec![item],
                count,
            })
            .collect();
        frequent.sort_by(|a, b| a.items.cmp(&b.items));
        out.candidates_generated += frequent.len() as u64;

        let mut level: Vec<Vec<u64>> = frequent.iter().map(|f| f.items.clone()).collect();
        out.itemsets.append(&mut frequent);

        // --- Level-wise loop ---
        let mut k = 2;
        while !level.is_empty() && k <= self.cfg.max_len {
            let (candidates, gen_ops) = self.generate_candidates(&level);
            ops += gen_ops;
            out.candidates_generated += candidates.len() as u64;
            if candidates.is_empty() {
                break;
            }
            let (counted, count_ops) = count_candidates(&candidates, transactions);
            ops += count_ops;
            let mut next_level = Vec::new();
            let mut next_frequent = Vec::new();
            for (cand, count) in candidates.into_iter().zip(counted) {
                if count >= minsup {
                    next_level.push(cand.clone());
                    next_frequent.push(FrequentItemset { items: cand, count });
                }
            }
            out.itemsets.extend(next_frequent);
            level = next_level;
            k += 1;
        }
        out.itemsets
            .sort_by(|a, b| (a.items.len(), &a.items).cmp(&(b.items.len(), &b.items)));
        (out, ops)
    }

    /// Join step + prune step over the sorted `(k−1)`-level.
    fn generate_candidates(&self, level: &[Vec<u64>]) -> (Vec<Vec<u64>>, u64) {
        let mut ops = 0u64;
        let mut candidates = Vec::new();
        let k_minus_1 = match level.first() {
            Some(first) => first.len(),
            None => return (candidates, ops),
        };
        // Join: pairs sharing the first k-2 items (level is sorted, so
        // joinable sets are adjacent runs).
        let mut start = 0;
        while start < level.len() {
            let mut end = start + 1;
            while end < level.len()
                && level[end][..k_minus_1 - 1] == level[start][..k_minus_1 - 1]
            {
                end += 1;
            }
            for i in start..end {
                for j in (i + 1)..end {
                    ops += k_minus_1 as u64;
                    let mut cand = level[i].clone();
                    cand.push(level[j][k_minus_1 - 1]);
                    // Prune: all (k−1)-subsets must be frequent.
                    if self.all_subsets_frequent(&cand, level, &mut ops) {
                        candidates.push(cand);
                        if self.cfg.max_candidates > 0
                            && candidates.len() >= self.cfg.max_candidates
                        {
                            return (candidates, ops);
                        }
                    }
                }
            }
            start = end;
        }
        (candidates, ops)
    }

    fn all_subsets_frequent(&self, cand: &[u64], level: &[Vec<u64>], ops: &mut u64) -> bool {
        // The two subsets from the join are frequent by construction; check
        // the rest (drop positions 0..k-2).
        let k = cand.len();
        let mut subset = Vec::with_capacity(k - 1);
        for drop in 0..k - 2 {
            subset.clear();
            subset.extend(cand.iter().enumerate().filter_map(|(i, &v)| {
                if i == drop {
                    None
                } else {
                    Some(v)
                }
            }));
            *ops += (k as u64) * (level.len() as f64).log2().ceil() as u64;
            if level.binary_search_by(|probe| probe.as_slice().cmp(&subset)).is_err() {
                return false;
            }
        }
        true
    }
}

/// Count how many transactions contain each candidate. Returns per-
/// candidate counts and the op tally (one op per item comparison).
pub fn count_candidates(candidates: &[Vec<u64>], transactions: &[&ItemSet]) -> (Vec<u32>, u64) {
    let mut counts = vec![0u32; candidates.len()];
    let mut ops = 0u64;
    for t in transactions {
        for (ci, cand) in candidates.iter().enumerate() {
            ops += cand.len() as u64;
            if cand.iter().all(|&item| t.contains(item)) {
                counts[ci] += 1;
            }
        }
    }
    (counts, ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn itemsets(raw: &[&[u64]]) -> Vec<ItemSet> {
        raw.iter().map(|r| ItemSet::from_items(r.to_vec())).collect()
    }

    fn refs(sets: &[ItemSet]) -> Vec<&ItemSet> {
        sets.iter().collect()
    }

    /// The canonical Agrawal–Srikant toy database.
    fn classic_db() -> Vec<ItemSet> {
        itemsets(&[
            &[1, 3, 4],
            &[2, 3, 5],
            &[1, 2, 3, 5],
            &[2, 5],
        ])
    }

    #[test]
    fn classic_example_frequent_sets() {
        let db = classic_db();
        let (out, ops) = Apriori::new(AprioriConfig {
            min_support: 0.5, // absolute 2 of 4
            ..AprioriConfig::default()
        })
        .mine(&refs(&db));
        assert!(ops > 0);
        let find = |items: &[u64]| out.itemsets.iter().find(|f| f.items == items);
        // Known answer: {1}:2 {2}:3 {3}:3 {5}:3 {1,3}:2 {2,3}:2 {2,5}:3
        // {3,5}:2 {2,3,5}:2.
        assert_eq!(find(&[1]).unwrap().count, 2);
        assert_eq!(find(&[2]).unwrap().count, 3);
        assert_eq!(find(&[2, 5]).unwrap().count, 3);
        assert_eq!(find(&[2, 3, 5]).unwrap().count, 2);
        assert!(find(&[4]).is_none(), "{{4}} has support 1 < 2");
        assert!(find(&[1, 2]).is_none(), "{{1,2}} has support 1 < 2");
        assert_eq!(out.itemsets.len(), 9);
    }

    #[test]
    fn support_one_returns_universal_sets_only() {
        let db = itemsets(&[&[1, 2], &[1, 2], &[1, 2, 3]]);
        let (out, _) = Apriori::new(AprioriConfig {
            min_support: 1.0,
            ..AprioriConfig::default()
        })
        .mine(&refs(&db));
        let sets: Vec<&[u64]> = out.itemsets.iter().map(|f| f.items.as_slice()).collect();
        assert_eq!(sets, vec![&[1][..], &[2][..], &[1, 2][..]]);
    }

    #[test]
    fn empty_inputs() {
        let miner = Apriori::new(AprioriConfig::default());
        let (out, ops) = miner.mine(&[]);
        assert!(out.itemsets.is_empty());
        assert_eq!(ops, 0);
        let db = itemsets(&[&[]]);
        let (out, _) = miner.mine(&refs(&db));
        assert!(out.itemsets.is_empty());
    }

    #[test]
    fn max_len_caps_depth() {
        let row: &[u64] = &[1, 2, 3, 4, 5];
        let db = itemsets(&[row, row, row, row]);
        let (out, _) = Apriori::new(AprioriConfig {
            min_support: 0.5,
            max_len: 2,
            ..AprioriConfig::default()
        })
        .mine(&refs(&db));
        assert!(out.itemsets.iter().all(|f| f.items.len() <= 2));
        // All 5 singles + all 10 pairs.
        assert_eq!(out.itemsets.len(), 15);
    }

    #[test]
    fn lower_support_means_more_work() {
        // The paper's Fig. 6 premise: support is the workload's key knob.
        let db: Vec<ItemSet> = (0..60)
            .map(|i| {
                ItemSet::from_items(vec![1, 2, 3, 4 + (i % 6), 20 + (i % 9), 40 + (i % 4)])
            })
            .collect();
        let run = |s: f64| {
            Apriori::new(AprioriConfig {
                min_support: s,
                ..AprioriConfig::default()
            })
            .mine(&refs(&db))
        };
        let (out_hi, ops_hi) = run(0.6);
        let (out_lo, ops_lo) = run(0.05);
        assert!(ops_lo > ops_hi, "lower support must cost more");
        assert!(out_lo.candidates_generated > out_hi.candidates_generated);
        assert!(out_lo.itemsets.len() > out_hi.itemsets.len());
    }

    #[test]
    fn counts_are_exact() {
        let db = itemsets(&[&[1, 2], &[1, 2], &[2, 3], &[1, 3]]);
        let cands = vec![vec![1], vec![1, 2], vec![3]];
        let (counts, ops) = count_candidates(&cands, &refs(&db));
        assert_eq!(counts, vec![3, 2, 2]);
        // 4 transactions x (1 + 2 + 1) candidate items.
        assert_eq!(ops, 16);
    }

    #[test]
    fn ops_deterministic() {
        let db = classic_db();
        let miner = Apriori::new(AprioriConfig {
            min_support: 0.5,
            ..AprioriConfig::default()
        });
        let (_, ops1) = miner.mine(&refs(&db));
        let (_, ops2) = miner.mine(&refs(&db));
        assert_eq!(ops1, ops2);
    }

    #[test]
    #[should_panic(expected = "support must be")]
    fn rejects_zero_support() {
        Apriori::new(AprioriConfig {
            min_support: 0.0,
            ..AprioriConfig::default()
        });
    }

    #[test]
    fn closed_itemsets_are_lossless_and_minimal() {
        // {1,2} in 3 transactions, {1} alone in a 4th: {1} is closed
        // (support 4 != any superset's), {2} is NOT closed ({1,2} has the
        // same support 3), {1,2} is closed.
        let db = itemsets(&[&[1, 2], &[1, 2], &[1, 2], &[1]]);
        let (out, _) = Apriori::new(AprioriConfig {
            min_support: 0.25,
            ..AprioriConfig::default()
        })
        .mine(&refs(&db));
        let closed = out.closed_itemsets();
        let closed_sets: Vec<&[u64]> = closed.iter().map(|f| f.items.as_slice()).collect();
        assert!(closed_sets.contains(&&[1u64][..]));
        assert!(closed_sets.contains(&&[1u64, 2][..]));
        assert!(!closed_sets.contains(&&[2u64][..]), "{{2}} is absorbed by {{1,2}}");
        // Losslessness: every frequent itemset has a closed superset with
        // equal support.
        for f in &out.itemsets {
            assert!(
                closed.iter().any(|c| c.count == f.count
                    && super::is_subset(&f.items, &c.items)),
                "itemset {:?} lost by closure",
                f.items
            );
        }
    }

    #[test]
    fn is_subset_cases() {
        assert!(super::is_subset(&[], &[1, 2]));
        assert!(super::is_subset(&[2], &[1, 2, 3]));
        assert!(super::is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!super::is_subset(&[1, 4], &[1, 2, 3]));
        assert!(!super::is_subset(&[1], &[]));
    }

    #[test]
    fn skewed_partition_generates_more_candidates() {
        // Core paper premise (§V-C1): a partition whose transactions are
        // *similar* (co-occurring items) generates more candidates than a
        // mixed partition of the same size and support.
        let similar: Vec<ItemSet> = (0..40)
            .map(|_| ItemSet::from_items(vec![1, 2, 3, 4, 5, 6]))
            .collect();
        let mixed: Vec<ItemSet> = (0..40)
            .map(|i| {
                let base = ((i % 8) * 10) as u64;
                ItemSet::from_items(vec![base, base + 1, base + 2, base + 3, base + 4, base + 5])
            })
            .collect();
        let miner = Apriori::new(AprioriConfig {
            min_support: 0.3,
            max_len: 5,
            ..AprioriConfig::default()
        });
        let (out_sim, ops_sim) = miner.mine(&refs(&similar));
        let (out_mix, ops_mix) = miner.mine(&refs(&mixed));
        assert!(out_sim.candidates_generated > out_mix.candidates_generated);
        assert!(ops_sim > ops_mix);
    }
}
