//! The analytics workloads of the paper's evaluation (§V-C), implemented
//! for real with exact operation accounting.
//!
//! Two workload families:
//!
//! * **Frequent pattern mining** (compute-intensive): [`apriori`] implements
//!   Agrawal–Srikant Apriori over item sets; [`treemine`] lifts it to trees
//!   through the pivot itemization of `pareto-datagen` (after Tatikonda &
//!   Parthasarathy); [`son`] implements the Savasere/Omiecinski/Navathe
//!   partition algorithm the paper distributes — mine each partition
//!   locally, union the locally-frequent sets into global candidates, then
//!   rescan every partition to prune false positives. Statistical skew
//!   across partitions inflates the candidate union, which is precisely the
//!   effect stratified partitioning suppresses.
//! * **Compression** (data-intensive): [`lz77`] is a real hash-chain LZ77
//!   codec; [`webgraph`] is a Boldi–Vigna-style adjacency codec
//!   (reference + copy-list + gap-coded residuals). Both reward partitions
//!   whose records are similar — the "similar elements together" layout.
//!
//! Every entry point returns an exact `ops: u64` work count alongside its
//! output; the simulated cluster converts ops into node-speed-dependent
//! time. The algorithms run for real, so payload-dependent cost (candidate
//! explosions, match-ability of the byte stream) is measured, not modeled.

pub mod apriori;
pub mod eclat;
pub mod lz77;
pub mod son;
pub mod treemine;
pub mod webgraph;

pub use apriori::{Apriori, AprioriConfig, FrequentItemset, MiningOutput};
pub use eclat::{Eclat, EclatConfig};
pub use lz77::{lz77_compress, lz77_decompress, Lz77Config};
pub use son::{
    son_candidate_union, son_distributed_mine, son_global_count, son_local_mine,
    son_local_mine_with, son_merge, LocalMiner, SonLocal, SonOutput,
};
pub use treemine::FrequentTreeMiner;
pub use webgraph::{webgraph_compress, webgraph_decompress, WebGraphConfig};

use pareto_datagen::{DataItem, Payload};

/// Which workload to run (the dispatcher used by the framework's
/// progressive-sampling estimator, which must run "the actual algorithm"
/// on its samples, §III-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// Frequent pattern mining at the given support fraction (Apriori).
    FrequentPatterns {
        /// Minimum support as a fraction of the transaction count.
        support: f64,
    },
    /// Frequent pattern mining via the vertical Eclat miner (ref [21]) —
    /// identical answers, different cost profile.
    FrequentPatternsEclat {
        /// Minimum support as a fraction of the transaction count.
        support: f64,
    },
    /// LZ77 compression of the records' byte serialization.
    Lz77,
    /// WebGraph-style adjacency compression.
    WebGraph,
}

/// Output of a single-partition workload run.
#[derive(Debug, Clone)]
pub enum WorkloadOutput {
    /// Frequent patterns found locally.
    Patterns(MiningOutput),
    /// Compression outcome.
    Compressed {
        /// Bytes in.
        input_bytes: u64,
        /// Bytes out.
        output_bytes: u64,
    },
}

impl WorkloadOutput {
    /// Compression ratio (input/output); `None` for mining outputs.
    pub fn compression_ratio(&self) -> Option<f64> {
        match self {
            WorkloadOutput::Compressed {
                input_bytes,
                output_bytes,
            } => {
                if *output_bytes == 0 {
                    None
                } else {
                    Some(*input_bytes as f64 / *output_bytes as f64)
                }
            }
            WorkloadOutput::Patterns(_) => None,
        }
    }
}

/// Run `kind` over one partition's records; returns output and exact ops.
pub fn run_workload(kind: WorkloadKind, records: &[&DataItem]) -> (WorkloadOutput, u64) {
    match kind {
        WorkloadKind::FrequentPatterns { support } => {
            let sets: Vec<&pareto_datagen::ItemSet> = records.iter().map(|r| &r.items).collect();
            let (out, ops) = Apriori::new(AprioriConfig {
                min_support: support,
                ..AprioriConfig::default()
            })
            .mine(&sets);
            (WorkloadOutput::Patterns(out), ops)
        }
        WorkloadKind::FrequentPatternsEclat { support } => {
            let sets: Vec<&pareto_datagen::ItemSet> = records.iter().map(|r| &r.items).collect();
            let (out, ops) = Eclat::new(EclatConfig {
                min_support: support,
                ..EclatConfig::default()
            })
            .mine(&sets);
            (WorkloadOutput::Patterns(out), ops)
        }
        WorkloadKind::Lz77 => {
            let mut input = Vec::new();
            for r in records {
                input.extend_from_slice(&r.payload.to_bytes());
            }
            let (compressed, ops) = lz77_compress(&input, &Lz77Config::default());
            (
                WorkloadOutput::Compressed {
                    input_bytes: input.len() as u64,
                    output_bytes: compressed.len() as u64,
                },
                ops,
            )
        }
        WorkloadKind::WebGraph => {
            let lists: Vec<&[u32]> = records
                .iter()
                .map(|r| match &r.payload {
                    Payload::Adjacency(ns) => ns.as_slice(),
                    // Non-graph payloads degrade to their item sets'
                    // low-32-bit views; keeps the dispatcher total.
                    _ => &[],
                })
                .collect();
            let (compressed, ops) = webgraph_compress(&lists, &WebGraphConfig::default());
            let input_bytes: u64 = lists.iter().map(|l| 4 + 4 * l.len() as u64).sum();
            (
                WorkloadOutput::Compressed {
                    input_bytes,
                    output_bytes: compressed.len() as u64,
                },
                ops,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pareto_datagen::{Dataset, Document};

    fn text_items() -> Dataset {
        let docs: Vec<Document> = (0..40)
            .map(|i| Document::new(vec![1, 2, 3, (i % 7) + 10]))
            .collect();
        Dataset::from_documents("t", docs)
    }

    #[test]
    fn dispatch_mining() {
        let ds = text_items();
        let refs: Vec<&DataItem> = ds.items.iter().collect();
        let (out, ops) = run_workload(WorkloadKind::FrequentPatterns { support: 0.5 }, &refs);
        assert!(ops > 0);
        match out {
            WorkloadOutput::Patterns(m) => {
                assert!(!m.itemsets.is_empty(), "1,2,3 are in every transaction");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dispatch_lz77() {
        let ds = text_items();
        let refs: Vec<&DataItem> = ds.items.iter().collect();
        let (out, ops) = run_workload(WorkloadKind::Lz77, &refs);
        assert!(ops > 0);
        let ratio = out.compression_ratio().unwrap();
        assert!(ratio > 1.0, "repetitive docs must compress, ratio {ratio}");
    }

    #[test]
    fn dispatch_webgraph_on_graph_records() {
        let g = pareto_datagen::AdjacencyGraph::from_adjacency(
            (0..50).map(|i| vec![1, 2, 3, 4, (i % 5) + 10]).collect(),
        );
        let ds = Dataset::from_graph("g", &g);
        let refs: Vec<&DataItem> = ds.items.iter().collect();
        let (out, ops) = run_workload(WorkloadKind::WebGraph, &refs);
        assert!(ops > 0);
        assert!(out.compression_ratio().unwrap() > 1.0);
    }

    #[test]
    fn dispatch_eclat_matches_apriori() {
        let ds = text_items();
        let refs: Vec<&DataItem> = ds.items.iter().collect();
        let (a, _) = run_workload(WorkloadKind::FrequentPatterns { support: 0.5 }, &refs);
        let (e, _) = run_workload(
            WorkloadKind::FrequentPatternsEclat { support: 0.5 },
            &refs,
        );
        match (a, e) {
            (WorkloadOutput::Patterns(pa), WorkloadOutput::Patterns(pe)) => {
                assert_eq!(pa.itemsets, pe.itemsets);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_partition_is_fine() {
        let (out, _ops) = run_workload(WorkloadKind::Lz77, &[]);
        match out {
            WorkloadOutput::Compressed { input_bytes, .. } => assert_eq!(input_bytes, 0),
            other => panic!("unexpected {other:?}"),
        }
    }
}
