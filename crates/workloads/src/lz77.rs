//! A real LZ77 compressor/decompressor (Ziv & Lempel, 1977/78 family).
//!
//! Greedy longest-match coding with a hash-chain match finder over a
//! sliding window — the same construction as the paper's "very common LZ77
//! compression algorithm" (§V-C2). The token format is byte-oriented:
//!
//! ```text
//! 0x00 len u8 [len literal bytes]          (literal run, len ≥ 1)
//! 0x01 offset u16-LE len u8                (match, len ≥ MIN_MATCH)
//! ```
//!
//! The returned `ops` count tallies every byte examined during match search
//! and emission, so compression cost genuinely depends on the *content* —
//! a low-entropy partition both compresses better and scans faster, which
//! is the behaviour the similar-together partitioning exploits.

use std::collections::HashMap;

/// Minimum match length worth encoding (shorter matches cost more than
/// literals).
const MIN_MATCH: usize = 4;
/// Maximum encodable match length (one byte).
const MAX_MATCH: usize = 255;

/// Compressor tuning.
#[derive(Debug, Clone, Copy)]
pub struct Lz77Config {
    /// Sliding-window size in bytes (offsets are 16-bit, so ≤ 65535).
    pub window: usize,
    /// Maximum hash-chain positions probed per match search.
    pub max_chain: usize,
}

impl Default for Lz77Config {
    fn default() -> Self {
        Lz77Config {
            window: 32 * 1024,
            max_chain: 32,
        }
    }
}

#[inline]
fn hash3(data: &[u8], i: usize) -> u32 {
    // Fibonacci hash of 3 bytes.
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    v.wrapping_mul(2654435761) >> 16
}

/// Compress `input`; returns the token stream and the exact op count.
///
/// ```
/// use pareto_workloads::{lz77_compress, lz77_decompress, Lz77Config};
///
/// let data = b"abcabcabcabcabcabc".repeat(20);
/// let (compressed, ops) = lz77_compress(&data, &Lz77Config::default());
/// assert!(compressed.len() < data.len() / 4);
/// assert!(ops > 0);
/// assert_eq!(lz77_decompress(&compressed).unwrap(), data);
/// ```
pub fn lz77_compress(input: &[u8], cfg: &Lz77Config) -> (Vec<u8>, u64) {
    assert!(cfg.window >= MIN_MATCH && cfg.window <= u16::MAX as usize + 1);
    assert!(cfg.max_chain >= 1);
    let mut ops: u64 = 0;
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut chains: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut literals: Vec<u8> = Vec::with_capacity(256);

    let flush_literals = |out: &mut Vec<u8>, lits: &mut Vec<u8>, ops: &mut u64| {
        for chunk in lits.chunks(255) {
            out.push(0x00);
            out.push(chunk.len() as u8);
            out.extend_from_slice(chunk);
            *ops += chunk.len() as u64;
        }
        lits.clear();
    };

    let mut i = 0usize;
    while i < input.len() {
        ops += 1; // position scanned
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash3(input, i);
            if let Some(positions) = chains.get(&h) {
                // Probe newest-first.
                for &pos in positions.iter().rev().take(cfg.max_chain) {
                    if i - pos > cfg.window {
                        break;
                    }
                    let limit = (input.len() - i).min(MAX_MATCH);
                    let mut l = 0usize;
                    while l < limit && input[pos + l] == input[i + l] {
                        l += 1;
                    }
                    ops += l as u64 + 1;
                    if l > best_len {
                        best_len = l;
                        best_off = i - pos;
                        if l >= limit {
                            break;
                        }
                    }
                }
            }
        }
        if best_len >= MIN_MATCH {
            flush_literals(&mut out, &mut literals, &mut ops);
            out.push(0x01);
            out.extend_from_slice(&(best_off as u16).to_le_bytes());
            out.push(best_len as u8);
            // Index every covered position (bounded insertion work).
            let end = (i + best_len).min(input.len().saturating_sub(MIN_MATCH - 1));
            for j in i..end {
                chains.entry(hash3(input, j)).or_default().push(j);
            }
            ops += best_len as u64;
            i += best_len;
        } else {
            if i + MIN_MATCH <= input.len() {
                chains.entry(hash3(input, i)).or_default().push(i);
            }
            literals.push(input[i]);
            if literals.len() == 255 {
                flush_literals(&mut out, &mut literals, &mut ops);
            }
            i += 1;
        }
    }
    flush_literals(&mut out, &mut literals, &mut ops);
    (out, ops)
}

/// Decompression errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lz77Error {
    /// Token stream ended mid-token.
    Truncated,
    /// Unknown token tag.
    BadTag(u8),
    /// A match referenced data before the start of the output.
    BadOffset,
}

impl std::fmt::Display for Lz77Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lz77Error::Truncated => write!(f, "truncated LZ77 stream"),
            Lz77Error::BadTag(t) => write!(f, "unknown LZ77 token tag {t:#x}"),
            Lz77Error::BadOffset => write!(f, "match offset before stream start"),
        }
    }
}

impl std::error::Error for Lz77Error {}

/// Decompress a token stream produced by [`lz77_compress`].
pub fn lz77_decompress(stream: &[u8]) -> Result<Vec<u8>, Lz77Error> {
    let mut out = Vec::with_capacity(stream.len() * 2);
    let mut i = 0usize;
    while i < stream.len() {
        match stream[i] {
            0x00 => {
                if i + 2 > stream.len() {
                    return Err(Lz77Error::Truncated);
                }
                let len = stream[i + 1] as usize;
                if i + 2 + len > stream.len() {
                    return Err(Lz77Error::Truncated);
                }
                out.extend_from_slice(&stream[i + 2..i + 2 + len]);
                i += 2 + len;
            }
            0x01 => {
                if i + 4 > stream.len() {
                    return Err(Lz77Error::Truncated);
                }
                let off =
                    u16::from_le_bytes(stream[i + 1..i + 3].try_into().expect("2 bytes"))
                        as usize;
                let len = stream[i + 3] as usize;
                if off == 0 || off > out.len() {
                    return Err(Lz77Error::BadOffset);
                }
                let start = out.len() - off;
                // Byte-by-byte: matches may overlap their own output.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
                i += 4;
            }
            tag => return Err(Lz77Error::BadTag(tag)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> (usize, u64) {
        let (c, ops) = lz77_compress(data, &Lz77Config::default());
        let d = lz77_decompress(&c).expect("valid stream");
        assert_eq!(d, data, "roundtrip mismatch");
        (c.len(), ops)
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
    }

    #[test]
    fn roundtrip_repetitive_compresses() {
        let data: Vec<u8> = b"abcdefgh".iter().copied().cycle().take(10_000).collect();
        let (clen, _) = roundtrip(&data);
        assert!(clen < data.len() / 10, "compressed {clen} of {}", data.len());
    }

    #[test]
    fn roundtrip_overlapping_match() {
        // 'aaaa…' forces matches that overlap their own output.
        let data = vec![b'a'; 1000];
        let (clen, _) = roundtrip(&data);
        assert!(clen < 40);
    }

    #[test]
    fn incompressible_data_expands_little() {
        // A high-entropy byte stream (xorshift64*): essentially no 4-byte
        // matches, so the output is literal runs plus framing.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut data = Vec::with_capacity(5000);
        while data.len() < 5000 {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            data.extend_from_slice(&state.wrapping_mul(0x2545F4914F6CDD1D).to_le_bytes());
        }
        data.truncate(5000);
        let (clen, _) = roundtrip(&data);
        assert!(
            clen > data.len() * 9 / 10,
            "high-entropy data must stay near-incompressible: {clen} of {}",
            data.len()
        );
        assert!(clen < data.len() + data.len() / 50 + 32, "overhead too high");
    }

    #[test]
    fn similar_records_compress_better_than_mixed() {
        // The §V-C2 claim behind similar-together partitioning.
        let similar: Vec<u8> = (0..200)
            .flat_map(|_| b"record:alpha,beta,gamma;".to_vec())
            .collect();
        let mixed: Vec<u8> = (0..200u32)
            .flat_map(|i| {
                format!("record:{:08x},{:08x};", i.wrapping_mul(2654435761), i * 7919)
                    .into_bytes()
            })
            .collect();
        let (c_sim, _) = lz77_compress(&similar, &Lz77Config::default());
        let (c_mix, _) = lz77_compress(&mixed, &Lz77Config::default());
        let ratio_sim = similar.len() as f64 / c_sim.len() as f64;
        let ratio_mix = mixed.len() as f64 / c_mix.len() as f64;
        assert!(
            ratio_sim > ratio_mix * 2.0,
            "similar {ratio_sim:.1} vs mixed {ratio_mix:.1}"
        );
    }

    #[test]
    fn decompress_rejects_garbage() {
        assert_eq!(lz77_decompress(&[0x02]), Err(Lz77Error::BadTag(2)));
        assert_eq!(lz77_decompress(&[0x00]), Err(Lz77Error::Truncated));
        assert_eq!(lz77_decompress(&[0x00, 5, 1, 2]), Err(Lz77Error::Truncated));
        assert_eq!(lz77_decompress(&[0x01, 1, 0, 4]), Err(Lz77Error::BadOffset));
    }

    #[test]
    fn ops_deterministic_and_content_dependent() {
        let a: Vec<u8> = vec![7; 4000];
        let b: Vec<u8> = (0..4000u32).map(|i| (i * 31) as u8).collect();
        let (_, ops_a1) = lz77_compress(&a, &Lz77Config::default());
        let (_, ops_a2) = lz77_compress(&a, &Lz77Config::default());
        let (_, ops_b) = lz77_compress(&b, &Lz77Config::default());
        assert_eq!(ops_a1, ops_a2);
        assert_ne!(ops_a1, ops_b);
    }

    #[test]
    #[should_panic]
    fn oversized_window_rejected() {
        // Offsets are u16: windows beyond 65536 are unencodable.
        lz77_compress(b"x", &Lz77Config { window: 1 << 20, max_chain: 4 });
    }

    #[test]
    #[should_panic]
    fn zero_chain_rejected() {
        lz77_compress(b"x", &Lz77Config { window: 1024, max_chain: 0 });
    }

    #[test]
    fn window_limits_match_distance() {
        // Repeat separated by more than the window: no cross-gap match.
        let cfg = Lz77Config {
            window: 64,
            max_chain: 16,
        };
        let mut data = b"uniquepattern123".to_vec();
        data.extend(std::iter::repeat_n(0u8, 200));
        data.extend_from_slice(b"uniquepattern123");
        let (c, _) = lz77_compress(&data, &cfg);
        let d = lz77_decompress(&c).unwrap();
        assert_eq!(d, data);
    }
}
