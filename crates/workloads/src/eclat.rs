//! Eclat frequent-itemset mining (Zaki, Parthasarathy, Ogihara & Li — the
//! paper's reference [21]).
//!
//! Where Apriori is horizontal (scan transactions per level), Eclat is
//! **vertical**: each item carries its *tidset* (the sorted ids of the
//! transactions containing it), and the support of an itemset is the size
//! of its items' tidset intersection. The search is depth-first over a
//! prefix tree, intersecting tidsets as it descends — usually far fewer
//! ops than Apriori when patterns are long, and the same answer.
//!
//! Included both as a second real workload for the framework (its cost
//! profile differs from Apriori's, exercising the payload-awareness of the
//! estimator) and as an independent oracle for Apriori in tests.

use std::collections::HashMap;

use pareto_datagen::ItemSet;

use crate::apriori::{FrequentItemset, MiningOutput};

/// Eclat parameters.
#[derive(Debug, Clone, Copy)]
pub struct EclatConfig {
    /// Minimum support as a fraction of the transaction count (0, 1].
    pub min_support: f64,
    /// Upper bound on itemset length (match Apriori's bound when
    /// cross-validating).
    pub max_len: usize,
}

impl Default for EclatConfig {
    fn default() -> Self {
        EclatConfig {
            min_support: 0.1,
            max_len: 4,
        }
    }
}

/// The vertical miner.
///
/// ```
/// use pareto_datagen::ItemSet;
/// use pareto_workloads::{Eclat, EclatConfig};
///
/// let db: Vec<ItemSet> = [vec![1u64, 2], vec![1, 2], vec![2, 9]]
///     .into_iter()
///     .map(ItemSet::from_items)
///     .collect();
/// let refs: Vec<&ItemSet> = db.iter().collect();
/// let (out, _) = Eclat::new(EclatConfig {
///     min_support: 0.6,
///     ..EclatConfig::default()
/// })
/// .mine(&refs);
/// // {2} in all three, {1} and {1,2} in two.
/// assert_eq!(out.itemsets.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Eclat {
    cfg: EclatConfig,
}

impl Eclat {
    /// Create a miner.
    pub fn new(cfg: EclatConfig) -> Self {
        assert!(
            cfg.min_support > 0.0 && cfg.min_support <= 1.0,
            "support must be in (0, 1]"
        );
        assert!(cfg.max_len >= 1);
        Eclat { cfg }
    }

    /// Mine the transactions; returns the same [`MiningOutput`] shape as
    /// Apriori (sorted by `(len, items)`) and an exact op count (one op
    /// per tidset element touched during intersections).
    pub fn mine(&self, transactions: &[&ItemSet]) -> (MiningOutput, u64) {
        let n = transactions.len();
        let mut ops = 0u64;
        let mut out = MiningOutput {
            num_transactions: n,
            ..MiningOutput::default()
        };
        if n == 0 {
            return (out, ops);
        }
        let minsup = ((self.cfg.min_support * n as f64).ceil() as u32).max(1);

        // Build the vertical layout: item -> sorted tidset.
        let mut tidsets: HashMap<u64, Vec<u32>> = HashMap::new();
        for (tid, t) in transactions.iter().enumerate() {
            ops += t.len() as u64;
            for item in t.iter() {
                tidsets.entry(item).or_default().push(tid as u32);
            }
        }
        // Frequent 1-itemsets, sorted by item for deterministic order.
        let mut roots: Vec<(u64, Vec<u32>)> = tidsets
            .into_iter()
            .filter(|(_, tids)| tids.len() as u32 >= minsup)
            .collect();
        roots.sort_by_key(|(item, _)| *item);

        for (item, tids) in &roots {
            out.itemsets.push(FrequentItemset {
                items: vec![*item],
                count: tids.len() as u32,
            });
        }
        out.candidates_generated += roots.len() as u64;

        // DFS over the prefix tree.
        let mut prefix: Vec<u64> = Vec::new();
        for i in 0..roots.len() {
            prefix.push(roots[i].0);
            let siblings: Vec<&(u64, Vec<u32>)> = roots[i + 1..].iter().collect();
            self.extend(
                &mut prefix,
                &roots[i].1,
                &siblings,
                minsup,
                &mut out,
                &mut ops,
            );
            prefix.pop();
        }
        out.itemsets
            .sort_by(|a, b| (a.items.len(), &a.items).cmp(&(b.items.len(), &b.items)));
        (out, ops)
    }

    /// Recursive prefix extension: intersect the prefix tidset with each
    /// sibling's, keep frequent results, descend.
    fn extend(
        &self,
        prefix: &mut Vec<u64>,
        prefix_tids: &[u32],
        siblings: &[&(u64, Vec<u32>)],
        minsup: u32,
        out: &mut MiningOutput,
        ops: &mut u64,
    ) {
        if prefix.len() >= self.cfg.max_len {
            return;
        }
        // Intersect with every right-sibling; collect the frequent ones.
        let mut children: Vec<(u64, Vec<u32>)> = Vec::new();
        for (item, tids) in siblings {
            *ops += (prefix_tids.len() + tids.len()) as u64;
            let inter = intersect_sorted(prefix_tids, tids);
            out.candidates_generated += 1;
            if inter.len() as u32 >= minsup {
                let mut items = prefix.clone();
                items.push(*item);
                out.itemsets.push(FrequentItemset {
                    items,
                    count: inter.len() as u32,
                });
                children.push((*item, inter));
            }
        }
        for i in 0..children.len() {
            prefix.push(children[i].0);
            let next_siblings: Vec<&(u64, Vec<u32>)> = children[i + 1..].iter().collect();
            self.extend(prefix, &children[i].1, &next_siblings, minsup, out, ops);
            prefix.pop();
        }
    }
}

fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{Apriori, AprioriConfig};

    fn db(raw: &[&[u64]]) -> Vec<ItemSet> {
        raw.iter().map(|r| ItemSet::from_items(r.to_vec())).collect()
    }

    fn refs(sets: &[ItemSet]) -> Vec<&ItemSet> {
        sets.iter().collect()
    }

    #[test]
    fn classic_example_matches_apriori() {
        let data = db(&[&[1, 3, 4], &[2, 3, 5], &[1, 2, 3, 5], &[2, 5]]);
        let (eclat, _) = Eclat::new(EclatConfig {
            min_support: 0.5,
            max_len: 4,
        })
        .mine(&refs(&data));
        let (apriori, _) = Apriori::new(AprioriConfig {
            min_support: 0.5,
            max_len: 4,
            max_candidates: 0,
        })
        .mine(&refs(&data));
        assert_eq!(eclat.itemsets, apriori.itemsets);
    }

    #[test]
    fn agrees_with_apriori_across_supports() {
        // Structured data with overlapping topics.
        let data: Vec<ItemSet> = (0..40u64)
            .map(|i| {
                ItemSet::from_items(vec![
                    1,
                    2 + (i % 3),
                    10 + (i % 5),
                    20 + (i % 2),
                    30 + (i % 7),
                ])
            })
            .collect();
        for support in [0.9, 0.5, 0.25, 0.1] {
            let (e, _) = Eclat::new(EclatConfig {
                min_support: support,
                max_len: 4,
            })
            .mine(&refs(&data));
            let (a, _) = Apriori::new(AprioriConfig {
                min_support: support,
                max_len: 4,
                max_candidates: 0,
            })
            .mine(&refs(&data));
            assert_eq!(e.itemsets, a.itemsets, "divergence at support {support}");
        }
    }

    #[test]
    fn empty_and_degenerate() {
        let miner = Eclat::new(EclatConfig::default());
        let (out, ops) = miner.mine(&[]);
        assert!(out.itemsets.is_empty());
        assert_eq!(ops, 0);
        let data = db(&[&[]]);
        let (out, _) = miner.mine(&refs(&data));
        assert!(out.itemsets.is_empty());
    }

    #[test]
    fn max_len_respected() {
        let row: &[u64] = &[1, 2, 3, 4, 5, 6];
        let data = db(&[row, row, row]);
        let (out, _) = Eclat::new(EclatConfig {
            min_support: 1.0,
            max_len: 2,
        })
        .mine(&refs(&data));
        assert!(out.itemsets.iter().all(|f| f.items.len() <= 2));
        assert_eq!(out.itemsets.len(), 6 + 15);
    }

    #[test]
    fn counts_are_exact_tidset_sizes() {
        let data = db(&[&[1, 2], &[1, 2], &[2, 3], &[1]]);
        let (out, _) = Eclat::new(EclatConfig {
            min_support: 0.25,
            max_len: 3,
        })
        .mine(&refs(&data));
        let find = |items: &[u64]| out.itemsets.iter().find(|f| f.items == items).unwrap();
        assert_eq!(find(&[1]).count, 3);
        assert_eq!(find(&[2]).count, 3);
        assert_eq!(find(&[1, 2]).count, 2);
        assert_eq!(find(&[2, 3]).count, 1);
    }

    #[test]
    fn vertical_ops_cheaper_on_long_patterns() {
        // Dense co-occurrence: depth-first tidset intersection touches far
        // fewer elements than Apriori's per-level full scans.
        let row: &[u64] = &[1, 2, 3, 4, 5, 6, 7, 8];
        let data: Vec<ItemSet> = (0..60).map(|_| ItemSet::from_items(row.to_vec())).collect();
        let (_, eclat_ops) = Eclat::new(EclatConfig {
            min_support: 0.9,
            max_len: 6,
        })
        .mine(&refs(&data));
        let (_, apriori_ops) = Apriori::new(AprioriConfig {
            min_support: 0.9,
            max_len: 6,
            max_candidates: 0,
        })
        .mine(&refs(&data));
        assert!(
            eclat_ops < apriori_ops,
            "eclat {eclat_ops} should beat apriori {apriori_ops} here"
        );
    }
}
