//! The Savasere–Omiecinski–Navathe (SON) partition algorithm for
//! distributed frequent-pattern mining (§V-C1).
//!
//! Phase 1: mine each partition locally at the support fraction (any
//! globally frequent itemset is locally frequent in at least one
//! partition, so the union of local results is a complete candidate set).
//! Phase 2: rescan every partition to count the global support of each
//! candidate and prune the **false positives** — candidates that were only
//! locally frequent. Skewed partitions inflate the candidate union and the
//! phase-2 scan cost, which is exactly the degradation stratified
//! partitioning prevents.
//!
//! The per-phase, per-partition functions are exposed separately so the
//! framework can place each on its simulated node; `son_distributed_mine`
//! is the single-process reference composition used by tests.

use std::collections::HashMap;

use pareto_datagen::ItemSet;

use crate::apriori::{count_candidates, Apriori, AprioriConfig, FrequentItemset, MiningOutput};
use crate::eclat::{Eclat, EclatConfig};

/// Which local miner SON runs in phase 1. Both are exact, so the global
/// result is identical; their *cost profiles* differ (level-wise scans vs
/// depth-first tidset intersections), which exercises the framework's
/// payload-aware estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalMiner {
    /// Agrawal–Srikant level-wise mining (the paper's workload).
    #[default]
    Apriori,
    /// Zaki et al. vertical mining (the paper's reference [21]).
    Eclat,
}

/// Phase-1 result for one partition.
#[derive(Debug, Clone)]
pub struct SonLocal {
    /// Locally frequent itemsets (at the local scaled threshold).
    pub local: MiningOutput,
    /// Ops spent mining this partition.
    pub ops: u64,
}

/// Phase 1: mine one partition locally (Apriori).
pub fn son_local_mine(partition: &[&ItemSet], cfg: &AprioriConfig) -> SonLocal {
    son_local_mine_with(LocalMiner::Apriori, partition, cfg)
}

/// Phase 1 with an explicit local miner. The Eclat path reuses the
/// Apriori config's support/length bounds.
pub fn son_local_mine_with(
    miner: LocalMiner,
    partition: &[&ItemSet],
    cfg: &AprioriConfig,
) -> SonLocal {
    let (local, ops) = match miner {
        LocalMiner::Apriori => Apriori::new(*cfg).mine(partition),
        LocalMiner::Eclat => Eclat::new(EclatConfig {
            min_support: cfg.min_support,
            max_len: cfg.max_len,
        })
        .mine(partition),
    };
    SonLocal { local, ops }
}

/// Union the locally frequent itemsets into the global candidate set
/// (sorted, deduplicated).
pub fn son_candidate_union(locals: &[&MiningOutput]) -> Vec<Vec<u64>> {
    let mut candidates: Vec<Vec<u64>> = locals
        .iter()
        .flat_map(|m| m.itemsets.iter().map(|f| f.items.clone()))
        .collect();
    candidates.sort();
    candidates.dedup();
    candidates
}

/// Phase 2: count every candidate's support within one partition.
/// Returns per-candidate counts and the scan ops.
pub fn son_global_count(candidates: &[Vec<u64>], partition: &[&ItemSet]) -> (Vec<u32>, u64) {
    count_candidates(candidates, partition)
}

/// Final result of a distributed mine.
#[derive(Debug, Clone)]
pub struct SonOutput {
    /// The globally frequent itemsets with exact global counts.
    pub global_frequent: Vec<FrequentItemset>,
    /// Size of the phase-2 candidate set (the search space; paper §I).
    pub candidate_count: usize,
    /// Candidates that failed the global threshold — the false positives
    /// the second scan exists to prune.
    pub false_positives: usize,
    /// Per-partition `(phase1_ops, phase2_ops)`.
    pub per_partition_ops: Vec<(u64, u64)>,
}

/// Merge per-partition candidate counts and apply the global threshold.
pub fn son_merge(
    candidates: Vec<Vec<u64>>,
    per_partition_counts: &[Vec<u32>],
    total_transactions: usize,
    min_support: f64,
) -> (Vec<FrequentItemset>, usize) {
    let minsup = ((min_support * total_transactions as f64).ceil() as u32).max(1);
    let mut totals: HashMap<&[u64], u32> = HashMap::new();
    for counts in per_partition_counts {
        assert_eq!(counts.len(), candidates.len(), "count vector shape mismatch");
        for (cand, &c) in candidates.iter().zip(counts) {
            *totals.entry(cand.as_slice()).or_insert(0) += c;
        }
    }
    let mut frequent: Vec<FrequentItemset> = candidates
        .iter()
        .filter_map(|cand| {
            let count = totals.get(cand.as_slice()).copied().unwrap_or(0);
            (count >= minsup).then(|| FrequentItemset {
                items: cand.clone(),
                count,
            })
        })
        .collect();
    let false_positives = candidates.len() - frequent.len();
    frequent.sort_by(|a, b| (a.items.len(), &a.items).cmp(&(b.items.len(), &b.items)));
    (frequent, false_positives)
}

/// Reference single-process composition of both phases.
pub fn son_distributed_mine(
    partitions: &[Vec<&ItemSet>],
    cfg: &AprioriConfig,
) -> SonOutput {
    let locals: Vec<SonLocal> = partitions
        .iter()
        .map(|p| son_local_mine(p, cfg))
        .collect();
    let local_refs: Vec<&MiningOutput> = locals.iter().map(|l| &l.local).collect();
    let candidates = son_candidate_union(&local_refs);
    let mut per_partition_counts = Vec::with_capacity(partitions.len());
    let mut per_partition_ops = Vec::with_capacity(partitions.len());
    for (partition, local) in partitions.iter().zip(&locals) {
        let (counts, ops2) = son_global_count(&candidates, partition);
        per_partition_counts.push(counts);
        per_partition_ops.push((local.ops, ops2));
    }
    let total: usize = partitions.iter().map(Vec::len).sum();
    let (global_frequent, false_positives) = son_merge(
        candidates.clone(),
        &per_partition_counts,
        total,
        cfg.min_support,
    );
    SonOutput {
        global_frequent,
        candidate_count: candidates.len(),
        false_positives,
        per_partition_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(raw: &[&[u64]]) -> Vec<ItemSet> {
        raw.iter().map(|r| ItemSet::from_items(r.to_vec())).collect()
    }

    fn cfg(support: f64) -> AprioriConfig {
        AprioriConfig {
            min_support: support,
            ..AprioriConfig::default()
        }
    }

    /// SON must return exactly what a direct Apriori over the full data
    /// returns — it is an exact algorithm, not an approximation.
    #[test]
    fn son_equals_direct_mining() {
        let data = db(&[
            &[1, 2, 3],
            &[1, 2],
            &[2, 3, 4],
            &[1, 3, 4],
            &[2, 4],
            &[1, 2, 4],
            &[3, 4],
            &[1, 2, 3, 4],
        ]);
        let refs: Vec<&ItemSet> = data.iter().collect();
        let (direct, _) = Apriori::new(cfg(0.4)).mine(&refs);

        // Any split, including a skewed one.
        for split in [4usize, 2, 6] {
            let partitions = vec![refs[..split].to_vec(), refs[split..].to_vec()];
            let son = son_distributed_mine(&partitions, &cfg(0.4));
            assert_eq!(
                son.global_frequent, direct.itemsets,
                "SON must match direct mining for split {split}"
            );
        }
    }

    #[test]
    fn false_positives_counted() {
        // Partition 1 is all {1,2}; partition 2 is all {8,9}. Locally both
        // are frequent; globally (support 0.8) neither pair survives if it
        // only appears in half the data.
        let p1 = db(&[&[1, 2], &[1, 2], &[1, 2]]);
        let p2 = db(&[&[8, 9], &[8, 9], &[8, 9]]);
        let partitions = vec![
            p1.iter().collect::<Vec<_>>(),
            p2.iter().collect::<Vec<_>>(),
        ];
        let son = son_distributed_mine(&partitions, &cfg(0.8));
        assert!(son.global_frequent.is_empty());
        assert_eq!(son.false_positives, son.candidate_count);
        assert!(son.candidate_count >= 6, "both sides' sets are candidates");
    }

    #[test]
    fn skewed_partitions_inflate_candidates() {
        // Same data, stratified vs skewed split: the skewed split must
        // produce at least as many (here strictly more) candidates.
        // Item 0 is universal (globally frequent); topic cores {1,2,3} and
        // {7,8,9} each cover half the data, below the global threshold.
        let mut data = Vec::new();
        for i in 0..24u64 {
            if i % 2 == 0 {
                data.push(ItemSet::from_items(vec![0, 1, 2, 3]));
            } else {
                data.push(ItemSet::from_items(vec![0, 7, 8, 9]));
            }
        }
        let refs: Vec<&ItemSet> = data.iter().collect();
        // Stratified: contiguous halves of the interleaved stream, so both
        // partitions see both topics at the global 50% rate, below the 60%
        // threshold — no spurious locals.
        let strat = vec![refs[..12].to_vec(), refs[12..].to_vec()];
        // Skewed: each partition holds one topic, so every subset of that
        // topic's core is locally 100% frequent — candidate explosion.
        let by_topic = vec![
            refs.iter().filter(|s| s.contains(1)).copied().collect::<Vec<_>>(),
            refs.iter().filter(|s| s.contains(7)).copied().collect::<Vec<_>>(),
        ];
        let c = cfg(0.6);
        let son_strat = son_distributed_mine(&strat, &c);
        let son_skew = son_distributed_mine(&by_topic, &c);
        assert!(
            son_skew.candidate_count > son_strat.candidate_count,
            "skewed {} should exceed stratified {}",
            son_skew.candidate_count,
            son_strat.candidate_count
        );
        // Both must still be exact.
        let (direct, _) = Apriori::new(c).mine(&refs);
        assert_eq!(son_strat.global_frequent, direct.itemsets);
        assert_eq!(son_skew.global_frequent, direct.itemsets);
    }

    #[test]
    fn per_partition_ops_reported() {
        let data = db(&[&[1, 2], &[1, 2], &[3, 4], &[3, 4]]);
        let refs: Vec<&ItemSet> = data.iter().collect();
        let partitions = vec![refs[..2].to_vec(), refs[2..].to_vec()];
        let son = son_distributed_mine(&partitions, &cfg(0.5));
        assert_eq!(son.per_partition_ops.len(), 2);
        assert!(son.per_partition_ops.iter().all(|&(a, b)| a > 0 && b > 0));
    }

    #[test]
    fn empty_partition_tolerated() {
        let data = db(&[&[1, 2], &[1, 2]]);
        let refs: Vec<&ItemSet> = data.iter().collect();
        let partitions = vec![refs.clone(), Vec::new()];
        let son = son_distributed_mine(&partitions, &cfg(0.5));
        assert!(son
            .global_frequent
            .iter()
            .any(|f| f.items == vec![1, 2] && f.count == 2));
    }

    #[test]
    fn son_with_eclat_matches_son_with_apriori() {
        let data = db(&[
            &[1, 2, 3],
            &[1, 2],
            &[2, 3, 4],
            &[1, 3, 4],
            &[2, 4],
            &[1, 2, 4],
        ]);
        let refs: Vec<&ItemSet> = data.iter().collect();
        let partitions = [refs[..3].to_vec(), refs[3..].to_vec()];
        let c = cfg(0.4);
        for partition in &partitions {
            let a = son_local_mine_with(LocalMiner::Apriori, partition, &c);
            let e = son_local_mine_with(LocalMiner::Eclat, partition, &c);
            assert_eq!(a.local.itemsets, e.local.itemsets);
        }
    }

    #[test]
    fn candidate_union_dedups() {
        let a = MiningOutput {
            itemsets: vec![FrequentItemset {
                items: vec![1, 2],
                count: 3,
            }],
            candidates_generated: 1,
            num_transactions: 3,
        };
        let b = MiningOutput {
            itemsets: vec![
                FrequentItemset {
                    items: vec![1, 2],
                    count: 5,
                },
                FrequentItemset {
                    items: vec![9],
                    count: 2,
                },
            ],
            candidates_generated: 2,
            num_transactions: 5,
        };
        let union = son_candidate_union(&[&a, &b]);
        assert_eq!(union, vec![vec![1, 2], vec![9]]);
    }
}
