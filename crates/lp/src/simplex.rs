//! Dense two-phase primal simplex.
//!
//! Problems are stated as `minimize c·x` over `x ≥ 0` with linear
//! constraints `a·x {≤,≥,=} b`. Internally each right-hand side is made
//! non-negative, slack/surplus columns are appended for inequalities, and
//! phase 1 minimizes the sum of artificial variables to find a basic
//! feasible point before phase 2 optimizes the true objective. Bland's rule
//! guarantees termination; the problems solved in this workspace have at
//! most a few dozen variables, so numerical drift is negligible at the
//! `1e-9` tolerance used throughout.

use std::fmt;

/// Numerical tolerance for feasibility/optimality decisions.
const EPS: f64 = 1e-9;
/// Hard iteration cap (defense in depth; Bland's rule already terminates).
const MAX_ITERS: usize = 100_000;

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// Outcome classification of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
}

/// Errors from problem construction or solving.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A constraint row has the wrong number of coefficients.
    DimensionMismatch { expected: usize, got: usize },
    /// A non-finite coefficient was supplied.
    NonFinite,
    /// The iteration cap was hit (should not happen with Bland's rule).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::DimensionMismatch { expected, got } => {
                write!(f, "constraint has {got} coefficients, expected {expected}")
            }
            LpError::NonFinite => write!(f, "non-finite coefficient"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// A solution returned by [`Problem::solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Final status; `x`/`objective` are meaningful only when `Optimal`.
    pub status: SolveStatus,
    /// Optimal values of the structural variables (same order as the costs).
    pub x: Vec<f64>,
    /// Optimal objective value `c·x` (+ any constant you add externally).
    pub objective: f64,
    /// Simplex pivots performed across both phases.
    pub iterations: usize,
}

/// A linear program `minimize c·x` over `x ≥ 0`.
#[derive(Debug, Clone)]
pub struct Problem {
    costs: Vec<f64>,
    rows: Vec<(Vec<f64>, Relation, f64)>,
}

impl Problem {
    /// Start a minimization problem with the given cost vector.
    pub fn minimize(costs: Vec<f64>) -> Self {
        Problem {
            costs,
            rows: Vec::new(),
        }
    }

    /// Start a maximization problem (costs are negated internally; the
    /// reported objective is negated back).
    pub fn maximize(costs: Vec<f64>) -> MaximizeProblem {
        MaximizeProblem {
            inner: Problem::minimize(costs.iter().map(|c| -c).collect()),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.costs.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Add the constraint `coeffs·x  rel  rhs`.
    pub fn constrain(&mut self, coeffs: Vec<f64>, rel: Relation, rhs: f64) -> &mut Self {
        assert_eq!(
            coeffs.len(),
            self.costs.len(),
            "constraint arity must match variable count"
        );
        self.rows.push((coeffs, rel, rhs));
        self
    }

    /// Validate inputs, then run two-phase simplex.
    pub fn solve(&self) -> Result<Solution, LpError> {
        if self.costs.iter().any(|c| !c.is_finite()) {
            return Err(LpError::NonFinite);
        }
        for (coeffs, _, rhs) in &self.rows {
            if coeffs.len() != self.costs.len() {
                return Err(LpError::DimensionMismatch {
                    expected: self.costs.len(),
                    got: coeffs.len(),
                });
            }
            if coeffs.iter().any(|c| !c.is_finite()) || !rhs.is_finite() {
                return Err(LpError::NonFinite);
            }
        }
        Tableau::build(self).solve()
    }
}

/// Builder wrapper so `maximize` reads naturally at call sites.
#[derive(Debug, Clone)]
pub struct MaximizeProblem {
    inner: Problem,
}

impl MaximizeProblem {
    /// Add the constraint `coeffs·x  rel  rhs`.
    pub fn constrain(&mut self, coeffs: Vec<f64>, rel: Relation, rhs: f64) -> &mut Self {
        self.inner.constrain(coeffs, rel, rhs);
        self
    }

    /// Solve; the objective is reported in maximization sign.
    pub fn solve(&self) -> Result<Solution, LpError> {
        let mut sol = self.inner.solve()?;
        sol.objective = -sol.objective;
        sol
            .x
            .truncate(self.inner.num_vars());
        Ok(sol)
    }
}

/// The dense simplex tableau.
///
/// Layout: `m` rows × (`n_total` variable columns + 1 rhs column). The
/// variable columns are `[structural | slack/surplus | artificial]`.
struct Tableau {
    m: usize,
    n_struct: usize,
    n_total: usize,
    n_artificial_start: usize,
    /// Row-major `m × (n_total + 1)`; last column is the rhs.
    a: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Original (phase-2) costs, padded with zeros for slack/artificials.
    costs: Vec<f64>,
    iterations: usize,
}

impl Tableau {
    fn build(p: &Problem) -> Tableau {
        let m = p.rows.len();
        let n_struct = p.costs.len();

        // Count extra columns.
        let mut n_slack = 0;
        let mut n_art = 0;
        for (_, rel, rhs) in &p.rows {
            // After rhs normalization the effective relation may flip.
            let rel = effective_relation(*rel, *rhs);
            match rel {
                Relation::Le => n_slack += 1,
                Relation::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Relation::Eq => n_art += 1,
            }
        }
        let n_total = n_struct + n_slack + n_art;
        let width = n_total + 1;
        let mut a = vec![0.0; m * width];
        let mut basis = vec![usize::MAX; m];

        let mut slack_col = n_struct;
        let art_start = n_struct + n_slack;
        let mut art_col = art_start;

        for (r, (coeffs, rel, rhs)) in p.rows.iter().enumerate() {
            let (sign, rel) = if *rhs < 0.0 {
                (-1.0, flip(*rel))
            } else {
                (1.0, *rel)
            };
            for (j, &c) in coeffs.iter().enumerate() {
                a[r * width + j] = sign * c;
            }
            a[r * width + n_total] = sign * rhs;
            match rel {
                Relation::Le => {
                    a[r * width + slack_col] = 1.0;
                    basis[r] = slack_col;
                    slack_col += 1;
                }
                Relation::Ge => {
                    a[r * width + slack_col] = -1.0; // surplus
                    slack_col += 1;
                    a[r * width + art_col] = 1.0;
                    basis[r] = art_col;
                    art_col += 1;
                }
                Relation::Eq => {
                    a[r * width + art_col] = 1.0;
                    basis[r] = art_col;
                    art_col += 1;
                }
            }
        }

        let mut costs = vec![0.0; n_total];
        costs[..n_struct].copy_from_slice(&p.costs);

        Tableau {
            m,
            n_struct,
            n_total,
            n_artificial_start: art_start,
            a,
            basis,
            costs,
            iterations: 0,
        }
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.n_total + 1) + c]
    }

    #[inline]
    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.n_total)
    }

    fn solve(mut self) -> Result<Solution, LpError> {
        // ---- Phase 1: minimize the sum of artificial variables. ----
        if self.n_artificial_start < self.n_total {
            let phase1: Vec<f64> = (0..self.n_total)
                .map(|j| if j >= self.n_artificial_start { 1.0 } else { 0.0 })
                .collect();
            let status = self.optimize(&phase1, self.n_total)?;
            debug_assert_ne!(status, SolveStatus::Unbounded, "phase 1 is bounded below by 0");
            let p1_obj = self.objective_value(&phase1);
            if p1_obj > 1e-7 {
                return Ok(Solution {
                    status: SolveStatus::Infeasible,
                    x: vec![0.0; self.n_struct],
                    objective: 0.0,
                    iterations: self.iterations,
                });
            }
            self.evict_artificials();
        }

        // ---- Phase 2: minimize the true objective over non-artificials. ----
        let costs = self.costs.clone();
        let status = self.optimize(&costs, self.n_artificial_start)?;
        if status == SolveStatus::Unbounded {
            return Ok(Solution {
                status,
                x: vec![0.0; self.n_struct],
                objective: f64::NEG_INFINITY,
                iterations: self.iterations,
            });
        }

        let mut x = vec![0.0; self.n_struct];
        for (r, &b) in self.basis.iter().enumerate() {
            if b < self.n_struct {
                x[b] = self.rhs(r);
            }
        }
        let objective = self
            .costs
            .iter()
            .take(self.n_struct)
            .zip(&x)
            .map(|(c, v)| c * v)
            .sum();
        Ok(Solution {
            status: SolveStatus::Optimal,
            x,
            objective,
            iterations: self.iterations,
        })
    }

    /// Run simplex pivots for the given cost vector, considering only
    /// columns `< col_limit` as candidates to enter the basis.
    fn optimize(&mut self, costs: &[f64], col_limit: usize) -> Result<SolveStatus, LpError> {
        loop {
            self.iterations += 1;
            if self.iterations > MAX_ITERS {
                return Err(LpError::IterationLimit);
            }
            let reduced = self.reduced_costs(costs);
            // Bland's rule: smallest-index column with negative reduced cost.
            let entering = (0..col_limit).find(|&j| reduced[j] < -EPS);
            let Some(entering) = entering else {
                return Ok(SolveStatus::Optimal);
            };
            // Ratio test; Bland tie-break on smallest basis variable index.
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.m {
                let a_rj = self.at(r, entering);
                if a_rj > EPS {
                    let ratio = self.rhs(r) / a_rj;
                    match leave {
                        None => leave = Some((r, ratio)),
                        Some((lr, lratio)) => {
                            if ratio < lratio - EPS
                                || (ratio < lratio + EPS && self.basis[r] < self.basis[lr])
                            {
                                leave = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((leaving_row, _)) = leave else {
                return Ok(SolveStatus::Unbounded);
            };
            self.pivot(leaving_row, entering);
        }
    }

    /// Reduced costs `c_j − c_B · B⁻¹ A_j` read directly off the tableau:
    /// because the tableau is kept in canonical form, that is
    /// `c_j − Σ_r c_basis(r) · a[r][j]`.
    fn reduced_costs(&self, costs: &[f64]) -> Vec<f64> {
        let mut reduced = costs.to_vec();
        for (r, &b) in self.basis.iter().enumerate() {
            let cb = costs[b];
            if cb == 0.0 {
                continue;
            }
            for (j, red) in reduced.iter_mut().enumerate() {
                *red -= cb * self.at(r, j);
            }
        }
        reduced
    }

    fn objective_value(&self, costs: &[f64]) -> f64 {
        self.basis
            .iter()
            .enumerate()
            .map(|(r, &b)| costs[b] * self.rhs(r))
            .sum()
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.n_total + 1;
        let d = self.at(row, col);
        debug_assert!(d.abs() > EPS);
        for j in 0..width {
            self.a[row * width + j] /= d;
        }
        for r in 0..self.m {
            if r == row {
                continue;
            }
            let factor = self.at(r, col);
            if factor == 0.0 {
                continue;
            }
            for j in 0..width {
                self.a[r * width + j] -= factor * self.a[row * width + j];
            }
        }
        self.basis[row] = col;
    }

    /// After phase 1, pivot any artificial variable still in the basis out
    /// (it must sit at value 0). If its row has no eligible non-artificial
    /// column the row is redundant and is neutralized.
    fn evict_artificials(&mut self) {
        for r in 0..self.m {
            if self.basis[r] < self.n_artificial_start {
                continue;
            }
            let pivot_col =
                (0..self.n_artificial_start).find(|&j| self.at(r, j).abs() > EPS);
            if let Some(col) = pivot_col {
                self.pivot(r, col);
            } else {
                // Redundant row: zero it so it can never constrain anything.
                let width = self.n_total + 1;
                for j in 0..width {
                    self.a[r * width + j] = 0.0;
                }
                // Leave the artificial in the basis at value 0; as its
                // column is now all-zero it never re-enters pivoting.
            }
        }
    }
}

fn flip(rel: Relation) -> Relation {
    match rel {
        Relation::Le => Relation::Ge,
        Relation::Ge => Relation::Le,
        Relation::Eq => Relation::Eq,
    }
}

fn effective_relation(rel: Relation, rhs: f64) -> Relation {
    if rhs < 0.0 {
        flip(rel)
    } else {
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-7
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), 36.
        let mut p = Problem::maximize(vec![3.0, 5.0]);
        p.constrain(vec![1.0, 0.0], Relation::Le, 4.0);
        p.constrain(vec![0.0, 2.0], Relation::Le, 12.0);
        p.constrain(vec![3.0, 2.0], Relation::Le, 18.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(close(s.objective, 36.0));
        assert!(close(s.x[0], 2.0) && close(s.x[1], 6.0));
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 -> x=7,y=3 obj 23.
        let mut p = Problem::minimize(vec![2.0, 3.0]);
        p.constrain(vec![1.0, 1.0], Relation::Ge, 10.0);
        p.constrain(vec![1.0, 0.0], Relation::Ge, 2.0);
        p.constrain(vec![0.0, 1.0], Relation::Ge, 3.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(close(s.objective, 23.0), "objective {}", s.objective);
        assert!(close(s.x[0], 7.0) && close(s.x[1], 3.0));
    }

    #[test]
    fn equality_constraint() {
        // min x + y s.t. x + 2y = 4 -> y=2, x=0, obj 2.
        let mut p = Problem::minimize(vec![1.0, 1.0]);
        p.constrain(vec![1.0, 2.0], Relation::Eq, 4.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(close(s.objective, 2.0));
        assert!(close(s.x[1], 2.0));
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::minimize(vec![1.0]);
        p.constrain(vec![1.0], Relation::Le, 1.0);
        p.constrain(vec![1.0], Relation::Ge, 2.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        // min -x with only x >= 0 constraint-free in that direction.
        let mut p = Problem::minimize(vec![-1.0, 0.0]);
        p.constrain(vec![0.0, 1.0], Relation::Le, 5.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // x - y <= -2 with min x + y  ->  y >= x + 2, best x=0,y=2.
        let mut p = Problem::minimize(vec![1.0, 1.0]);
        p.constrain(vec![1.0, -1.0], Relation::Le, -2.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(close(s.objective, 2.0));
        assert!(close(s.x[0], 0.0) && close(s.x[1], 2.0));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple constraints meeting at a degenerate vertex.
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        p.constrain(vec![1.0, 0.0], Relation::Le, 1.0);
        p.constrain(vec![1.0, 0.0], Relation::Le, 1.0);
        p.constrain(vec![1.0, 1.0], Relation::Le, 2.0);
        p.constrain(vec![0.0, 1.0], Relation::Le, 1.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(close(s.objective, 2.0));
    }

    #[test]
    fn redundant_equality_rows() {
        // Duplicate equality rows exercise the redundant-row path in
        // evict_artificials.
        let mut p = Problem::minimize(vec![1.0, 2.0]);
        p.constrain(vec![1.0, 1.0], Relation::Eq, 3.0);
        p.constrain(vec![1.0, 1.0], Relation::Eq, 3.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(close(s.objective, 3.0));
        assert!(close(s.x[0], 3.0));
    }

    #[test]
    fn partitioning_shaped_lp() {
        // The paper's LP with alpha=1 (pure makespan): 3 nodes with rates
        // implied by slopes m = [1, 2, 4] (time per element), c = 0,
        // N = 700. Optimal: x proportional to 1/m: x = [400, 200, 100],
        // v = 400.
        let n_nodes = 3;
        let m = [1.0, 2.0, 4.0];
        let total = 700.0;
        // Variables: [x0, x1, x2, v].
        let mut costs = vec![0.0; n_nodes + 1];
        costs[n_nodes] = 1.0; // minimize v
        let mut p = Problem::minimize(costs);
        for i in 0..n_nodes {
            // m_i x_i - v <= 0
            let mut row = vec![0.0; n_nodes + 1];
            row[i] = m[i];
            row[n_nodes] = -1.0;
            p.constrain(row, Relation::Le, 0.0);
        }
        let mut sum_row = vec![1.0; n_nodes + 1];
        sum_row[n_nodes] = 0.0;
        p.constrain(sum_row, Relation::Eq, total);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(close(s.objective, 400.0), "v = {}", s.objective);
        assert!(close(s.x[0], 400.0) && close(s.x[1], 200.0) && close(s.x[2], 100.0));
    }

    #[test]
    fn rejects_non_finite() {
        let mut p = Problem::minimize(vec![f64::NAN]);
        p.constrain(vec![1.0], Relation::Le, 1.0);
        assert_eq!(p.solve(), Err(LpError::NonFinite));
    }

    #[test]
    #[should_panic(expected = "constraint arity")]
    fn panics_on_bad_arity() {
        let mut p = Problem::minimize(vec![1.0, 2.0]);
        p.constrain(vec![1.0], Relation::Le, 1.0);
    }

    #[test]
    fn zero_variable_problem() {
        let p = Problem::minimize(vec![]);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.objective, 0.0);
    }
}
