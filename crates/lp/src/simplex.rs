//! Revised simplex with warm-startable, serializable bases.
//!
//! Problems are stated as `minimize c·x` over `x ≥ 0` with linear
//! constraints `a·x {≤,≥,=} b`. Internally each right-hand side is made
//! non-negative, slack/surplus columns are appended for inequalities, and
//! phase 1 minimizes the sum of artificial variables to find a basic
//! feasible point before phase 2 optimizes the true objective. Bland's rule
//! guarantees termination; the problems solved in this workspace have at
//! most a few dozen variables, so numerical drift is negligible at the
//! `1e-9` tolerance used throughout.
//!
//! Unlike a dense tableau, the solver works with an explicit basis (an LU
//! factorization of the basic columns, refreshed per pivot) over the
//! original standardized data. That makes the final basis a first-class,
//! serializable artifact ([`Basis`]) that callers can hold and re-seed via
//! [`Problem::solve_from`]: the basis is re-factorized against the new
//! problem, primal feasibility is repaired with bounded dual simplex steps,
//! and the remaining primal pivots start from a near-optimal vertex.
//!
//! Warm starts are *bit-identical* to cold solves: the optimal vertex is
//! always extracted canonically from the final basis (columns sorted
//! ascending, deterministic LU over the original standardized data), so the
//! extracted `(status, x, objective)` depends only on the final basis set,
//! not on the pivot path that reached it. A warm result is accepted only
//! when the final basis is provably the unique optimum (all nonbasic
//! reduced costs and all basic values clear a strict margin); otherwise the
//! solver deterministically falls back to the cold two-phase path, so a
//! warm caller can never observe a different `Solution` than a cold one.

use std::fmt;

/// Numerical tolerance for feasibility/optimality decisions.
const EPS: f64 = 1e-9;
/// Pivot magnitude below which an LU factorization is declared singular.
const SING_EPS: f64 = 1e-12;
/// Margin proving a basis is the *unique* optimum: every nonbasic reduced
/// cost and every basic value must exceed this. Chosen far above the float
/// noise of these few-dozen-variable problems (~1e-12) and below any
/// meaningful model distinction, so acceptance is conservative but common.
const UNIQ_EPS: f64 = 1e-7;
/// Hard iteration cap (defense in depth; Bland's rule already terminates).
const MAX_ITERS: usize = 100_000;

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// Outcome classification of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
}

/// Errors from problem construction or solving.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A constraint row has the wrong number of coefficients.
    DimensionMismatch { expected: usize, got: usize },
    /// A non-finite coefficient was supplied.
    NonFinite,
    /// The iteration cap was hit (should not happen with Bland's rule).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::DimensionMismatch { expected, got } => {
                write!(f, "constraint has {got} coefficients, expected {expected}")
            }
            LpError::NonFinite => write!(f, "non-finite coefficient"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// A solution returned by [`Problem::solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Final status; `x`/`objective` are meaningful only when `Optimal`.
    pub status: SolveStatus,
    /// Optimal values of the structural variables (same order as the costs).
    pub x: Vec<f64>,
    /// Optimal objective value `c·x` (+ any constant you add externally).
    pub objective: f64,
    /// Simplex pivots performed across both phases. For a warm solve this
    /// counts the pivots actually spent (including an abandoned warm attempt
    /// before a fallback), so it is the one field *not* covered by the
    /// warm/cold bit-identity contract on `(status, x, objective)`.
    pub iterations: usize,
}

/// How a [`Problem::solve_warm`] call reached its answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartKind {
    /// No warm basis was supplied (or it was shape-incompatible on sight).
    Cold,
    /// The warm basis was re-seeded and the result accepted as provably
    /// identical to a cold solve.
    Warm,
    /// A warm basis was attempted but repair/acceptance failed; the
    /// returned solution comes from the deterministic cold fallback.
    WarmFallback,
}

/// A serializable simplex basis: the set of basic column indices of the
/// standardized problem (structural variables first, then one slack or
/// surplus column per row in row order, then artificials).
///
/// The column set is kept sorted, so two bases compare equal iff they
/// select the same columns regardless of the pivot order that produced
/// them. Bases holding artificial columns (redundant constraint rows)
/// are never produced for warm reuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    m: u32,
    n_struct: u32,
    cols: Vec<u32>,
}

/// Magic prefix of the [`Basis::encode`] byte format.
const BASIS_MAGIC: &[u8; 4] = b"PLB1";

impl Basis {
    /// Build a basis from raw column indices (sorted internally). Returns
    /// `None` if the column count does not match `m` or contains duplicates.
    pub fn from_columns(m: usize, n_struct: usize, mut cols: Vec<u32>) -> Option<Basis> {
        if cols.len() != m {
            return None;
        }
        cols.sort_unstable();
        if cols.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
        Some(Basis {
            m: m as u32,
            n_struct: n_struct as u32,
            cols,
        })
    }

    /// Number of constraint rows the basis was built for.
    pub fn num_rows(&self) -> usize {
        self.m as usize
    }

    /// Number of structural variables the basis was built for.
    pub fn num_structural(&self) -> usize {
        self.n_struct as usize
    }

    /// Basic column indices, sorted ascending.
    pub fn columns(&self) -> &[u32] {
        &self.cols
    }

    /// Serialize to a compact, versioned little-endian byte layout:
    /// `"PLB1" | m: u32 | n_struct: u32 | cols: u32 × m`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + 4 * self.cols.len());
        out.extend_from_slice(BASIS_MAGIC);
        out.extend_from_slice(&self.m.to_le_bytes());
        out.extend_from_slice(&self.n_struct.to_le_bytes());
        for c in &self.cols {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    /// Inverse of [`Basis::encode`]; `None` on any malformed input.
    pub fn decode(bytes: &[u8]) -> Option<Basis> {
        let rest = bytes.strip_prefix(BASIS_MAGIC)?;
        if rest.len() < 8 {
            return None;
        }
        let m = u32::from_le_bytes(rest[0..4].try_into().ok()?);
        let n_struct = u32::from_le_bytes(rest[4..8].try_into().ok()?);
        let body = &rest[8..];
        if body.len() != 4 * m as usize {
            return None;
        }
        let cols: Vec<u32> = body
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if cols.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        Some(Basis { m, n_struct, cols })
    }
}

/// A solve outcome carrying the reusable basis alongside the solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solved {
    /// The solution, bit-identical whether warm- or cold-started.
    pub solution: Solution,
    /// The optimal basis (present only when `status == Optimal`), suitable
    /// for re-seeding a related solve via [`Problem::solve_from`].
    pub basis: Option<Basis>,
    /// Whether the warm basis was used, unusable, or absent.
    pub start: StartKind,
}

/// A linear program `minimize c·x` over `x ≥ 0`.
#[derive(Debug, Clone)]
pub struct Problem {
    costs: Vec<f64>,
    rows: Vec<(Vec<f64>, Relation, f64)>,
}

impl Problem {
    /// Start a minimization problem with the given cost vector.
    pub fn minimize(costs: Vec<f64>) -> Self {
        Problem {
            costs,
            rows: Vec::new(),
        }
    }

    /// Start a maximization problem (costs are negated internally; the
    /// reported objective is negated back).
    pub fn maximize(costs: Vec<f64>) -> MaximizeProblem {
        MaximizeProblem {
            inner: Problem::minimize(costs.iter().map(|c| -c).collect()),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.costs.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Add the constraint `coeffs·x  rel  rhs`. Arity is validated by the
    /// typed path in [`Problem::solve`] (`LpError::DimensionMismatch`), so
    /// malformed rows never panic.
    pub fn constrain(&mut self, coeffs: Vec<f64>, rel: Relation, rhs: f64) -> &mut Self {
        self.rows.push((coeffs, rel, rhs));
        self
    }

    fn validate(&self) -> Result<(), LpError> {
        if self.costs.iter().any(|c| !c.is_finite()) {
            return Err(LpError::NonFinite);
        }
        for (coeffs, _, rhs) in &self.rows {
            if coeffs.len() != self.costs.len() {
                return Err(LpError::DimensionMismatch {
                    expected: self.costs.len(),
                    got: coeffs.len(),
                });
            }
            if coeffs.iter().any(|c| !c.is_finite()) || !rhs.is_finite() {
                return Err(LpError::NonFinite);
            }
        }
        Ok(())
    }

    /// Validate inputs, then run two-phase simplex from scratch.
    pub fn solve(&self) -> Result<Solution, LpError> {
        Ok(self.solve_warm(None)?.solution)
    }

    /// Cold solve that also returns the optimal [`Basis`] for reuse.
    pub fn solve_cold(&self) -> Result<Solved, LpError> {
        self.solve_warm(None)
    }

    /// Warm-started solve seeded from a basis of a related problem (same
    /// standardized shape; typically the previous point of an alpha sweep
    /// or the pre-fault plan). Guaranteed to return the same
    /// `(status, x, objective)` as [`Problem::solve`]: when the repaired
    /// warm basis cannot be proven to be the unique cold optimum, the
    /// solver falls back to the cold path (`StartKind::WarmFallback`).
    pub fn solve_from(&self, warm: &Basis) -> Result<Solved, LpError> {
        self.solve_warm(Some(warm))
    }

    /// [`Problem::solve_from`] with an optional seed basis.
    pub fn solve_warm(&self, warm: Option<&Basis>) -> Result<Solved, LpError> {
        self.validate()?;
        let std = Standard::build(self);
        let mut warm_spent = 0;
        if let Some(basis) = warm {
            match try_warm(&std, basis) {
                WarmOutcome::Accepted(solved) => return Ok(solved),
                WarmOutcome::Abandoned { pivots } => warm_spent = pivots,
                WarmOutcome::Error(e) => return Err(e),
            }
        }
        let mut solved = solve_cold_std(&std)?;
        solved.solution.iterations += warm_spent;
        if warm.is_some() {
            solved.start = StartKind::WarmFallback;
        }
        Ok(solved)
    }
}

/// Builder wrapper so `maximize` reads naturally at call sites.
#[derive(Debug, Clone)]
pub struct MaximizeProblem {
    inner: Problem,
}

impl MaximizeProblem {
    /// Add the constraint `coeffs·x  rel  rhs`.
    pub fn constrain(&mut self, coeffs: Vec<f64>, rel: Relation, rhs: f64) -> &mut Self {
        self.inner.constrain(coeffs, rel, rhs);
        self
    }

    /// Solve; the objective is reported in maximization sign.
    pub fn solve(&self) -> Result<Solution, LpError> {
        let mut sol = self.inner.solve()?;
        sol.objective = -sol.objective;
        sol.x.truncate(self.inner.num_vars());
        Ok(sol)
    }
}

/// The standardized problem: `minimize costs·z` s.t. `A z = b`, `z ≥ 0`,
/// with non-negative `b` and columns `[structural | slack/surplus | artificial]`.
///
/// Column numbering is a pure function of the row list: every inequality
/// row gets exactly one slack (+1) or surplus (−1) column, assigned in row
/// order starting at `n_struct`; artificials follow from `art_start`.
struct Standard {
    m: usize,
    n_struct: usize,
    n_total: usize,
    art_start: usize,
    /// Column-major `m × n_total`; column `j` occupies `[j*m, (j+1)*m)`.
    cols: Vec<f64>,
    b: Vec<f64>,
    /// Phase-2 costs, padded with zeros for slack/artificials.
    costs: Vec<f64>,
    /// Initial (all-identity) basis for the cold phase-1 start: the row's
    /// slack for `≤` rows, its artificial otherwise.
    start_basis: Vec<usize>,
}

impl Standard {
    fn build(p: &Problem) -> Standard {
        let m = p.rows.len();
        let n_struct = p.costs.len();

        let mut n_slack = 0;
        let mut n_art = 0;
        for (_, rel, rhs) in &p.rows {
            // After rhs normalization the effective relation may flip.
            match effective_relation(*rel, *rhs) {
                Relation::Le => n_slack += 1,
                Relation::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Relation::Eq => n_art += 1,
            }
        }
        let n_total = n_struct + n_slack + n_art;
        let art_start = n_struct + n_slack;
        let mut cols = vec![0.0; m * n_total];
        let mut b = vec![0.0; m];
        let mut start_basis = vec![usize::MAX; m];

        let mut slack_col = n_struct;
        let mut art_col = art_start;
        for (r, (coeffs, rel, rhs)) in p.rows.iter().enumerate() {
            let (sign, rel) = if *rhs < 0.0 {
                (-1.0, flip(*rel))
            } else {
                (1.0, *rel)
            };
            for (j, &c) in coeffs.iter().enumerate() {
                cols[j * m + r] = sign * c;
            }
            b[r] = sign * rhs;
            match rel {
                Relation::Le => {
                    cols[slack_col * m + r] = 1.0;
                    start_basis[r] = slack_col;
                    slack_col += 1;
                }
                Relation::Ge => {
                    cols[slack_col * m + r] = -1.0; // surplus
                    slack_col += 1;
                    cols[art_col * m + r] = 1.0;
                    start_basis[r] = art_col;
                    art_col += 1;
                }
                Relation::Eq => {
                    cols[art_col * m + r] = 1.0;
                    start_basis[r] = art_col;
                    art_col += 1;
                }
            }
        }

        let mut costs = vec![0.0; n_total];
        costs[..n_struct].copy_from_slice(&p.costs);

        Standard {
            m,
            n_struct,
            n_total,
            art_start,
            cols,
            b,
            costs,
            start_basis,
        }
    }

    #[inline]
    fn col(&self, j: usize) -> &[f64] {
        &self.cols[j * self.m..(j + 1) * self.m]
    }
}

/// Dense LU factorization with deterministic partial pivoting (largest
/// absolute value; first row on exact ties).
struct Lu {
    m: usize,
    /// Row-major `m × m`: unit-diagonal `L` strictly below, `U` on/above.
    lu: Vec<f64>,
    /// `perm[i]` = index (into the supplied rows) stored at position `i`.
    perm: Vec<usize>,
}

impl Lu {
    /// Factor the matrix whose `k`-th column is `cols[k]` of `std`.
    fn factor(std: &Standard, basis: &[usize]) -> Option<Lu> {
        let m = std.m;
        let mut a = vec![0.0; m * m];
        for (k, &j) in basis.iter().enumerate() {
            let col = std.col(j);
            for r in 0..m {
                a[r * m + k] = col[r];
            }
        }
        let mut perm: Vec<usize> = (0..m).collect();
        for k in 0..m {
            let mut best = k;
            let mut best_abs = a[perm[k] * m + k].abs();
            for (i, &p) in perm.iter().enumerate().skip(k + 1) {
                let v = a[p * m + k].abs();
                if v > best_abs {
                    best = i;
                    best_abs = v;
                }
            }
            if best_abs <= SING_EPS {
                return None;
            }
            perm.swap(k, best);
            let pk = perm[k];
            let diag = a[pk * m + k];
            for &pi in perm.iter().skip(k + 1) {
                let f = a[pi * m + k] / diag;
                if f != 0.0 {
                    a[pi * m + k] = f;
                    for j in (k + 1)..m {
                        a[pi * m + j] -= f * a[pk * m + j];
                    }
                } else {
                    a[pi * m + k] = 0.0;
                }
            }
        }
        // Pack rows in permuted order so solves are cache-friendly.
        let mut lu = vec![0.0; m * m];
        for (i, &p) in perm.iter().enumerate() {
            lu[i * m..(i + 1) * m].copy_from_slice(&a[p * m..(p + 1) * m]);
        }
        Some(Lu { m, lu, perm })
    }

    /// Solve `B x = rhs` (rhs indexed by original row); result aligned with
    /// the basis column order used at factor time.
    fn solve(&self, rhs: &[f64], out: &mut [f64]) {
        let m = self.m;
        for (i, &p) in self.perm.iter().enumerate() {
            out[i] = rhs[p];
        }
        // Forward: L y = P rhs (unit diagonal).
        for i in 1..m {
            let mut acc = out[i];
            for k in 0..i {
                acc -= self.lu[i * m + k] * out[k];
            }
            out[i] = acc;
        }
        // Back: U x = y.
        for i in (0..m).rev() {
            let mut acc = out[i];
            for k in (i + 1)..m {
                acc -= self.lu[i * m + k] * out[k];
            }
            out[i] = acc / self.lu[i * m + i];
        }
    }

    /// Solve `Bᵀ y = rhs` (rhs aligned with basis order); result indexed by
    /// original row, ready for dotting against standardized columns.
    fn solve_t(&self, rhs: &[f64], out: &mut [f64]) {
        let m = self.m;
        let mut w = rhs.to_vec();
        // Forward: Uᵀ z = rhs (Uᵀ is lower-triangular).
        for i in 0..m {
            let mut acc = w[i];
            for k in 0..i {
                acc -= self.lu[k * m + i] * w[k];
            }
            w[i] = acc / self.lu[i * m + i];
        }
        // Back: Lᵀ u = z (unit diagonal).
        for i in (0..m).rev() {
            let mut acc = w[i];
            for k in (i + 1)..m {
                acc -= self.lu[k * m + i] * w[k];
            }
            w[i] = acc;
        }
        // y = Pᵀ u.
        for (i, &p) in self.perm.iter().enumerate() {
            out[p] = w[i];
        }
    }
}

/// Revised-simplex engine state: a basis column list with its current
/// factorization and basic values. Refactorized after every pivot — the
/// problems here are tiny, and a fresh LU per pivot keeps the arithmetic
/// deterministic and drift-free without eta-file machinery.
struct Engine<'a> {
    std: &'a Standard,
    /// Basic column per basis slot (unordered; slot order is meaningless).
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    lu: Option<Lu>,
    /// Basic values `B⁻¹ b`, aligned with `basis` slots.
    xb: Vec<f64>,
    iterations: usize,
}

impl<'a> Engine<'a> {
    fn new(std: &'a Standard, basis: Vec<usize>) -> Engine<'a> {
        let mut in_basis = vec![false; std.n_total];
        for &j in &basis {
            in_basis[j] = true;
        }
        Engine {
            std,
            basis,
            in_basis,
            lu: None,
            xb: vec![0.0; std.m],
            iterations: 0,
        }
    }

    /// (Re-)factorize the current basis and refresh `xb`.
    fn refactor(&mut self) -> bool {
        match Lu::factor(self.std, &self.basis) {
            Some(lu) => {
                lu.solve(&self.std.b, &mut self.xb);
                self.lu = Some(lu);
                true
            }
            None => false,
        }
    }

    /// Simplex multipliers `y` solving `Bᵀ y = c_B` for the given costs.
    fn multipliers(&self, costs: &[f64]) -> Vec<f64> {
        let cb: Vec<f64> = self.basis.iter().map(|&j| costs[j]).collect();
        let mut y = vec![0.0; self.std.m];
        self.lu.as_ref().expect("factorized").solve_t(&cb, &mut y);
        y
    }

    fn reduced_cost(&self, costs: &[f64], y: &[f64], j: usize) -> f64 {
        costs[j] - dot(y, self.std.col(j))
    }

    fn replace(&mut self, slot: usize, entering: usize) -> bool {
        self.in_basis[self.basis[slot]] = false;
        self.in_basis[entering] = true;
        self.basis[slot] = entering;
        self.refactor()
    }

    /// Primal simplex with Bland's rule for the given cost vector,
    /// considering only columns `< col_limit` as entering candidates.
    /// Assumes the current basis is primal feasible.
    fn primal(&mut self, costs: &[f64], col_limit: usize) -> Result<SolveStatus, LpError> {
        loop {
            self.iterations += 1;
            if self.iterations > MAX_ITERS {
                return Err(LpError::IterationLimit);
            }
            let y = self.multipliers(costs);
            // Bland's rule: smallest-index column with negative reduced cost.
            let entering = (0..col_limit)
                .find(|&j| !self.in_basis[j] && self.reduced_cost(costs, &y, j) < -EPS);
            let Some(entering) = entering else {
                return Ok(SolveStatus::Optimal);
            };
            let mut d = vec![0.0; self.std.m];
            self.lu
                .as_ref()
                .expect("factorized")
                .solve(self.std.col(entering), &mut d);
            // Ratio test; Bland tie-break on smallest basis variable index.
            let mut leave: Option<(usize, f64)> = None;
            for (k, &dk) in d.iter().enumerate() {
                if dk > EPS {
                    let ratio = self.xb[k] / dk;
                    match leave {
                        None => leave = Some((k, ratio)),
                        Some((lk, lratio)) => {
                            if ratio < lratio - EPS
                                || (ratio < lratio + EPS && self.basis[k] < self.basis[lk])
                            {
                                leave = Some((k, ratio));
                            }
                        }
                    }
                }
            }
            let Some((slot, _)) = leave else {
                return Ok(SolveStatus::Unbounded);
            };
            if !self.replace(slot, entering) {
                // A pivot on |d| > EPS cannot produce a singular basis
                // outside of catastrophic conditioning; bail via the cap.
                return Err(LpError::IterationLimit);
            }
        }
    }

    /// Objective of the current basic solution under `costs`.
    fn objective(&self, costs: &[f64]) -> f64 {
        self.basis
            .iter()
            .zip(&self.xb)
            .map(|(&j, &v)| costs[j] * v)
            .sum()
    }

    /// After phase 1, pivot any artificial variable still in the basis out
    /// (it must sit at value 0). If its row has no eligible non-artificial
    /// column the row is redundant and the artificial stays basic at zero;
    /// phase 2 never lets artificials re-enter, and in exact arithmetic a
    /// redundant row's artificial remains zero at every basic solution.
    fn evict_artificials(&mut self) -> Result<(), LpError> {
        for slot in 0..self.std.m {
            if self.basis[slot] < self.std.art_start {
                continue;
            }
            let mut e = vec![0.0; self.std.m];
            e[slot] = 1.0;
            let mut w = vec![0.0; self.std.m];
            self.lu.as_ref().expect("factorized").solve_t(&e, &mut w);
            let replacement = (0..self.std.art_start)
                .find(|&j| !self.in_basis[j] && dot(&w, self.std.col(j)).abs() > EPS);
            if let Some(j) = replacement {
                if !self.replace(slot, j) {
                    return Err(LpError::IterationLimit);
                }
            }
        }
        Ok(())
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Extract the solution canonically from a final basis: columns sorted
/// ascending, one deterministic LU solve over the original standardized
/// data. The result depends only on the basis *set*, never on the pivot
/// path — this is what makes warm and cold solves bit-identical.
fn extract(std: &Standard, basis: &[usize], iterations: usize) -> Result<Solved, LpError> {
    let mut sorted: Vec<usize> = basis.to_vec();
    sorted.sort_unstable();
    let lu = Lu::factor(std, &sorted).ok_or(LpError::IterationLimit)?;
    let mut xb = vec![0.0; std.m];
    lu.solve(&std.b, &mut xb);
    let mut x = vec![0.0; std.n_struct];
    for (k, &j) in sorted.iter().enumerate() {
        if j < std.n_struct {
            x[j] = xb[k];
        }
    }
    let objective = std.costs[..std.n_struct]
        .iter()
        .zip(&x)
        .map(|(c, v)| c * v)
        .sum();
    let basis = Basis::from_columns(
        std.m,
        std.n_struct,
        sorted.iter().map(|&j| j as u32).collect(),
    );
    Ok(Solved {
        solution: Solution {
            status: SolveStatus::Optimal,
            x,
            objective,
            iterations,
        },
        basis,
        start: StartKind::Cold,
    })
}

/// Cold two-phase solve over a standardized problem.
fn solve_cold_std(std: &Standard) -> Result<Solved, LpError> {
    let mut eng = Engine::new(std, std.start_basis.clone());
    if !eng.refactor() {
        return Err(LpError::IterationLimit);
    }

    // ---- Phase 1: minimize the sum of artificial variables. ----
    if std.art_start < std.n_total {
        let phase1: Vec<f64> = (0..std.n_total)
            .map(|j| if j >= std.art_start { 1.0 } else { 0.0 })
            .collect();
        let status = eng.primal(&phase1, std.n_total)?;
        debug_assert_ne!(status, SolveStatus::Unbounded, "phase 1 is bounded below by 0");
        if eng.objective(&phase1) > 1e-7 {
            return Ok(Solved {
                solution: Solution {
                    status: SolveStatus::Infeasible,
                    x: vec![0.0; std.n_struct],
                    objective: 0.0,
                    iterations: eng.iterations,
                },
                basis: None,
                start: StartKind::Cold,
            });
        }
        eng.evict_artificials()?;
    }

    // ---- Phase 2: minimize the true objective over non-artificials. ----
    let status = eng.primal(&std.costs, std.art_start)?;
    if status == SolveStatus::Unbounded {
        return Ok(Solved {
            solution: Solution {
                status,
                x: vec![0.0; std.n_struct],
                objective: f64::NEG_INFINITY,
                iterations: eng.iterations,
            },
            basis: None,
            start: StartKind::Cold,
        });
    }
    extract(std, &eng.basis, eng.iterations)
}

enum WarmOutcome {
    Accepted(Solved),
    Abandoned { pivots: usize },
    Error(LpError),
}

/// Attempt a warm-started solve. Any condition that could make the result
/// diverge from the cold path — shape mismatch, singular basis, failed
/// dual repair, degeneracy, or a non-unique optimum — abandons the warm
/// attempt so the caller falls back to the cold solve.
fn try_warm(std: &Standard, warm: &Basis) -> WarmOutcome {
    if warm.num_rows() != std.m
        || warm.num_structural() != std.n_struct
        || warm.cols.iter().any(|&c| (c as usize) >= std.art_start)
    {
        return WarmOutcome::Abandoned { pivots: 0 };
    }
    let basis: Vec<usize> = warm.cols.iter().map(|&c| c as usize).collect();
    let mut eng = Engine::new(std, basis);
    if !eng.refactor() {
        return WarmOutcome::Abandoned { pivots: 0 };
    }

    // Repair primal feasibility with bounded dual simplex steps. This is
    // only sound while the basis stays dual feasible; otherwise fall back.
    if eng.xb.iter().any(|&v| v < -EPS) {
        let dual_cap = 4 * std.m + 16;
        let mut dual_steps = 0;
        loop {
            let y = eng.multipliers(&std.costs);
            let dual_ok = (0..std.art_start).all(|j| {
                eng.in_basis[j] || eng.reduced_cost(&std.costs, &y, j) > -EPS
            });
            if !dual_ok {
                return WarmOutcome::Abandoned {
                    pivots: eng.iterations,
                };
            }
            // Leaving slot: most negative basic value; smallest basis
            // column on near-ties, for determinism.
            let mut slot: Option<(usize, f64)> = None;
            for (k, &v) in eng.xb.iter().enumerate() {
                if v < -EPS {
                    match slot {
                        None => slot = Some((k, v)),
                        Some((sk, sv)) => {
                            if v < sv - EPS || (v < sv + EPS && eng.basis[k] < eng.basis[sk]) {
                                slot = Some((k, v));
                            }
                        }
                    }
                }
            }
            let Some((slot, _)) = slot else {
                break; // primal feasible again
            };
            dual_steps += 1;
            if dual_steps > dual_cap {
                return WarmOutcome::Abandoned {
                    pivots: eng.iterations,
                };
            }
            let mut e = vec![0.0; std.m];
            e[slot] = 1.0;
            let mut w = vec![0.0; std.m];
            eng.lu.as_ref().expect("factorized").solve_t(&e, &mut w);
            // Dual ratio test over columns that can restore feasibility.
            let mut enter: Option<(usize, f64)> = None;
            for j in 0..std.art_start {
                if eng.in_basis[j] {
                    continue;
                }
                let a_kj = dot(&w, std.col(j));
                if a_kj < -EPS {
                    let ratio = eng.reduced_cost(&std.costs, &y, j) / -a_kj;
                    match enter {
                        None => enter = Some((j, ratio)),
                        Some((_, er)) => {
                            if ratio < er - EPS {
                                enter = Some((j, ratio));
                            }
                        }
                    }
                }
            }
            let Some((entering, _)) = enter else {
                // No restoring column: the perturbed problem is primal
                // infeasible along this row; let the cold path classify it.
                return WarmOutcome::Abandoned {
                    pivots: eng.iterations,
                };
            };
            eng.iterations += 1;
            if !eng.replace(slot, entering) {
                return WarmOutcome::Abandoned {
                    pivots: eng.iterations,
                };
            }
        }
    }

    // Finish with primal pivots from the repaired vertex.
    let status = match eng.primal(&std.costs, std.art_start) {
        Ok(s) => s,
        Err(LpError::IterationLimit) => {
            return WarmOutcome::Abandoned {
                pivots: eng.iterations,
            }
        }
        Err(e) => return WarmOutcome::Error(e),
    };
    if status != SolveStatus::Optimal {
        // Unbounded (or anything unexpected): defer to the cold path so
        // status reporting stays byte-for-byte identical.
        return WarmOutcome::Abandoned {
            pivots: eng.iterations,
        };
    }

    // Accept only a provably unique optimum: strict margins on every
    // nonbasic reduced cost and every basic value guarantee the cold
    // two-phase path terminates at this same basis set, and canonical
    // extraction then yields bit-identical output.
    let y = eng.multipliers(&std.costs);
    let unique = (0..std.art_start)
        .all(|j| eng.in_basis[j] || eng.reduced_cost(&std.costs, &y, j) > UNIQ_EPS)
        && eng.xb.iter().all(|&v| v > UNIQ_EPS);
    if !unique {
        return WarmOutcome::Abandoned {
            pivots: eng.iterations,
        };
    }
    match extract(std, &eng.basis, eng.iterations) {
        Ok(mut solved) => {
            solved.start = StartKind::Warm;
            WarmOutcome::Accepted(solved)
        }
        Err(_) => WarmOutcome::Abandoned {
            pivots: eng.iterations,
        },
    }
}

fn flip(rel: Relation) -> Relation {
    match rel {
        Relation::Le => Relation::Ge,
        Relation::Ge => Relation::Le,
        Relation::Eq => Relation::Eq,
    }
}

fn effective_relation(rel: Relation, rhs: f64) -> Relation {
    if rhs < 0.0 {
        flip(rel)
    } else {
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-7
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), 36.
        let mut p = Problem::maximize(vec![3.0, 5.0]);
        p.constrain(vec![1.0, 0.0], Relation::Le, 4.0);
        p.constrain(vec![0.0, 2.0], Relation::Le, 12.0);
        p.constrain(vec![3.0, 2.0], Relation::Le, 18.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(close(s.objective, 36.0));
        assert!(close(s.x[0], 2.0) && close(s.x[1], 6.0));
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 -> x=7,y=3 obj 23.
        let mut p = Problem::minimize(vec![2.0, 3.0]);
        p.constrain(vec![1.0, 1.0], Relation::Ge, 10.0);
        p.constrain(vec![1.0, 0.0], Relation::Ge, 2.0);
        p.constrain(vec![0.0, 1.0], Relation::Ge, 3.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(close(s.objective, 23.0), "objective {}", s.objective);
        assert!(close(s.x[0], 7.0) && close(s.x[1], 3.0));
    }

    #[test]
    fn equality_constraint() {
        // min x + y s.t. x + 2y = 4 -> y=2, x=0, obj 2.
        let mut p = Problem::minimize(vec![1.0, 1.0]);
        p.constrain(vec![1.0, 2.0], Relation::Eq, 4.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(close(s.objective, 2.0));
        assert!(close(s.x[1], 2.0));
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::minimize(vec![1.0]);
        p.constrain(vec![1.0], Relation::Le, 1.0);
        p.constrain(vec![1.0], Relation::Ge, 2.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        // min -x with only x >= 0 constraint-free in that direction.
        let mut p = Problem::minimize(vec![-1.0, 0.0]);
        p.constrain(vec![0.0, 1.0], Relation::Le, 5.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // x - y <= -2 with min x + y  ->  y >= x + 2, best x=0,y=2.
        let mut p = Problem::minimize(vec![1.0, 1.0]);
        p.constrain(vec![1.0, -1.0], Relation::Le, -2.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(close(s.objective, 2.0));
        assert!(close(s.x[0], 0.0) && close(s.x[1], 2.0));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple constraints meeting at a degenerate vertex.
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        p.constrain(vec![1.0, 0.0], Relation::Le, 1.0);
        p.constrain(vec![1.0, 0.0], Relation::Le, 1.0);
        p.constrain(vec![1.0, 1.0], Relation::Le, 2.0);
        p.constrain(vec![0.0, 1.0], Relation::Le, 1.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(close(s.objective, 2.0));
    }

    #[test]
    fn redundant_equality_rows() {
        // Duplicate equality rows exercise the redundant-row path in
        // evict_artificials.
        let mut p = Problem::minimize(vec![1.0, 2.0]);
        p.constrain(vec![1.0, 1.0], Relation::Eq, 3.0);
        p.constrain(vec![1.0, 1.0], Relation::Eq, 3.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(close(s.objective, 3.0));
        assert!(close(s.x[0], 3.0));
    }

    #[test]
    fn partitioning_shaped_lp() {
        // The paper's LP with alpha=1 (pure makespan): 3 nodes with rates
        // implied by slopes m = [1, 2, 4] (time per element), c = 0,
        // N = 700. Optimal: x proportional to 1/m: x = [400, 200, 100],
        // v = 400.
        let n_nodes = 3;
        let m = [1.0, 2.0, 4.0];
        let total = 700.0;
        // Variables: [x0, x1, x2, v].
        let mut costs = vec![0.0; n_nodes + 1];
        costs[n_nodes] = 1.0; // minimize v
        let mut p = Problem::minimize(costs);
        for i in 0..n_nodes {
            // m_i x_i - v <= 0
            let mut row = vec![0.0; n_nodes + 1];
            row[i] = m[i];
            row[n_nodes] = -1.0;
            p.constrain(row, Relation::Le, 0.0);
        }
        let mut sum_row = vec![1.0; n_nodes + 1];
        sum_row[n_nodes] = 0.0;
        p.constrain(sum_row, Relation::Eq, total);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(close(s.objective, 400.0), "v = {}", s.objective);
        assert!(close(s.x[0], 400.0) && close(s.x[1], 200.0) && close(s.x[2], 100.0));
    }

    #[test]
    fn rejects_non_finite() {
        let mut p = Problem::minimize(vec![f64::NAN]);
        p.constrain(vec![1.0], Relation::Le, 1.0);
        assert_eq!(p.solve(), Err(LpError::NonFinite));
    }

    #[test]
    fn bad_arity_returns_typed_error_instead_of_panicking() {
        let mut p = Problem::minimize(vec![1.0, 2.0]);
        p.constrain(vec![1.0], Relation::Le, 1.0);
        assert_eq!(
            p.solve(),
            Err(LpError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        );
        // Same through the maximize wrapper.
        let mut q = Problem::maximize(vec![1.0, 2.0]);
        q.constrain(vec![1.0, 2.0, 3.0], Relation::Ge, 1.0);
        assert_eq!(
            q.solve(),
            Err(LpError::DimensionMismatch {
                expected: 2,
                got: 3
            })
        );
    }

    #[test]
    fn zero_variable_problem() {
        let p = Problem::minimize(vec![]);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_eq!(s.objective, 0.0);
    }

    // ---- Bland's-rule cycling regressions ----

    #[test]
    fn beale_cycling_example_terminates() {
        // Beale (1955): cycles forever under largest-coefficient pivoting;
        // Bland's rule must terminate at objective -0.05.
        let mut p = Problem::minimize(vec![-0.75, 150.0, -0.02, 6.0]);
        p.constrain(vec![0.25, -60.0, -0.04, 9.0], Relation::Le, 0.0);
        p.constrain(vec![0.5, -90.0, -0.02, 3.0], Relation::Le, 0.0);
        p.constrain(vec![0.0, 0.0, 1.0, 0.0], Relation::Le, 1.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(close(s.objective, -0.05), "objective {}", s.objective);
        assert!(s.iterations < 100, "iterations {}", s.iterations);
    }

    #[test]
    fn kuhn_degenerate_lp_terminates() {
        // A fully degenerate origin vertex (all rhs 0 except the box row):
        // every pivot has ratio 0 until the box constraint binds.
        let mut p = Problem::minimize(vec![-2.0, -3.0, 1.0, 12.0]);
        p.constrain(vec![-2.0, -9.0, 1.0, 9.0], Relation::Le, 0.0);
        p.constrain(vec![1.0 / 3.0, 1.0, -1.0 / 3.0, -2.0], Relation::Le, 0.0);
        p.constrain(vec![1.0, 1.0, 1.0, 1.0], Relation::Le, 10.0);
        let s = p.solve().unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(s.iterations < 100, "iterations {}", s.iterations);
    }

    // ---- Basis / warm-start unit coverage ----

    fn sweep_problem(alpha: f64) -> Problem {
        // A partition-shaped LP whose objective is rescalarized by alpha,
        // mirroring ParetoModeler::solve.
        let slopes = [1.0e-3, 2.5e-3, 4.0e-3];
        let intercepts = [0.5, 0.1, 0.9];
        let greens = [2.0, 5.0, 1.0];
        let total = 5000.0;
        let p_nodes = slopes.len();
        let mut costs = vec![0.0; p_nodes + 1];
        for i in 0..p_nodes {
            costs[i] = (1.0 - alpha) * greens[i] * slopes[i];
        }
        costs[p_nodes] = alpha;
        let mut p = Problem::minimize(costs);
        for i in 0..p_nodes {
            let mut row = vec![0.0; p_nodes + 1];
            row[i] = slopes[i];
            row[p_nodes] = -1.0;
            p.constrain(row, Relation::Le, -intercepts[i]);
        }
        let mut sum_row = vec![1.0; p_nodes + 1];
        sum_row[p_nodes] = 0.0;
        p.constrain(sum_row, Relation::Eq, total);
        p
    }

    #[test]
    fn basis_roundtrips_through_bytes() {
        let solved = sweep_problem(0.7).solve_cold().unwrap();
        let basis = solved.basis.expect("optimal basis");
        let bytes = basis.encode();
        assert_eq!(Basis::decode(&bytes), Some(basis.clone()));
        // Corrupt each region and expect rejection.
        assert_eq!(Basis::decode(&bytes[1..]), None);
        let mut short = bytes.clone();
        short.pop();
        assert_eq!(Basis::decode(&short), None);
        let mut dup = bytes.clone();
        let off = 12;
        let first: [u8; 4] = dup[off..off + 4].try_into().unwrap();
        dup[off + 4..off + 8].copy_from_slice(&first); // duplicate column
        assert_eq!(Basis::decode(&dup), None);
    }

    #[test]
    fn warm_start_is_bit_identical_across_alpha_sweep() {
        let alphas = [0.999, 0.99, 0.9, 0.7, 0.5, 0.2, 0.0];
        let mut basis: Option<Basis> = None;
        let mut warm_hits = 0;
        for &alpha in &alphas {
            let p = sweep_problem(alpha);
            let cold = p.solve_cold().unwrap();
            let warm = p.solve_warm(basis.as_ref()).unwrap();
            assert_eq!(warm.solution.status, cold.solution.status);
            assert_eq!(warm.solution.x, cold.solution.x, "alpha {alpha}");
            assert_eq!(
                warm.solution.objective.to_bits(),
                cold.solution.objective.to_bits(),
                "alpha {alpha}"
            );
            assert_eq!(warm.basis, cold.basis);
            if warm.start == StartKind::Warm {
                warm_hits += 1;
                assert!(
                    warm.solution.iterations <= cold.solution.iterations,
                    "warm should not pivot more than cold at alpha {alpha}"
                );
            }
            basis = warm.basis;
        }
        assert!(warm_hits >= 3, "sweep should accept warm starts, got {warm_hits}");
    }

    #[test]
    fn warm_start_repairs_rhs_perturbation() {
        // Same structure, perturbed rhs (append-shaped change): the warm
        // basis is re-factorized and repaired, and must match cold bits.
        let base = sweep_problem(0.8);
        let basis = base.solve_cold().unwrap().basis.unwrap();
        let mut shifted = sweep_problem(0.8);
        // Rebuild with a larger total (equality rhs changes).
        shifted.rows.last_mut().unwrap().2 = 9000.0;
        let cold = shifted.solve_cold().unwrap();
        let warm = shifted.solve_from(&basis).unwrap();
        assert_eq!(warm.solution.x, cold.solution.x);
        assert_eq!(
            warm.solution.objective.to_bits(),
            cold.solution.objective.to_bits()
        );
        assert_eq!(warm.basis, cold.basis);
        assert_ne!(warm.start, StartKind::Cold);
    }

    #[test]
    fn incompatible_warm_basis_falls_back_to_cold() {
        let other = {
            let mut p = Problem::minimize(vec![1.0, 1.0]);
            p.constrain(vec![1.0, 2.0], Relation::Eq, 4.0);
            p.solve_cold().unwrap().basis.unwrap()
        };
        let p = sweep_problem(0.5);
        let cold = p.solve_cold().unwrap();
        let warm = p.solve_from(&other).unwrap();
        assert_eq!(warm.start, StartKind::WarmFallback);
        assert_eq!(warm.solution.x, cold.solution.x);
        assert_eq!(warm.basis, cold.basis);
    }

    #[test]
    fn infeasible_problem_with_warm_basis_reports_infeasible() {
        let donor = {
            let mut p = Problem::minimize(vec![1.0]);
            p.constrain(vec![1.0], Relation::Le, 1.0);
            p.solve_cold().unwrap().basis.unwrap()
        };
        let mut p = Problem::minimize(vec![1.0]);
        p.constrain(vec![1.0], Relation::Le, 1.0);
        p.constrain(vec![1.0], Relation::Ge, 2.0);
        let warm = p.solve_warm(Some(&donor)).unwrap();
        assert_eq!(warm.solution.status, SolveStatus::Infeasible);
        assert_eq!(warm.basis, None);
    }
}
