//! A small, dependency-free linear-programming solver.
//!
//! The Pareto modeler of Chakrabarti et al. (ICPP 2017, §III-D) scalarizes
//! its two objectives (makespan `v` and total dirty energy) into a single
//! linear program
//!
//! ```text
//! minimize   α·v + (1−α)·Σ_i k_i (m_i x_i + c_i)
//! subject to v ≥ m_i x_i + c_i          (for every node i)
//!            Σ_i x_i = N
//!            x_i ≥ 0
//! ```
//!
//! which is tiny (`p + 1` variables, `p + 1` constraints) but still needs a
//! real LP solver because the energy coefficients `k_i` may be negative
//! (nodes with surplus green energy), which makes greedy waterfilling
//! incorrect in general. This crate implements a dense **two-phase primal
//! simplex** with Bland's anti-cycling rule — exact for problems of this
//! scale and straightforward to audit.
//!
//! # Example
//!
//! ```
//! use pareto_lp::{Problem, Relation, SolveStatus};
//!
//! // minimize -x0 - 2 x1  s.t.  x0 + x1 <= 4,  x1 <= 3,  x >= 0
//! let mut p = Problem::minimize(vec![-1.0, -2.0]);
//! p.constrain(vec![1.0, 1.0], Relation::Le, 4.0);
//! p.constrain(vec![0.0, 1.0], Relation::Le, 3.0);
//! let sol = p.solve().unwrap();
//! assert_eq!(sol.status, SolveStatus::Optimal);
//! assert!((sol.objective - (-7.0)).abs() < 1e-9);
//! assert!((sol.x[0] - 1.0).abs() < 1e-9 && (sol.x[1] - 3.0).abs() < 1e-9);
//! ```

mod simplex;

pub use simplex::{Basis, LpError, MaximizeProblem, Problem, Relation, Solution, Solved, SolveStatus, StartKind};
