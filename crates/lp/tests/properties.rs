//! Property-based tests for the simplex solver.
//!
//! Strategy: generate random LPs with a known feasible point, then check
//! the solver's fundamental guarantees — returned points are feasible, and
//! no randomly sampled feasible point beats the reported optimum.

use proptest::prelude::*;

use pareto_lp::{Problem, Relation, SolveStatus, StartKind};

/// Costs, ≤-rows, and a box bound describing a random LP.
type LpSpec = (Vec<f64>, Vec<(Vec<f64>, f64)>, f64);

/// A random ≤-constrained LP that is always feasible (x = 0 works) and
/// bounded (we add a box constraint on every variable).
fn bounded_lp() -> impl Strategy<Value = LpSpec> {
    (2usize..6).prop_flat_map(|nvars| {
        let costs = proptest::collection::vec(-10.0f64..10.0, nvars);
        let rows = proptest::collection::vec(
            (
                proptest::collection::vec(-5.0f64..5.0, nvars),
                0.5f64..50.0,
            ),
            1..6,
        );
        let box_bound = 1.0f64..100.0;
        (costs, rows, box_bound)
    })
}

fn build(costs: &[f64], rows: &[(Vec<f64>, f64)], bound: f64) -> Problem {
    let mut p = Problem::minimize(costs.to_vec());
    for (coeffs, rhs) in rows {
        p.constrain(coeffs.clone(), Relation::Le, *rhs);
    }
    for i in 0..costs.len() {
        let mut row = vec![0.0; costs.len()];
        row[i] = 1.0;
        p.constrain(row, Relation::Le, bound);
    }
    p
}

fn feasible(x: &[f64], rows: &[(Vec<f64>, f64)], bound: f64) -> bool {
    if x.iter().any(|&v| v < -1e-7 || v > bound + 1e-7) {
        return false;
    }
    rows.iter().all(|(coeffs, rhs)| {
        coeffs.iter().zip(x).map(|(c, v)| c * v).sum::<f64>() <= rhs + 1e-7
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The solver always reports Optimal on these (feasible, bounded) LPs,
    /// and its solution satisfies every constraint.
    #[test]
    fn solution_is_feasible((costs, rows, bound) in bounded_lp()) {
        let sol = build(&costs, &rows, bound).solve().unwrap();
        prop_assert_eq!(sol.status, SolveStatus::Optimal);
        prop_assert!(feasible(&sol.x, &rows, bound), "infeasible point {:?}", sol.x);
        // Objective matches c.x.
        let cx: f64 = costs.iter().zip(&sol.x).map(|(c, v)| c * v).sum();
        prop_assert!((cx - sol.objective).abs() < 1e-6 * (1.0 + cx.abs()));
    }

    /// No sampled feasible point improves on the reported optimum.
    #[test]
    fn no_sampled_point_dominates(
        (costs, rows, bound) in bounded_lp(),
        samples in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 2..6), 32),
    ) {
        let sol = build(&costs, &rows, bound).solve().unwrap();
        prop_assert_eq!(sol.status, SolveStatus::Optimal);
        for s in samples {
            if s.len() != costs.len() {
                continue;
            }
            let x: Vec<f64> = s.iter().map(|v| v * bound).collect();
            if feasible(&x, &rows, bound) {
                let obj: f64 = costs.iter().zip(&x).map(|(c, v)| c * v).sum();
                prop_assert!(
                    obj >= sol.objective - 1e-6 * (1.0 + obj.abs()),
                    "sampled {} beats reported optimum {}", obj, sol.objective
                );
            }
        }
    }

    /// Scaling the objective scales the optimum; the argmin is unchanged
    /// (up to degenerate ties, which we detect via objective equality).
    #[test]
    fn objective_scaling((costs, rows, bound) in bounded_lp(), k in 0.1f64..10.0) {
        let base = build(&costs, &rows, bound).solve().unwrap();
        let scaled_costs: Vec<f64> = costs.iter().map(|c| c * k).collect();
        let scaled = build(&scaled_costs, &rows, bound).solve().unwrap();
        prop_assert!(
            (scaled.objective - k * base.objective).abs()
                < 1e-5 * (1.0 + scaled.objective.abs()),
            "scaled {} vs k*base {}", scaled.objective, k * base.objective
        );
    }

    /// Adding a redundant constraint (implied by an existing one) never
    /// changes the optimum.
    #[test]
    fn redundant_constraint_no_effect((costs, rows, bound) in bounded_lp()) {
        let base = build(&costs, &rows, bound).solve().unwrap();
        let mut p = build(&costs, &rows, bound);
        // x_0 <= 2*bound is implied by the box constraint.
        let mut row = vec![0.0; costs.len()];
        row[0] = 1.0;
        p.constrain(row, Relation::Le, bound * 2.0);
        let with_redundant = p.solve().unwrap();
        prop_assert!(
            (base.objective - with_redundant.objective).abs()
                < 1e-6 * (1.0 + base.objective.abs())
        );
    }

    /// The partitioning LP shape (the one the framework solves) always has
    /// an optimum whose sizes sum to N, for random slopes/intercepts/k.
    #[test]
    fn partitioning_lp_always_solvable(
        slopes in proptest::collection::vec(1e-6f64..1e-2, 2..10),
        intercepts in proptest::collection::vec(0.0f64..5.0, 2..10),
        ks in proptest::collection::vec(-200.0f64..400.0, 2..10),
        alpha in 0.0f64..1.0,
        n in 1usize..100_000,
    ) {
        let p = slopes.len().min(intercepts.len()).min(ks.len());
        let mut costs = vec![0.0; p + 1];
        for i in 0..p {
            costs[i] = (1.0 - alpha) * ks[i] * slopes[i];
        }
        costs[p] = alpha;
        let mut lp = Problem::minimize(costs);
        for i in 0..p {
            let mut row = vec![0.0; p + 1];
            row[i] = slopes[i];
            row[p] = -1.0;
            lp.constrain(row, Relation::Le, -intercepts[i]);
        }
        let mut sum_row = vec![1.0; p + 1];
        sum_row[p] = 0.0;
        lp.constrain(sum_row, Relation::Eq, n as f64);
        let sol = lp.solve().unwrap();
        prop_assert_eq!(sol.status, SolveStatus::Optimal);
        let total: f64 = sol.x[..p].iter().sum();
        prop_assert!((total - n as f64).abs() < 1e-4 * n as f64 + 1e-6,
            "sizes sum {} != {}", total, n);
        prop_assert!(sol.x[..p].iter().all(|&x| x >= -1e-7));
        // v >= f_i(x_i) for all i.
        for i in 0..p {
            let f = slopes[i] * sol.x[i] + intercepts[i];
            prop_assert!(sol.x[p] >= f - 1e-5 * (1.0 + f.abs()));
        }
    }

    /// Warm-started solves are bit-identical to cold solves: seeding any
    /// random feasible LP with its own optimal basis, or with the basis of
    /// an objective-perturbed neighbour, returns exactly the same
    /// `(status, x, objective)` as solving from scratch.
    #[test]
    fn warm_start_is_bit_identical_to_cold(
        (costs, rows, bound) in bounded_lp(),
        perturb in proptest::collection::vec(-1.0f64..1.0, 6),
    ) {
        let cold = build(&costs, &rows, bound).solve_cold().unwrap();
        prop_assert_eq!(cold.solution.status, SolveStatus::Optimal);
        let basis = cold.basis.clone().expect("optimal cold solve has a basis");

        // Re-solving the identical problem from its own basis.
        let warm = build(&costs, &rows, bound).solve_from(&basis).unwrap();
        prop_assert_eq!(warm.solution.status, cold.solution.status);
        prop_assert_eq!(warm.solution.x.clone(), cold.solution.x.clone());
        prop_assert!(warm.solution.objective.to_bits() == cold.solution.objective.to_bits(),
            "objective bits differ: warm {} vs cold {}",
            warm.solution.objective, cold.solution.objective);

        // Perturb the objective and seed with the unperturbed basis: still
        // bit-identical to that perturbed problem's cold solve.
        let shifted: Vec<f64> = costs
            .iter()
            .enumerate()
            .map(|(i, c)| c + perturb.get(i).copied().unwrap_or(0.0))
            .collect();
        let cold2 = build(&shifted, &rows, bound).solve_cold().unwrap();
        let warm2 = build(&shifted, &rows, bound).solve_from(&basis).unwrap();
        prop_assert_eq!(warm2.solution.status, cold2.solution.status);
        prop_assert_eq!(warm2.solution.x.clone(), cold2.solution.x.clone());
        prop_assert!(warm2.solution.objective.to_bits() == cold2.solution.objective.to_bits(),
            "perturbed objective bits differ: warm {} vs cold {}",
            warm2.solution.objective, cold2.solution.objective);
        prop_assert!(matches!(warm2.start, StartKind::Warm | StartKind::WarmFallback));
    }

    /// The partition LP's α sweep — the framework's hot path — stays
    /// bit-identical under basis chaining across the whole sweep.
    #[test]
    fn partition_sweep_warm_chain_matches_cold(
        slopes in proptest::collection::vec(1e-6f64..1e-2, 2..8),
        intercepts in proptest::collection::vec(0.0f64..5.0, 2..8),
        ks in proptest::collection::vec(-200.0f64..400.0, 2..8),
        n in 1usize..50_000,
    ) {
        let p = slopes.len().min(intercepts.len()).min(ks.len());
        let build_partition = |alpha: f64| {
            let mut costs = vec![0.0; p + 1];
            for i in 0..p {
                costs[i] = (1.0 - alpha) * ks[i] * slopes[i];
            }
            costs[p] = alpha;
            let mut lp = Problem::minimize(costs);
            for i in 0..p {
                let mut row = vec![0.0; p + 1];
                row[i] = slopes[i];
                row[p] = -1.0;
                lp.constrain(row, Relation::Le, -intercepts[i]);
            }
            let mut sum_row = vec![1.0; p + 1];
            sum_row[p] = 0.0;
            lp.constrain(sum_row, Relation::Eq, n as f64);
            lp
        };
        let mut basis = None;
        for step in 0..=4 {
            let alpha = step as f64 / 4.0;
            let cold = build_partition(alpha).solve_cold().unwrap();
            let warm = build_partition(alpha).solve_warm(basis.as_ref()).unwrap();
            prop_assert_eq!(warm.solution.status, cold.solution.status);
            prop_assert_eq!(warm.solution.x.clone(), cold.solution.x.clone());
            prop_assert!(
                warm.solution.objective.to_bits() == cold.solution.objective.to_bits()
            );
            basis = warm.basis;
        }
    }
}
