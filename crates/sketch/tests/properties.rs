//! Property-based tests for MinHash sketching.

use proptest::prelude::*;

use pareto_datagen::ItemSet;
use pareto_sketch::{LinearPermutation, MinHasher};

proptest! {
    /// Permutations are injective on any sample of distinct inputs below
    /// the prime modulus.
    #[test]
    fn permutation_injective(seed in any::<u64>(), xs in proptest::collection::hash_set(0u64..(1u64<<61) - 1, 2..256)) {
        let p = LinearPermutation::from_seed(seed);
        let mut outs: Vec<u64> = xs.iter().map(|&x| p.apply(x)).collect();
        outs.sort_unstable();
        let len = outs.len();
        outs.dedup();
        prop_assert_eq!(outs.len(), len);
    }

    /// Sketching is deterministic and permutation-order independent of the
    /// input item order.
    #[test]
    fn sketch_order_independent(
        mut items in proptest::collection::vec(any::<u64>(), 1..128),
        seed in any::<u64>(),
    ) {
        let h = MinHasher::new(32, seed);
        let s1 = h.sketch(&ItemSet::from_items(items.clone()));
        items.reverse();
        items.push(items[0]); // duplicate — sets dedupe
        let s2 = h.sketch(&ItemSet::from_items(items));
        prop_assert_eq!(s1, s2);
    }

    /// Identical sets always estimate similarity 1; the estimate is always
    /// within [0, 1].
    #[test]
    fn estimate_bounds(
        a in proptest::collection::vec(0u64..10_000, 1..64),
        b in proptest::collection::vec(0u64..10_000, 1..64),
        seed in any::<u64>(),
    ) {
        let h = MinHasher::new(64, seed);
        let sa = h.sketch(&ItemSet::from_items(a));
        let sb = h.sketch(&ItemSet::from_items(b));
        let e = sa.estimate_jaccard(&sb);
        prop_assert!((0.0..=1.0).contains(&e));
        prop_assert_eq!(sa.estimate_jaccard(&sa), 1.0);
        // Symmetry.
        prop_assert_eq!(e, sb.estimate_jaccard(&sa));
    }

    /// A subset's sketch coordinates are pointwise >= the superset's
    /// (adding elements can only lower minima).
    #[test]
    fn superset_lowers_minima(
        base in proptest::collection::vec(0u64..10_000, 1..64),
        extra in proptest::collection::vec(0u64..10_000, 1..64),
        seed in any::<u64>(),
    ) {
        let h = MinHasher::new(48, seed);
        let small = ItemSet::from_items(base.clone());
        let mut all = base;
        all.extend(extra);
        let big = ItemSet::from_items(all);
        let ss = h.sketch(&small);
        let sb = h.sketch(&big);
        for (b, s) in sb.values().iter().zip(ss.values()) {
            prop_assert!(b <= s, "superset must have <= minima");
        }
    }

    /// The estimator concentrates: for sets with known 50% overlap, a
    /// 512-hash estimate is within 0.2 of truth (Chernoff gives ~3e-6
    /// failure odds per case; the seed is fixed to keep CI deterministic).
    #[test]
    fn estimate_concentrates(offset in 1u64..1000) {
        let h = MinHasher::new(512, 12345);
        let a = ItemSet::from_items((0..100).map(|i| i * 7919).collect());
        let b = ItemSet::from_items((50..150).map(|i| (i % 100) * 7919 + (i / 100) * offset * 13).collect());
        let exact = a.jaccard(&b);
        let est = h.sketch(&a).estimate_jaccard(&h.sketch(&b));
        prop_assert!((est - exact).abs() < 0.2, "exact {} est {}", exact, est);
    }
}
