//! Min-wise independent *linear* permutations (Bohman–Cooper–Frieze 2000).
//!
//! `π(x) = (a·x + b) mod p` with `p` prime and `a ∈ [1, p)`, `b ∈ [0, p)`
//! is a bijection of `Z_p`. A family of such maps is approximately min-wise
//! independent — the cheap stand-in for truly random permutations the paper
//! adopts because "the cardinality of the universal set can be extremely
//! large" (§III-C).
//!
//! We use the Mersenne prime `p = 2^61 − 1`, which admits a fast reduction
//! and leaves `u64::MAX` free as the empty-set sentinel.

/// The Mersenne prime `2^61 − 1`.
pub const PRIME: u64 = (1u64 << 61) - 1;

/// One linear permutation `x ↦ (a·x + b) mod p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearPermutation {
    a: u64,
    b: u64,
}

impl LinearPermutation {
    /// Construct with explicit coefficients.
    ///
    /// # Panics
    /// Panics unless `1 ≤ a < p` and `b < p` (otherwise the map would not
    /// be a bijection of `Z_p`).
    pub fn new(a: u64, b: u64) -> Self {
        assert!((1..PRIME).contains(&a), "a must be in [1, p)");
        assert!(b < PRIME, "b must be in [0, p)");
        LinearPermutation { a, b }
    }

    /// Derive coefficients from a seed (SplitMix64 expansion).
    pub fn from_seed(seed: u64) -> Self {
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let a = next() % (PRIME - 1) + 1;
        let b = next() % PRIME;
        LinearPermutation { a, b }
    }

    /// Apply the permutation. Inputs ≥ `p` are first reduced mod `p`
    /// (a 64-bit universe folds onto `Z_p`; the fold is 2-to-1 for a
    /// negligible fraction of inputs and does not affect sketch quality).
    #[inline]
    pub fn apply(&self, x: u64) -> u64 {
        mulmod(self.a, x % PRIME).wrapping_add(self.b) % PRIME
    }

    /// The multiplier coefficient.
    pub fn a(&self) -> u64 {
        self.a
    }

    /// The offset coefficient.
    pub fn b(&self) -> u64 {
        self.b
    }
}

/// `(a · b) mod p` for `p = 2^61 − 1`, via 128-bit multiply and Mersenne
/// folding.
#[inline]
fn mulmod(a: u64, b: u64) -> u64 {
    let prod = a as u128 * b as u128;
    // Fold the 122-bit product: p = 2^61 - 1 means 2^61 ≡ 1 (mod p).
    let lo = (prod & ((1u128 << 61) - 1)) as u64;
    let hi = (prod >> 61) as u64;
    let mut r = lo.wrapping_add(hi % PRIME);
    if r >= PRIME {
        r -= PRIME;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mulmod_matches_u128_reference() {
        let cases = [
            (0u64, 0u64),
            (1, PRIME - 1),
            (PRIME - 1, PRIME - 1),
            (123_456_789, 987_654_321),
            (1u64 << 60, (1u64 << 60) + 12345),
        ];
        for (a, b) in cases {
            let expected = ((a as u128 * b as u128) % PRIME as u128) as u64;
            assert_eq!(mulmod(a % PRIME, b % PRIME), expected, "a={a} b={b}");
        }
    }

    #[test]
    fn apply_is_injective_on_sample() {
        let p = LinearPermutation::from_seed(7);
        let mut outs: Vec<u64> = (0..10_000u64).map(|x| p.apply(x)).collect();
        outs.sort_unstable();
        let len = outs.len();
        outs.dedup();
        assert_eq!(outs.len(), len, "collision found — not a permutation");
    }

    #[test]
    fn outputs_in_field_range() {
        let p = LinearPermutation::from_seed(99);
        for x in [0u64, 1, PRIME - 1, PRIME, u64::MAX] {
            assert!(p.apply(x) < PRIME);
        }
    }

    #[test]
    fn from_seed_deterministic() {
        assert_eq!(LinearPermutation::from_seed(5), LinearPermutation::from_seed(5));
        assert_ne!(LinearPermutation::from_seed(5), LinearPermutation::from_seed(6));
    }

    #[test]
    #[should_panic(expected = "a must be")]
    fn new_rejects_zero_multiplier() {
        let _ = LinearPermutation::new(0, 0);
    }

    #[test]
    fn identity_like_permutation() {
        // a=1, b=0 is the identity on Z_p.
        let p = LinearPermutation::new(1, 0);
        for x in [0u64, 5, 1000, PRIME - 1] {
            assert_eq!(p.apply(x), x);
        }
    }

    #[test]
    fn min_distribution_is_roughly_uniform() {
        // The argmin of a min-wise independent family over a fixed set
        // should be near-uniform across the set's elements.
        let set: Vec<u64> = (0..16).map(|i| i * 7919 + 3).collect();
        let mut argmin_counts = vec![0usize; set.len()];
        for seed in 0..4000u64 {
            let p = LinearPermutation::from_seed(seed);
            let (mut best_i, mut best_v) = (0usize, u64::MAX);
            for (i, &x) in set.iter().enumerate() {
                let v = p.apply(x);
                if v < best_v {
                    best_v = v;
                    best_i = i;
                }
            }
            argmin_counts[best_i] += 1;
        }
        // Linear permutations are only *approximately* min-wise independent
        // (Bohman–Cooper–Frieze bound the bias, they don't eliminate it), so
        // the tolerance here is deliberately loose: every element must get a
        // non-trivial share of argmins, within 2.5x of uniform.
        let expected = 4000.0 / set.len() as f64;
        for &c in &argmin_counts {
            assert!(
                (c as f64) > expected * 0.4 && (c as f64) < expected * 2.5,
                "argmin counts far from uniform: {argmin_counts:?}"
            );
        }
    }
}
