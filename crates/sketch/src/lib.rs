//! MinHash sketching (paper §III-C step 2).
//!
//! High-dimensional item sets are projected to short **sketches** whose
//! coordinate-wise collision probability equals the sets' Jaccard
//! similarity (Broder et al., STOC 1998). Because a true random permutation
//! of a `u64` universe is unaffordable, the paper — citing Bohman, Cooper &
//! Frieze (2000) — uses **min-wise independent linear permutations**
//! `π(x) = (a·x + b) mod p` over a prime field, which approximate min-wise
//! independence well in practice. That is exactly what this crate
//! implements.
//!
//! A [`Signature`] is also the input record format of the compositeKModes
//! stratifier: each of the `k` hash coordinates is one categorical
//! attribute.
//!
//! ```
//! use pareto_datagen::ItemSet;
//! use pareto_sketch::MinHasher;
//!
//! let hasher = MinHasher::new(128, 42);
//! let a = ItemSet::from_items((0..100).collect());
//! let b = ItemSet::from_items((50..150).collect());
//! let (sa, sb) = (hasher.sketch(&a), hasher.sketch(&b));
//! let est = sa.estimate_jaccard(&sb);
//! let exact = a.jaccard(&b); // 50 / 150
//! assert!((est - exact).abs() < 0.15);
//! ```

mod permutation;

pub use permutation::LinearPermutation;

use pareto_datagen::ItemSet;

/// A MinHash signature: the per-permutation minima of one item set.
///
/// Signatures produced by the same [`MinHasher`] are comparable; mixing
/// hashers yields garbage (no type-level guard — the stratifier owns one
/// hasher for a whole dataset).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    values: Vec<u64>,
}

impl Signature {
    /// Number of hash functions (sketch dimensionality `k`).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the signature has zero coordinates.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Coordinate values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Estimate Jaccard similarity as the fraction of matching coordinates.
    ///
    /// # Panics
    /// Panics if the signatures have different lengths.
    pub fn estimate_jaccard(&self, other: &Signature) -> f64 {
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "signatures from different hashers"
        );
        if self.values.is_empty() {
            return 1.0;
        }
        let matches = self
            .values
            .iter()
            .zip(&other.values)
            .filter(|(a, b)| a == b)
            .count();
        matches as f64 / self.values.len() as f64
    }
}

/// A family of `k` independent linear permutations.
#[derive(Debug, Clone)]
pub struct MinHasher {
    perms: Vec<LinearPermutation>,
}

impl MinHasher {
    /// Create `k` permutations seeded deterministically from `seed`.
    pub fn new(k: usize, seed: u64) -> Self {
        let mut seq = SeedSeq::new(seed);
        let perms = (0..k)
            .map(|_| LinearPermutation::from_seed(seq.next()))
            .collect();
        MinHasher { perms }
    }

    /// Sketch dimensionality `k`.
    pub fn num_hashes(&self) -> usize {
        self.perms.len()
    }

    /// Sketch an item set: coordinate `j` is `min_{x∈S} π_j(x)`.
    ///
    /// The empty set sketches to all-`u64::MAX` (a reserved value no
    /// permutation output attains, since outputs are `< p < u64::MAX`).
    pub fn sketch(&self, set: &ItemSet) -> Signature {
        let mut values = vec![u64::MAX; self.perms.len()];
        for x in set.iter() {
            for (v, perm) in values.iter_mut().zip(&self.perms) {
                let h = perm.apply(x);
                if h < *v {
                    *v = h;
                }
            }
        }
        Signature { values }
    }

    /// Sketch many sets (convenience for dataset-level sketching).
    pub fn sketch_all<'a, I>(&self, sets: I) -> Vec<Signature>
    where
        I: IntoIterator<Item = &'a ItemSet>,
    {
        sets.into_iter().map(|s| self.sketch(s)).collect()
    }

    /// Sketch a batch of sets, sharding the work across up to `threads`
    /// scoped worker threads.
    ///
    /// Sketching consumes no RNG state at sketch time (the permutations
    /// are fixed at construction), so the only determinism requirement is
    /// ordering: shards are contiguous index ranges and their outputs are
    /// concatenated in index order, making the result bit-identical to
    /// [`MinHasher::sketch_all`] at any thread count.
    pub fn sketch_batch_par(&self, sets: &[&ItemSet], threads: usize) -> Vec<Signature> {
        let threads = threads.max(1).min(sets.len().max(1));
        if threads <= 1 {
            return sets.iter().map(|s| self.sketch(s)).collect();
        }
        let chunk = sets.len().div_ceil(threads);
        let mut out = Vec::with_capacity(sets.len());
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = sets
                .chunks(chunk)
                .map(|shard| {
                    scope.spawn(move |_| {
                        shard.iter().map(|s| self.sketch(s)).collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                out.extend(handle.join().expect("sketch worker panicked"));
            }
        })
        .expect("sketch scope panicked");
        out
    }

    /// Extend an existing batch of signatures with sketches of appended
    /// sets. Sketching is a pure per-set function (no cross-record state),
    /// so `prefix ++ sketch(new_sets)` is bit-identical to sketching the
    /// whole concatenated batch from scratch — the property the
    /// incremental planner's append path relies on.
    pub fn sketch_extend(
        &self,
        prefix: &[Signature],
        new_sets: &[&ItemSet],
        threads: usize,
    ) -> Vec<Signature> {
        let mut out = Vec::with_capacity(prefix.len() + new_sets.len());
        out.extend_from_slice(prefix);
        out.extend(self.sketch_batch_par(new_sets, threads));
        out
    }
}

/// Minimal internal seed splitter (kept local to avoid a dependency cycle
/// with `pareto-stats`; same SplitMix64 construction).
struct SeedSeq {
    base: u64,
    ctr: u64,
}

impl SeedSeq {
    fn new(base: u64) -> Self {
        SeedSeq { base, ctr: 0 }
    }
    fn next(&mut self) -> u64 {
        let mut z = self
            .base
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.ctr)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.ctr += 1;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_identical_signatures() {
        let h = MinHasher::new(64, 1);
        let s = ItemSet::from_items(vec![3, 9, 27, 81]);
        assert_eq!(h.sketch(&s), h.sketch(&s));
        assert_eq!(h.sketch(&s).estimate_jaccard(&h.sketch(&s)), 1.0);
    }

    #[test]
    fn disjoint_sets_low_estimate() {
        let h = MinHasher::new(128, 2);
        let a = ItemSet::from_items((0..200).collect());
        let b = ItemSet::from_items((10_000..10_200).collect());
        assert!(h.sketch(&a).estimate_jaccard(&h.sketch(&b)) < 0.1);
    }

    #[test]
    fn estimate_tracks_exact_jaccard() {
        let h = MinHasher::new(256, 3);
        for (lo, hi) in [(0u64, 100u64), (25, 125), (50, 150), (90, 190)] {
            let a = ItemSet::from_items((0..100).collect());
            let b = ItemSet::from_items((lo..hi).collect());
            let exact = a.jaccard(&b);
            let est = h.sketch(&a).estimate_jaccard(&h.sketch(&b));
            assert!(
                (est - exact).abs() < 0.12,
                "exact {exact}, est {est} for range {lo}..{hi}"
            );
        }
    }

    #[test]
    fn empty_set_sketch_is_sentinel() {
        let h = MinHasher::new(8, 4);
        let sig = h.sketch(&ItemSet::empty());
        assert!(sig.values().iter().all(|&v| v == u64::MAX));
        // Two empty sets are identical.
        assert_eq!(sig.estimate_jaccard(&h.sketch(&ItemSet::empty())), 1.0);
    }

    #[test]
    fn different_seeds_differ() {
        let s = ItemSet::from_items(vec![1, 2, 3]);
        let a = MinHasher::new(16, 1).sketch(&s);
        let b = MinHasher::new(16, 2).sketch(&s);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "different hashers")]
    fn mismatched_lengths_panic() {
        let s = ItemSet::from_items(vec![1]);
        let a = MinHasher::new(4, 1).sketch(&s);
        let b = MinHasher::new(8, 1).sketch(&s);
        let _ = a.estimate_jaccard(&b);
    }

    #[test]
    fn parallel_batch_matches_serial() {
        let h = MinHasher::new(32, 13);
        let sets: Vec<ItemSet> = (0..37)
            .map(|i| ItemSet::from_items((i..i + 20).collect()))
            .collect();
        let refs: Vec<&ItemSet> = sets.iter().collect();
        let serial = h.sketch_batch_par(&refs, 1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(serial, h.sketch_batch_par(&refs, threads));
        }
        // Degenerate inputs.
        assert!(h.sketch_batch_par(&[], 4).is_empty());
        assert_eq!(h.sketch_batch_par(&refs[..1], 4), serial[..1].to_vec());
    }

    #[test]
    fn sketch_all_matches_individual() {
        let h = MinHasher::new(8, 9);
        let sets = [ItemSet::from_items(vec![1, 2]),
            ItemSet::from_items(vec![2, 3])];
        let all = h.sketch_all(sets.iter());
        assert_eq!(all[0], h.sketch(&sets[0]));
        assert_eq!(all[1], h.sketch(&sets[1]));
    }

    #[test]
    fn subset_similarity_ordering_preserved() {
        // est(a, a-with-1-change) > est(a, a-with-many-changes).
        let h = MinHasher::new(256, 5);
        let base: Vec<u64> = (0..64).collect();
        let a = ItemSet::from_items(base.clone());
        let mut one = base.clone();
        one[0] = 1000;
        let mut many = base.clone();
        for (i, v) in many.iter_mut().enumerate().take(32) {
            *v = 2000 + i as u64;
        }
        let sa = h.sketch(&a);
        let e1 = sa.estimate_jaccard(&h.sketch(&ItemSet::from_items(one)));
        let e2 = sa.estimate_jaccard(&h.sketch(&ItemSet::from_items(many)));
        assert!(e1 > e2);
    }
}
