//! Property-based tests for stratification.

use proptest::prelude::*;

use pareto_datagen::generators::{gen_text, TextGenConfig};
use pareto_stratify::{
    cluster_purity, normalized_mutual_information, CompositeKModes, KModesConfig, Stratifier,
    StratifierConfig,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Stratification always yields a valid assignment: one stratum per
    /// record, strata jointly cover the dataset, ids in range.
    #[test]
    fn assignment_is_total(
        seed in any::<u64>(),
        num_docs in 30usize..200,
        num_strata in 1usize..12,
        l in 1usize..6,
    ) {
        let ds = gen_text(
            &TextGenConfig {
                num_docs,
                num_topics: 4,
                vocab_size: 2000,
                min_len: 8,
                max_len: 30,
                topic_purity: 0.85,
                topic_skew: 0.6,
                word_skew: 0.9,
            },
            seed,
        );
        let st = Stratifier::new(StratifierConfig {
            num_strata,
            l,
            sketch_size: 32,
            max_iters: 8,
            seed,
            threads: 1,
        })
        .stratify(&ds);
        prop_assert_eq!(st.assignments.len(), num_docs);
        prop_assert!(st.assignments.iter().all(|&c| (c as usize) < st.num_strata()));
        prop_assert_eq!(st.sizes().iter().sum::<usize>(), num_docs);
        prop_assert!((0.0..=1.0).contains(&st.zero_match_rate));
        // stratum_order is a permutation.
        let mut order = st.stratum_order();
        order.sort_unstable();
        prop_assert_eq!(order, (0..num_docs).collect::<Vec<_>>());
        // Membership lists agree with assignments.
        for (stratum, members) in st.strata.iter().enumerate() {
            for &m in members {
                prop_assert_eq!(st.assignments[m] as usize, stratum);
            }
        }
    }

    /// kModes iterations never exceed the cap, and the objective is
    /// deterministic per seed — including across thread counts (the
    /// parallel assignment/update shards must not change the result).
    #[test]
    fn kmodes_bounded_and_deterministic(
        seed in any::<u64>(),
        num_docs in 20usize..80,
        k in 1usize..6,
        threads in 1usize..6,
    ) {
        let ds = gen_text(
            &TextGenConfig {
                num_docs,
                num_topics: 3,
                vocab_size: 1000,
                min_len: 8,
                max_len: 20,
                topic_purity: 0.9,
                topic_skew: 0.5,
                word_skew: 0.8,
            },
            seed,
        );
        let hasher = pareto_sketch::MinHasher::new(24, seed);
        let sigs: Vec<_> = ds.items.iter().map(|i| hasher.sketch(&i.items)).collect();
        let cfg = KModesConfig {
            num_clusters: k,
            l: 2,
            max_iters: 7,
            seed,
            threads: 1,
        };
        let a = CompositeKModes::new(cfg.clone()).run(&sigs);
        let b = CompositeKModes::new(KModesConfig { threads, ..cfg }).run(&sigs);
        prop_assert!(a.iterations <= 7);
        prop_assert_eq!(a.assignments, b.assignments);
        prop_assert_eq!(a.total_score, b.total_score);
    }
}

proptest! {
    /// Purity and NMI are within [0, 1] and equal 1 for identical
    /// labelings, for arbitrary label vectors.
    #[test]
    fn quality_metrics_bounds(labels in proptest::collection::vec(0u32..6, 1..100),
                              other in proptest::collection::vec(0u32..6, 1..100)) {
        let n = labels.len().min(other.len());
        let a = &labels[..n];
        let b = &other[..n];
        let p = cluster_purity(a, b);
        let nmi = normalized_mutual_information(a, b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&nmi));
        prop_assert_eq!(cluster_purity(a, a), 1.0);
        prop_assert!((normalized_mutual_information(a, a) - 1.0).abs() < 1e-9
            || a.iter().all(|&x| x == a[0]));
    }
}
