//! Data stratification via compositeKModes sketch clustering (§III-C).
//!
//! The stratifier groups a dataset's records into **strata** of similar
//! items by clustering their MinHash [`Signature`]s. Plain kModes fails
//! here: a sketch has few coordinates drawn from an enormous universe, so a
//! point's chance of matching a single-value-per-attribute center is tiny
//! (the *zero-match* problem, paper §III-C step 3). The compositeKModes
//! variant of Wang et al. (ICDE 2013) keeps the **`L` most frequent values
//! per attribute** in each center, shrinking the zero-match probability
//! while retaining kModes' convergence guarantee.
//!
//! The resulting [`Stratification`] drives both partitioning layouts
//! (representative and similar-together, §III-E) and the representative
//! samples handed to the progressive-sampling heterogeneity estimator.

pub mod kmodes;
pub mod quality;

pub use kmodes::{CompositeKModes, KModesConfig, KModesResult};
pub use quality::{cluster_purity, normalized_mutual_information};

use pareto_datagen::Dataset;
use pareto_sketch::{MinHasher, Signature};

/// End-to-end stratifier configuration.
#[derive(Debug, Clone)]
pub struct StratifierConfig {
    /// Sketch dimensionality `k` (number of MinHash functions).
    pub sketch_size: usize,
    /// Number of strata to produce.
    pub num_strata: usize,
    /// Center list length `L` (values kept per attribute; `L > 1` is the
    /// "composite" part).
    pub l: usize,
    /// Iteration cap for the clustering loop.
    pub max_iters: usize,
    /// Seed for sketching and center initialization.
    pub seed: u64,
    /// Worker threads for sketching and clustering (1 = serial). The
    /// output is bit-identical at any thread count.
    pub threads: usize,
}

impl Default for StratifierConfig {
    fn default() -> Self {
        StratifierConfig {
            sketch_size: 64,
            num_strata: 16,
            l: 4,
            max_iters: 20,
            seed: 0xDA7A,
            threads: 1,
        }
    }
}

/// The output of stratification.
#[derive(Debug, Clone)]
pub struct Stratification {
    /// `assignments[i]` is the stratum of record `i`.
    pub assignments: Vec<u32>,
    /// Member indices per stratum (some strata may be empty).
    pub strata: Vec<Vec<usize>>,
    /// Fraction of records whose best center match was zero attributes
    /// (they were assigned arbitrarily) — the §III-C failure mode `L`
    /// exists to suppress.
    pub zero_match_rate: f64,
    /// Iterations until convergence (or the cap).
    pub iterations: usize,
}

impl Stratification {
    /// Number of strata (including empty ones).
    pub fn num_strata(&self) -> usize {
        self.strata.len()
    }

    /// Stratum sizes.
    pub fn sizes(&self) -> Vec<usize> {
        self.strata.iter().map(Vec::len).collect()
    }

    /// Indices ordered by stratum id (stratum 0's members, then stratum
    /// 1's, …) — the "similar elements together" ordering the partitioner
    /// chunks (§III-E).
    pub fn stratum_order(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.assignments.len());
        for members in &self.strata {
            out.extend_from_slice(members);
        }
        out
    }
}

/// Sketch a dataset and cluster the sketches into strata.
pub struct Stratifier {
    cfg: StratifierConfig,
}

impl Stratifier {
    /// Create a stratifier with the given configuration.
    pub fn new(cfg: StratifierConfig) -> Self {
        Stratifier { cfg }
    }

    /// Configuration accessor.
    pub fn config(&self) -> &StratifierConfig {
        &self.cfg
    }

    /// Run sketching + compositeKModes over a dataset.
    pub fn stratify(&self, dataset: &Dataset) -> Stratification {
        let signatures = self.sketch(dataset);
        self.stratify_signatures(&signatures)
    }

    /// Sketch a dataset's item sets (the first pipeline stage), sharded
    /// across `cfg.threads` workers. Exposed separately so callers can
    /// time sketching and clustering independently.
    pub fn sketch(&self, dataset: &Dataset) -> Vec<Signature> {
        let hasher = MinHasher::new(self.cfg.sketch_size, self.cfg.seed);
        let sets: Vec<&pareto_datagen::ItemSet> =
            dataset.items.iter().map(|it| &it.items).collect();
        hasher.sketch_batch_par(&sets, self.cfg.threads)
    }

    /// Sketch only the records of `dataset` beyond `prefix` and return the
    /// full signature vector. Bit-identical to [`Stratifier::sketch`] on
    /// the whole dataset whenever `prefix` equals the sketch of the
    /// dataset's first `prefix.len()` records under the same config
    /// (MinHash is a pure per-record function), which is what lets the
    /// incremental planner reuse a cached sketch after a dataset append.
    ///
    /// # Panics
    /// Panics if `prefix` is longer than the dataset.
    pub fn sketch_append(&self, dataset: &Dataset, prefix: &[Signature]) -> Vec<Signature> {
        assert!(
            prefix.len() <= dataset.len(),
            "prefix longer than the dataset"
        );
        let hasher = MinHasher::new(self.cfg.sketch_size, self.cfg.seed);
        let new_sets: Vec<&pareto_datagen::ItemSet> = dataset.items[prefix.len()..]
            .iter()
            .map(|it| &it.items)
            .collect();
        hasher.sketch_extend(prefix, &new_sets, self.cfg.threads)
    }

    /// Cluster pre-computed signatures (useful when the caller also needs
    /// the sketches, e.g. for diagnostics).
    pub fn stratify_signatures(&self, signatures: &[Signature]) -> Stratification {
        let kcfg = KModesConfig {
            num_clusters: self.cfg.num_strata,
            l: self.cfg.l,
            max_iters: self.cfg.max_iters,
            seed: self.cfg.seed ^ 0x005E_EDC1u64,
            threads: self.cfg.threads,
        };
        let result = CompositeKModes::new(kcfg).run(signatures);
        let mut strata = vec![Vec::new(); result.num_clusters];
        for (i, &c) in result.assignments.iter().enumerate() {
            strata[c as usize].push(i);
        }
        Stratification {
            assignments: result.assignments,
            strata,
            zero_match_rate: result.zero_match_rate,
            iterations: result.iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pareto_datagen::generators::{gen_text, TextGenConfig};

    fn small_corpus(seed: u64) -> Dataset {
        gen_text(
            &TextGenConfig {
                num_docs: 300,
                num_topics: 5,
                vocab_size: 5_000,
                min_len: 20,
                max_len: 60,
                topic_purity: 0.9,
                topic_skew: 0.5,
                word_skew: 0.8,
            },
            seed,
        )
    }

    #[test]
    fn stratification_covers_all_records() {
        let ds = small_corpus(1);
        let st = Stratifier::new(StratifierConfig {
            num_strata: 5,
            ..StratifierConfig::default()
        })
        .stratify(&ds);
        assert_eq!(st.assignments.len(), ds.len());
        assert_eq!(st.sizes().iter().sum::<usize>(), ds.len());
        let order = st.stratum_order();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..ds.len()).collect::<Vec<_>>());
    }

    #[test]
    fn stratification_is_deterministic() {
        let ds = small_corpus(2);
        let cfg = StratifierConfig {
            num_strata: 6,
            ..StratifierConfig::default()
        };
        let a = Stratifier::new(cfg.clone()).stratify(&ds);
        let b = Stratifier::new(cfg).stratify(&ds);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn strata_align_with_planted_topics() {
        let ds = small_corpus(3);
        let st = Stratifier::new(StratifierConfig {
            num_strata: 5,
            sketch_size: 96,
            ..StratifierConfig::default()
        })
        .stratify(&ds);
        let truth: Vec<u32> = ds.items.iter().map(|i| i.truth_cluster.unwrap()).collect();
        let purity = quality::cluster_purity(&st.assignments, &truth);
        assert!(
            purity > 0.7,
            "stratifier should largely recover planted topics, purity = {purity}"
        );
    }

    #[test]
    fn composite_centers_reduce_zero_match() {
        let ds = small_corpus(4);
        let run = |l: usize| {
            Stratifier::new(StratifierConfig {
                num_strata: 5,
                l,
                ..StratifierConfig::default()
            })
            .stratify(&ds)
            .zero_match_rate
        };
        let z1 = run(1);
        let z8 = run(8);
        assert!(
            z8 <= z1 + 1e-9,
            "larger L must not increase zero-match rate (L=1: {z1}, L=8: {z8})"
        );
    }
}
