//! External cluster-quality metrics.
//!
//! The framework never sees ground truth; these metrics exist so tests and
//! the ablation benches can score the stratifier against the planted
//! clusters of the synthetic generators.

use std::collections::HashMap;

/// Cluster purity: for each predicted cluster take its majority true label;
/// purity is the fraction of points covered by their cluster's majority.
/// 1.0 means every cluster is label-pure.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn cluster_purity(predicted: &[u32], truth: &[u32]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    if predicted.is_empty() {
        return 1.0;
    }
    let mut per_cluster: HashMap<u32, HashMap<u32, usize>> = HashMap::new();
    for (&p, &t) in predicted.iter().zip(truth) {
        *per_cluster.entry(p).or_default().entry(t).or_insert(0) += 1;
    }
    let majority_sum: usize = per_cluster
        .values()
        .map(|counts| counts.values().copied().max().unwrap_or(0))
        .sum();
    majority_sum as f64 / predicted.len() as f64
}

/// Normalized mutual information between two labelings, in `[0, 1]`
/// (1 = identical partitions up to renaming). Uses the arithmetic-mean
/// normalization `NMI = 2·I(P;T) / (H(P) + H(T))`; if either labeling has
/// zero entropy, returns 1 if the other does too, else 0.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn normalized_mutual_information(predicted: &[u32], truth: &[u32]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    let n = predicted.len();
    if n == 0 {
        return 1.0;
    }
    let mut joint: HashMap<(u32, u32), usize> = HashMap::new();
    let mut pm: HashMap<u32, usize> = HashMap::new();
    let mut tm: HashMap<u32, usize> = HashMap::new();
    for (&p, &t) in predicted.iter().zip(truth) {
        *joint.entry((p, t)).or_insert(0) += 1;
        *pm.entry(p).or_insert(0) += 1;
        *tm.entry(t).or_insert(0) += 1;
    }
    let nf = n as f64;
    let entropy = |m: &HashMap<u32, usize>| -> f64 {
        -m.values()
            .map(|&c| {
                let p = c as f64 / nf;
                p * p.log2()
            })
            .sum::<f64>()
    };
    let hp = entropy(&pm);
    let ht = entropy(&tm);
    if hp <= 0.0 || ht <= 0.0 {
        return if hp <= 0.0 && ht <= 0.0 { 1.0 } else { 0.0 };
    }
    let mut mi = 0.0;
    for (&(p, t), &c) in &joint {
        let pxy = c as f64 / nf;
        let px = pm[&p] as f64 / nf;
        let py = tm[&t] as f64 / nf;
        mi += pxy * (pxy / (px * py)).log2();
    }
    (2.0 * mi / (hp + ht)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purity_perfect_clustering() {
        let truth = [0, 0, 1, 1, 2, 2];
        let pred = [5, 5, 9, 9, 1, 1]; // same partition, renamed
        assert_eq!(cluster_purity(&pred, &truth), 1.0);
        assert!((normalized_mutual_information(&pred, &truth) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn purity_of_merged_clusters() {
        // One predicted cluster holding two truth labels: purity = 4/6.
        let truth = [0, 0, 1, 1, 2, 2];
        let pred = [0, 0, 0, 0, 1, 1];
        assert!((cluster_purity(&pred, &truth) - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn purity_all_singletons_is_one() {
        let truth = [0, 0, 1, 1];
        let pred = [0, 1, 2, 3];
        assert_eq!(cluster_purity(&pred, &truth), 1.0);
        // …but NMI penalizes over-segmentation.
        assert!(normalized_mutual_information(&pred, &truth) < 1.0);
    }

    #[test]
    fn nmi_independent_labelings_low() {
        let truth = [0, 1, 0, 1, 0, 1, 0, 1];
        let pred = [0, 0, 1, 1, 0, 0, 1, 1];
        assert!(normalized_mutual_information(&pred, &truth) < 0.1);
    }

    #[test]
    fn nmi_degenerate_single_cluster() {
        let truth = [0, 1, 2];
        let pred = [7, 7, 7];
        assert_eq!(normalized_mutual_information(&pred, &truth), 0.0);
        assert_eq!(normalized_mutual_information(&[3, 3], &[9, 9]), 1.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(cluster_purity(&[], &[]), 1.0);
        assert_eq!(normalized_mutual_information(&[], &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        cluster_purity(&[1], &[1, 2]);
    }
}
