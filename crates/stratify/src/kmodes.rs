//! The compositeKModes clustering algorithm (Wang et al., ICDE 2013).
//!
//! Standard kModes represents a cluster center as the single modal value of
//! each attribute. Over MinHash sketches that fails: the attribute domains
//! are huge, so most points share no value with any center (*zero-match*).
//! CompositeKModes instead keeps the `L` highest-frequency values per
//! attribute in each center; a point matches an attribute if its value
//! appears anywhere in that attribute's list. The objective — total number
//! of matched attributes — is non-decreasing under both the assignment and
//! the update step, so the algorithm converges like classic kModes.

use std::collections::HashMap;

use pareto_sketch::Signature;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration for one clustering run.
#[derive(Debug, Clone)]
pub struct KModesConfig {
    /// Number of clusters `K`.
    pub num_clusters: usize,
    /// Values kept per attribute in a center (`L ≥ 1`; `L = 1` is classic
    /// kModes).
    pub l: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Seed for center initialization.
    pub seed: u64,
    /// Worker threads for the assignment and update steps (1 = serial).
    ///
    /// Both parallel steps are deterministic by construction — assignment
    /// is a pure per-point function of the centers, and the update step's
    /// per-shard frequency counts merge by addition (commutative) before
    /// the deterministic tie-broken sort — so the result is bit-identical
    /// at any thread count.
    pub threads: usize,
}

/// The result of a clustering run.
#[derive(Debug, Clone)]
pub struct KModesResult {
    /// Cluster id per input signature.
    pub assignments: Vec<u32>,
    /// Number of clusters (as configured, possibly with empty clusters
    /// when there are fewer points than clusters).
    pub num_clusters: usize,
    /// Fraction of points whose final best match score was zero.
    pub zero_match_rate: f64,
    /// Iterations executed until convergence or the cap.
    pub iterations: usize,
    /// Final total match score (the kModes objective; higher is better).
    pub total_score: u64,
}

/// A cluster center: per attribute, up to `L` values ordered by descending
/// member frequency.
#[derive(Debug, Clone)]
struct Center {
    lists: Vec<Vec<u64>>,
}

impl Center {
    fn from_signature(sig: &Signature, num_attrs: usize) -> Center {
        debug_assert_eq!(sig.len(), num_attrs);
        Center {
            lists: sig.values().iter().map(|&v| vec![v]).collect(),
        }
    }

    /// Match score of a signature against this center: the number of
    /// attributes whose value appears in the center's list.
    fn score(&self, sig: &Signature) -> u32 {
        self.lists
            .iter()
            .zip(sig.values())
            .filter(|(list, v)| list.contains(v))
            .count() as u32
    }
}

/// The clustering algorithm.
pub struct CompositeKModes {
    cfg: KModesConfig,
}

impl CompositeKModes {
    /// Create a runner with the given configuration.
    pub fn new(cfg: KModesConfig) -> Self {
        assert!(cfg.num_clusters >= 1, "need at least one cluster");
        assert!(cfg.l >= 1, "center list length L must be >= 1");
        CompositeKModes { cfg }
    }

    /// Cluster the signatures.
    ///
    /// All signatures must share the same length. An empty input produces
    /// an empty assignment.
    pub fn run(&self, signatures: &[Signature]) -> KModesResult {
        let n = signatures.len();
        let k = self.cfg.num_clusters.min(n.max(1));
        if n == 0 {
            return KModesResult {
                assignments: Vec::new(),
                num_clusters: self.cfg.num_clusters,
                zero_match_rate: 0.0,
                iterations: 0,
                total_score: 0,
            };
        }
        let num_attrs = signatures[0].len();
        assert!(
            signatures.iter().all(|s| s.len() == num_attrs),
            "signatures must share dimensionality"
        );

        // Initialize centers on K distinct random points.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(self.cfg.seed);
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        let mut centers: Vec<Center> = idx[..k]
            .iter()
            .map(|&i| Center::from_signature(&signatures[i], num_attrs))
            .collect();

        let threads = self.cfg.threads.max(1).min(n);
        let mut assignments = vec![u32::MAX; n];
        let mut scores = vec![0u32; n];
        let mut iterations = 0;
        for _ in 0..self.cfg.max_iters.max(1) {
            iterations += 1;
            // --- Assignment step (parallel over point shards) ---
            let best = assign_points(signatures, &centers, threads);
            let mut changed = false;
            for (i, &(best_c, best_s)) in best.iter().enumerate() {
                if assignments[i] != best_c {
                    assignments[i] = best_c;
                    changed = true;
                }
                scores[i] = best_s;
            }
            if !changed && iterations > 1 {
                break;
            }
            // --- Update step: recompute L-frequent lists per attribute ---
            let (freq, members) =
                accumulate_frequencies(signatures, &assignments, k, num_attrs, threads);
            for (c, center) in centers.iter_mut().enumerate() {
                if members[c] == 0 {
                    // Re-seed an empty cluster on the worst-matched point,
                    // the standard kModes fix for dead centers.
                    let worst = (0..n)
                        .min_by_key(|&i| (scores[i], i))
                        .expect("n > 0");
                    *center = Center::from_signature(&signatures[worst], num_attrs);
                    continue;
                }
                for (a, counts) in freq[c].iter().enumerate() {
                    let mut pairs: Vec<(u64, u32)> =
                        counts.iter().map(|(&v, &c)| (v, c)).collect();
                    // Descending frequency; value breaks ties for
                    // determinism.
                    pairs.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
                    center.lists[a] =
                        pairs.iter().take(self.cfg.l).map(|&(v, _)| v).collect();
                }
            }
        }

        let zero_matches = scores.iter().filter(|&&s| s == 0).count();
        KModesResult {
            assignments,
            num_clusters: self.cfg.num_clusters,
            zero_match_rate: zero_matches as f64 / n as f64,
            iterations,
            total_score: scores.iter().map(|&s| s as u64).sum(),
        }
    }
}

/// Assignment step: `(best cluster, best score)` per point. A pure
/// function of the centers, so sharding points across threads and
/// concatenating shard outputs in index order reproduces the serial
/// result exactly.
fn assign_points(
    signatures: &[Signature],
    centers: &[Center],
    threads: usize,
) -> Vec<(u32, u32)> {
    let assign_shard = |shard: &[Signature]| -> Vec<(u32, u32)> {
        shard
            .iter()
            .map(|sig| {
                let (mut best_c, mut best_s) = (0u32, centers[0].score(sig));
                for (c, center) in centers.iter().enumerate().skip(1) {
                    let s = center.score(sig);
                    if s > best_s {
                        best_s = s;
                        best_c = c as u32;
                    }
                }
                (best_c, best_s)
            })
            .collect()
    };
    if threads <= 1 || signatures.len() < 2 {
        return assign_shard(signatures);
    }
    let chunk = signatures.len().div_ceil(threads);
    let mut out = Vec::with_capacity(signatures.len());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = signatures
            .chunks(chunk)
            .map(|shard| scope.spawn(move |_| assign_shard(shard)))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("assignment worker panicked"));
        }
    })
    .expect("assignment scope panicked");
    out
}

/// Update-step accumulation: per-cluster, per-attribute value frequencies
/// plus member counts. Each shard accumulates its own maps; shard results
/// merge by integer addition, which is commutative and associative, so
/// the totals are independent of shard boundaries and thread count.
fn accumulate_frequencies(
    signatures: &[Signature],
    assignments: &[u32],
    k: usize,
    num_attrs: usize,
    threads: usize,
) -> (Vec<Vec<HashMap<u64, u32>>>, Vec<usize>) {
    let accumulate_shard = |sigs: &[Signature], assigns: &[u32]| {
        let mut freq: Vec<Vec<HashMap<u64, u32>>> = vec![vec![HashMap::new(); num_attrs]; k];
        let mut members = vec![0usize; k];
        for (sig, &c) in sigs.iter().zip(assigns) {
            let c = c as usize;
            members[c] += 1;
            for (a, &v) in sig.values().iter().enumerate() {
                *freq[c][a].entry(v).or_insert(0) += 1;
            }
        }
        (freq, members)
    };
    if threads <= 1 || signatures.len() < 2 {
        return accumulate_shard(signatures, assignments);
    }
    let chunk = signatures.len().div_ceil(threads);
    let mut partials = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = signatures
            .chunks(chunk)
            .zip(assignments.chunks(chunk))
            .map(|(sigs, assigns)| scope.spawn(move |_| accumulate_shard(sigs, assigns)))
            .collect();
        for handle in handles {
            partials.push(handle.join().expect("update worker panicked"));
        }
    })
    .expect("update scope panicked");
    let mut iter = partials.into_iter();
    let (mut freq, mut members) = iter.next().expect("at least one shard");
    for (shard_freq, shard_members) in iter {
        for (m, s) in members.iter_mut().zip(shard_members) {
            *m += s;
        }
        for (cluster, shard_cluster) in freq.iter_mut().zip(shard_freq) {
            for (attr, shard_attr) in cluster.iter_mut().zip(shard_cluster) {
                for (value, count) in shard_attr {
                    *attr.entry(value).or_insert(0) += count;
                }
            }
        }
    }
    (freq, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pareto_datagen::ItemSet;
    use pareto_sketch::MinHasher;

    /// Three well-separated groups of item sets.
    fn grouped_signatures(per_group: usize, k: usize) -> (Vec<Signature>, Vec<u32>) {
        let hasher = MinHasher::new(k, 77);
        let mut sigs = Vec::new();
        let mut truth = Vec::new();
        for g in 0u64..3 {
            let base: Vec<u64> = (0..40).map(|i| g * 10_000 + i).collect();
            for v in 0..per_group {
                let mut items = base.clone();
                // Small per-member variation.
                items.push(g * 10_000 + 500 + v as u64);
                sigs.push(hasher.sketch(&ItemSet::from_items(items)));
                truth.push(g as u32);
            }
        }
        (sigs, truth)
    }

    #[test]
    #[ignore = "diagnostic: seed scan for recovers_separated_groups calibration"]
    fn scan_seeds_for_group_recovery() {
        let (sigs, truth) = grouped_signatures(20, 48);
        for seed in 0u64..24 {
            let result = CompositeKModes::new(KModesConfig {
                num_clusters: 3,
                l: 3,
                max_iters: 15,
                seed,
                threads: 1,
            })
            .run(&sigs);
            let purity = crate::quality::cluster_purity(&result.assignments, &truth);
            println!(
                "seed {seed}: purity {purity:.3} zero_match {:.3}",
                result.zero_match_rate
            );
        }
    }

    #[test]
    fn recovers_separated_groups() {
        let (sigs, truth) = grouped_signatures(20, 48);
        let result = CompositeKModes::new(KModesConfig {
            num_clusters: 3,
            l: 3,
            max_iters: 15,
            // Calibrated: random init must land one center per group
            // (~23% of seeds); see scan_seeds_for_group_recovery.
            seed: 9,
            threads: 1,
        })
        .run(&sigs);
        let purity = crate::quality::cluster_purity(&result.assignments, &truth);
        assert!(purity > 0.9, "purity {purity}");
        assert!(result.zero_match_rate < 0.2);
    }

    #[test]
    fn parallel_run_matches_serial_bitwise() {
        let (sigs, _) = grouped_signatures(20, 48);
        let base = KModesConfig {
            num_clusters: 3,
            l: 3,
            max_iters: 15,
            seed: 5,
            threads: 1,
        };
        let serial = CompositeKModes::new(base.clone()).run(&sigs);
        for threads in [2, 4, 8, 64] {
            let par = CompositeKModes::new(KModesConfig {
                threads,
                ..base.clone()
            })
            .run(&sigs);
            assert_eq!(serial.assignments, par.assignments, "threads={threads}");
            assert_eq!(serial.total_score, par.total_score, "threads={threads}");
            assert_eq!(serial.iterations, par.iterations, "threads={threads}");
            assert_eq!(serial.zero_match_rate, par.zero_match_rate);
        }
    }

    #[test]
    fn empty_input() {
        let result = CompositeKModes::new(KModesConfig {
            num_clusters: 4,
            l: 2,
            max_iters: 5,
            seed: 1,
            threads: 1,
        })
        .run(&[]);
        assert!(result.assignments.is_empty());
        assert_eq!(result.iterations, 0);
    }

    #[test]
    fn fewer_points_than_clusters() {
        let hasher = MinHasher::new(16, 3);
        let sigs = vec![
            hasher.sketch(&ItemSet::from_items(vec![1, 2, 3])),
            hasher.sketch(&ItemSet::from_items(vec![100, 200])),
        ];
        let result = CompositeKModes::new(KModesConfig {
            num_clusters: 8,
            l: 2,
            max_iters: 5,
            seed: 2,
            threads: 1,
        })
        .run(&sigs);
        assert_eq!(result.assignments.len(), 2);
        assert!(result.assignments.iter().all(|&c| c < 8));
    }

    #[test]
    fn deterministic_across_runs() {
        let (sigs, _) = grouped_signatures(10, 32);
        let cfg = KModesConfig {
            num_clusters: 3,
            l: 2,
            max_iters: 10,
            seed: 9,
            threads: 1,
        };
        let a = CompositeKModes::new(cfg.clone()).run(&sigs);
        let b = CompositeKModes::new(cfg).run(&sigs);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.total_score, b.total_score);
    }

    #[test]
    fn single_cluster_groups_everything() {
        let (sigs, _) = grouped_signatures(5, 16);
        let result = CompositeKModes::new(KModesConfig {
            num_clusters: 1,
            l: 4,
            max_iters: 5,
            seed: 4,
            threads: 1,
        })
        .run(&sigs);
        assert!(result.assignments.iter().all(|&c| c == 0));
    }

    #[test]
    fn objective_improves_with_l() {
        // More values per attribute can only widen matching; the final
        // objective with larger L should be >= the L=1 objective.
        let (sigs, _) = grouped_signatures(15, 32);
        let score = |l: usize| {
            CompositeKModes::new(KModesConfig {
                num_clusters: 3,
                l,
                max_iters: 15,
                seed: 11,
            threads: 1,
            })
            .run(&sigs)
            .total_score
        };
        assert!(score(4) >= score(1));
    }

    #[test]
    #[should_panic(expected = "share dimensionality")]
    fn rejects_mixed_dimensions() {
        let h1 = MinHasher::new(4, 1);
        let h2 = MinHasher::new(8, 1);
        let sigs = vec![
            h1.sketch(&ItemSet::from_items(vec![1])),
            h2.sketch(&ItemSet::from_items(vec![1])),
        ];
        CompositeKModes::new(KModesConfig {
            num_clusters: 2,
            l: 1,
            max_iters: 2,
            seed: 0,
            threads: 1,
        })
        .run(&sigs);
    }
}
