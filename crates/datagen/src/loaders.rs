//! Loaders for simple on-disk formats, for users who have the real corpora.
//!
//! The paper's datasets come from the UW XML repository (trees), the LAW
//! lab (web graphs) and RCV1 (text). Those distributions need heavyweight
//! parsers; here we support the pre-processed plain-text forms those
//! communities commonly exchange:
//!
//! * **Trees**: one tree per line as `parent-array;labels`, e.g.
//!   `0 0 1;12 7 9` (space-separated `u32`s, `;`-separated sections).
//! * **Graphs**: adjacency text — line `v: t1 t2 t3` (targets of vertex v,
//!   vertices in ascending order, `:` optional).
//! * **Text**: one document per line, tokens as space-separated integer ids.

use std::io::BufRead;

use crate::dataset::{DataKind, Dataset};
use crate::graph::AdjacencyGraph;
use crate::text::Document;
use crate::tree::{LabeledTree, TreeError};

/// Errors from the loaders.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse { line: usize, message: String },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<TreeError> for LoadError {
    fn from(e: TreeError) -> Self {
        LoadError::Parse {
            line: 0,
            message: e.to_string(),
        }
    }
}

fn parse_u32s(s: &str, line: usize) -> Result<Vec<u32>, LoadError> {
    s.split_whitespace()
        .map(|tok| {
            tok.parse::<u32>().map_err(|e| LoadError::Parse {
                line,
                message: format!("bad integer {tok:?}: {e}"),
            })
        })
        .collect()
}

/// Load a tree dataset from `parent-array;labels` lines.
pub fn load_trees<R: BufRead>(name: &str, reader: R) -> Result<Dataset, LoadError> {
    let mut trees = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = i + 1;
        let (parents, labels) = line.split_once(';').ok_or_else(|| LoadError::Parse {
            line: lineno,
            message: "missing ';' separator".into(),
        })?;
        let parent = parse_u32s(parents, lineno)?;
        let labels = parse_u32s(labels, lineno)?;
        let tree = LabeledTree::new(parent, labels).map_err(|e| LoadError::Parse {
            line: lineno,
            message: e.to_string(),
        })?;
        trees.push(tree);
    }
    Ok(Dataset::from_trees(name, trees))
}

/// Load a graph dataset from adjacency-text lines (`v: t1 t2 …`).
///
/// Vertices absent from the file are isolated. The vertex count is
/// `max(vertex id, max target id) + 1`.
pub fn load_graph<R: BufRead>(name: &str, reader: R) -> Result<Dataset, LoadError> {
    let mut rows: Vec<(u32, Vec<u32>)> = Vec::new();
    let mut max_id = 0u32;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = i + 1;
        let (head, rest) = match line.split_once(':') {
            Some((h, r)) => (h.trim(), r),
            None => {
                // `v t1 t2 …` without the colon.
                match line.split_once(char::is_whitespace) {
                    Some((h, r)) => (h, r),
                    None => (line, ""),
                }
            }
        };
        let v: u32 = head.parse().map_err(|e| LoadError::Parse {
            line: lineno,
            message: format!("bad vertex id {head:?}: {e}"),
        })?;
        let targets = parse_u32s(rest, lineno)?;
        max_id = max_id.max(v).max(targets.iter().copied().max().unwrap_or(0));
        rows.push((v, targets));
    }
    let n = if rows.is_empty() { 0 } else { max_id as usize + 1 };
    let mut lists = vec![Vec::new(); n];
    for (v, targets) in rows {
        lists[v as usize].extend(targets);
    }
    let graph = AdjacencyGraph::from_adjacency(lists);
    Ok(Dataset::from_graph(name, &graph))
}

/// Load a text dataset: one document per line, integer word ids.
pub fn load_text<R: BufRead>(name: &str, reader: R) -> Result<Dataset, LoadError> {
    let mut docs = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        docs.push(Document::new(parse_u32s(line, i + 1)?));
    }
    Ok(Dataset::from_documents(name, docs))
}

/// Dispatch on [`DataKind`].
pub fn load<R: BufRead>(name: &str, kind: DataKind, reader: R) -> Result<Dataset, LoadError> {
    match kind {
        DataKind::Tree => load_trees(name, reader),
        DataKind::Graph => load_graph(name, reader),
        DataKind::Text => load_text(name, reader),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn loads_trees() {
        let input = "# comment\n0 0 1;5 6 7\n0 0;1 2\n";
        let ds = load_trees("t", Cursor::new(input)).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.kind, DataKind::Tree);
        assert_eq!(ds.items[0].payload.element_count(), 3);
    }

    #[test]
    fn tree_parse_errors_carry_line() {
        let input = "0 0 1\n"; // missing ';'
        let err = load_trees("t", Cursor::new(input)).unwrap_err();
        match err {
            LoadError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn loads_graph_with_and_without_colon() {
        let input = "0: 1 2\n1 2\n"; // second line: vertex 1 -> {2}
        let ds = load_graph("g", Cursor::new(input)).unwrap();
        assert_eq!(ds.len(), 3); // vertices 0,1,2 (2 isolated)
        match &ds.items[0].payload {
            crate::dataset::Payload::Adjacency(ns) => assert_eq!(ns, &[1, 2]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn loads_text() {
        let ds = load_text("x", Cursor::new("1 2 3\n\n4 4 5\n")).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.items[1].items.as_slice(), &[4, 5]);
    }

    #[test]
    fn empty_input_yields_empty_dataset() {
        let ds = load_text("x", Cursor::new("")).unwrap();
        assert!(ds.is_empty());
        let dg = load_graph("g", Cursor::new("")).unwrap();
        assert!(dg.is_empty());
    }

    #[test]
    fn dispatch_load() {
        let ds = load("d", DataKind::Text, Cursor::new("9 8\n")).unwrap();
        assert_eq!(ds.kind, DataKind::Text);
        assert_eq!(ds.len(), 1);
    }
}
