//! Data model and dataset generation for the Pareto analytics framework.
//!
//! The framework of Chakrabarti et al. (ICPP 2017) is *payload aware*: every
//! data item — an XML tree, a web-graph adjacency list, or a text document —
//! is first converted to a **set of items** over a common universe (paper
//! §III-C step 1) so that sketching, stratification, and partitioning can
//! operate domain-independently:
//!
//! * **Trees** are encoded as [Prüfer sequences](tree::prufer_encode) and
//!   reduced to *pivot* triples `(a, p, q)` where `a` is the least common
//!   ancestor of nodes `p` and `q`; each tree becomes the set of its hashed
//!   pivots.
//! * **Graphs** contribute one record per vertex whose item set is its
//!   adjacency list.
//! * **Text** documents become their set of word ids.
//!
//! The paper evaluates on SwissProt/Treebank (trees), UK/Arabic web graphs,
//! and the RCV1 corpus. Those corpora are not redistributable here, so
//! [`generators`] provides seeded synthetic equivalents with controlled
//! *cluster structure and skew* — the two properties the framework actually
//! exploits — plus [`loaders`] for the simple on-disk formats if you have
//! real data.

pub mod dataset;
pub mod generators;
pub mod graph;
pub mod item;
pub mod loaders;
pub mod text;
pub mod tree;
pub mod writers;
pub mod xml;

pub use dataset::{DataItem, DataKind, Dataset, Payload};
pub use generators::{
    arabic_syn, rcv1_syn, swissprot_syn, treebank_syn, uk_syn, GraphGenConfig, TextGenConfig,
    TreeGenConfig,
};
pub use graph::AdjacencyGraph;
pub use item::{Item, ItemSet};
pub use text::Document;
pub use tree::{prufer_decode, prufer_encode, LabeledTree, Pivot, TreeError};
pub use xml::{dataset_from_xml, parse_record_trees, parse_tree, TagInterner, XmlError};
