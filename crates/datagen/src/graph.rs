//! Graph records: per-vertex adjacency lists (§III-C step 1).
//!
//! For graph datasets the paper uses "the adjacency list as the pivot set
//! (set of neighbors)": the distributable unit is a vertex together with its
//! out-neighbors, and two vertices are similar when their neighbor sets
//! overlap — exactly the structure the WebGraph-style compressor (paper
//! §V-C2) exploits when similar vertices land in the same partition.

use crate::item::ItemSet;

/// A directed graph in compressed-sparse-row form.
///
/// Vertices are `0..num_nodes()`; `neighbors(v)` is sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjacencyGraph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl AdjacencyGraph {
    /// Build from per-vertex neighbor lists (each list is sorted and
    /// deduplicated internally).
    pub fn from_adjacency(mut lists: Vec<Vec<u32>>) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for list in &mut lists {
            list.sort_unstable();
            list.dedup();
            targets.extend_from_slice(list);
            offsets.push(targets.len());
        }
        AdjacencyGraph { offsets, targets }
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Sorted out-neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Itemize vertex `v`: its neighbor set lifted to the universal space.
    /// Isolated vertices map to the singleton `{v}` so their item set is
    /// non-empty (required by the sketching layer).
    pub fn vertex_item_set(&self, v: usize) -> ItemSet {
        let ns = self.neighbors(v);
        if ns.is_empty() {
            return ItemSet::from_items(vec![v as u64]);
        }
        ItemSet::from_sorted_unchecked(ns.iter().map(|&t| t as u64).collect())
    }

    /// Serialize vertex `v` as bytes: `[degree, neighbors…]` little-endian
    /// `u32`s — the unit stored in the KV store and fed to compressors.
    pub fn vertex_bytes(&self, v: usize) -> Vec<u8> {
        let ns = self.neighbors(v);
        let mut out = Vec::with_capacity(4 + 4 * ns.len());
        out.extend_from_slice(&(ns.len() as u32).to_le_bytes());
        for &t in ns {
            out.extend_from_slice(&t.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AdjacencyGraph {
        AdjacencyGraph::from_adjacency(vec![vec![2, 1, 1], vec![], vec![0]])
    }

    #[test]
    fn csr_construction() {
        let g = sample();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3); // duplicate (0->1) removed
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn vertex_item_sets() {
        let g = sample();
        assert_eq!(g.vertex_item_set(0).as_slice(), &[1, 2]);
        // Isolated vertex gets a singleton.
        assert_eq!(g.vertex_item_set(1).as_slice(), &[1]);
    }

    #[test]
    fn similar_vertices_high_jaccard() {
        let g = AdjacencyGraph::from_adjacency(vec![
            vec![10, 11, 12, 13],
            vec![10, 11, 12, 14],
            vec![50, 60],
        ]);
        let (a, b, c) = (
            g.vertex_item_set(0),
            g.vertex_item_set(1),
            g.vertex_item_set(2),
        );
        assert!(a.jaccard(&b) > 0.5);
        assert_eq!(a.jaccard(&c), 0.0);
    }

    #[test]
    fn vertex_bytes_layout() {
        let g = sample();
        let b = g.vertex_bytes(0);
        assert_eq!(b.len(), 4 + 8);
        assert_eq!(&b[0..4], &2u32.to_le_bytes());
        assert_eq!(&b[4..8], &1u32.to_le_bytes());
    }

    #[test]
    fn empty_graph() {
        let g = AdjacencyGraph::from_adjacency(vec![]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
