//! Writers for the plain-text dataset formats of [`crate::loaders`].
//!
//! Exact inverses of the loaders (modulo comments/blank lines), so synthetic
//! datasets can be exported, shared, and re-loaded — and so the `paretofab`
//! CLI can hand partition contents to external tools.

use std::io::{self, Write};

use crate::dataset::{DataKind, Dataset, Payload};

/// Write a tree dataset as `parent-array;labels` lines.
pub fn write_trees<W: Write>(dataset: &Dataset, mut out: W) -> io::Result<()> {
    assert_eq!(dataset.kind, DataKind::Tree, "tree writer needs tree data");
    for item in &dataset.items {
        let Payload::Tree(tree) = &item.payload else {
            unreachable!("tree dataset holds tree payloads");
        };
        let parents: Vec<String> = tree.parents().iter().map(u32::to_string).collect();
        let labels: Vec<String> = tree.labels().iter().map(u32::to_string).collect();
        writeln!(out, "{};{}", parents.join(" "), labels.join(" "))?;
    }
    Ok(())
}

/// Write a graph dataset as `v: t1 t2 …` adjacency lines.
pub fn write_graph<W: Write>(dataset: &Dataset, mut out: W) -> io::Result<()> {
    assert_eq!(dataset.kind, DataKind::Graph, "graph writer needs graph data");
    for item in &dataset.items {
        let Payload::Adjacency(ns) = &item.payload else {
            unreachable!("graph dataset holds adjacency payloads");
        };
        let targets: Vec<String> = ns.iter().map(u32::to_string).collect();
        writeln!(out, "{}: {}", item.id, targets.join(" "))?;
    }
    Ok(())
}

/// Write a text dataset as one token-id line per document.
pub fn write_text<W: Write>(dataset: &Dataset, mut out: W) -> io::Result<()> {
    assert_eq!(dataset.kind, DataKind::Text, "text writer needs text data");
    for item in &dataset.items {
        let Payload::Text(doc) = &item.payload else {
            unreachable!("text dataset holds document payloads");
        };
        let tokens: Vec<String> = doc.tokens.iter().map(u32::to_string).collect();
        writeln!(out, "{}", tokens.join(" "))?;
    }
    Ok(())
}

/// Dispatch on the dataset's kind.
pub fn write<W: Write>(dataset: &Dataset, out: W) -> io::Result<()> {
    match dataset.kind {
        DataKind::Tree => write_trees(dataset, out),
        DataKind::Graph => write_graph(dataset, out),
        DataKind::Text => write_text(dataset, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loaders;
    use std::io::Cursor;

    fn roundtrip(ds: &Dataset) -> Dataset {
        let mut buf = Vec::new();
        write(ds, &mut buf).unwrap();
        loaders::load(&ds.name, ds.kind, Cursor::new(buf)).unwrap()
    }

    #[test]
    fn trees_roundtrip() {
        let ds = crate::generators::swissprot_syn(5, 0.02);
        let back = roundtrip(&ds);
        assert_eq!(back.len(), ds.len());
        for (a, b) in ds.items.iter().zip(&back.items) {
            assert_eq!(a.payload, b.payload);
            assert_eq!(a.items, b.items, "itemization must be reproducible");
        }
    }

    #[test]
    fn text_roundtrip() {
        let ds = crate::generators::rcv1_syn(5, 0.01);
        let back = roundtrip(&ds);
        assert_eq!(back.len(), ds.len());
        for (a, b) in ds.items.iter().zip(&back.items) {
            assert_eq!(a.payload, b.payload);
        }
    }

    #[test]
    fn graph_roundtrip() {
        let ds = crate::generators::uk_syn(5, 0.01);
        let back = roundtrip(&ds);
        // Re-loading may add isolated vertices only if ids exceeded n-1;
        // vertex records themselves must match.
        assert!(back.len() >= ds.len());
        for item in &ds.items {
            let b = &back.items[item.id as usize];
            assert_eq!(item.payload, b.payload);
        }
    }

    #[test]
    #[should_panic(expected = "tree writer needs tree data")]
    fn kind_mismatch_panics() {
        let ds = crate::generators::rcv1_syn(5, 0.01);
        let mut buf = Vec::new();
        write_trees(&ds, &mut buf).unwrap();
    }
}
