//! The universal set representation every payload is reduced to.
//!
//! After itemization (paper §III-C step 1), a data object is just a set of
//! `u64` items; similarity is Jaccard similarity over these sets, and all
//! downstream machinery (MinHash sketching, compositeKModes clustering) is
//! domain independent.

use std::fmt;

/// An element of the universal set. Pivots, word ids, and neighbor ids are
/// all mapped into this space (hashed where necessary).
pub type Item = u64;

/// A set of [`Item`]s, stored sorted and deduplicated.
///
/// Invariant: `items` is strictly increasing. All constructors enforce it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ItemSet {
    items: Vec<Item>,
}

impl ItemSet {
    /// Build from arbitrary (possibly duplicated, unsorted) items.
    pub fn from_items(mut items: Vec<Item>) -> Self {
        items.sort_unstable();
        items.dedup();
        ItemSet { items }
    }

    /// Build from items already known to be strictly increasing.
    ///
    /// # Panics
    /// In debug builds, panics if the invariant does not hold.
    pub fn from_sorted_unchecked(items: Vec<Item>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "items must be strictly increasing"
        );
        ItemSet { items }
    }

    /// The empty set.
    pub fn empty() -> Self {
        ItemSet { items: Vec::new() }
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the set has no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Sorted view of the items.
    #[inline]
    pub fn as_slice(&self) -> &[Item] {
        &self.items
    }

    /// Membership test (binary search).
    pub fn contains(&self, item: Item) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Size of the intersection with `other` (linear merge).
    pub fn intersection_size(&self, other: &ItemSet) -> usize {
        let (mut i, mut j, mut count) = (0, 0, 0);
        let (a, b) = (&self.items, &other.items);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Size of the union with `other`.
    pub fn union_size(&self, other: &ItemSet) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// Exact Jaccard similarity `|x ∩ y| / |x ∪ y|`.
    ///
    /// Two empty sets have similarity 1 (they are identical).
    pub fn jaccard(&self, other: &ItemSet) -> f64 {
        let union = self.union_size(other);
        if union == 0 {
            return 1.0;
        }
        self.intersection_size(other) as f64 / union as f64
    }

    /// Iterate over the items in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Item> + '_ {
        self.items.iter().copied()
    }

    /// Serialize to little-endian bytes (8 bytes per item), the layout used
    /// by the simulated KV store and the compression workloads.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.items.len() * 8);
        for item in &self.items {
            out.extend_from_slice(&item.to_le_bytes());
        }
        out
    }

    /// Inverse of [`ItemSet::to_bytes`]. Returns `None` if `bytes` is not a
    /// multiple of 8 long.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if !bytes.len().is_multiple_of(8) {
            return None;
        }
        let items = bytes
            .chunks_exact(8)
            .map(|c| Item::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        Some(ItemSet::from_items(items))
    }
}

impl fmt::Display for ItemSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Item> for ItemSet {
    fn from_iter<T: IntoIterator<Item = Item>>(iter: T) -> Self {
        ItemSet::from_items(iter.into_iter().collect())
    }
}

/// A stable 64-bit hash for mapping structured keys (pivot triples, tokens)
/// into the universal item space. FNV-1a — deterministic across runs and
/// platforms, which the tests and experiments rely on.
pub fn stable_hash64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Hash a triple of `u32`s into an [`Item`] (used for tree pivots).
pub fn hash_triple(a: u32, b: u32, c: u32) -> Item {
    let mut buf = [0u8; 12];
    buf[0..4].copy_from_slice(&a.to_le_bytes());
    buf[4..8].copy_from_slice(&b.to_le_bytes());
    buf[8..12].copy_from_slice(&c.to_le_bytes());
    stable_hash64(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_items_sorts_and_dedups() {
        let s = ItemSet::from_items(vec![5, 1, 3, 1, 5]);
        assert_eq!(s.as_slice(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_set() {
        let e = ItemSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.jaccard(&e), 1.0);
    }

    #[test]
    fn contains_uses_membership() {
        let s = ItemSet::from_items(vec![2, 4, 6]);
        assert!(s.contains(4));
        assert!(!s.contains(5));
    }

    #[test]
    fn jaccard_exact_values() {
        let a = ItemSet::from_items(vec![1, 2, 3, 4]);
        let b = ItemSet::from_items(vec![3, 4, 5, 6]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.union_size(&b), 6);
        assert!((a.jaccard(&b) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_identity_and_disjoint() {
        let a = ItemSet::from_items(vec![1, 2, 3]);
        let b = ItemSet::from_items(vec![10, 20]);
        assert_eq!(a.jaccard(&a), 1.0);
        assert_eq!(a.jaccard(&b), 0.0);
    }

    #[test]
    fn jaccard_with_empty() {
        let a = ItemSet::from_items(vec![1]);
        assert_eq!(a.jaccard(&ItemSet::empty()), 0.0);
    }

    #[test]
    fn bytes_roundtrip() {
        let s = ItemSet::from_items(vec![0, 1, u64::MAX, 42]);
        let b = s.to_bytes();
        assert_eq!(b.len(), 32);
        assert_eq!(ItemSet::from_bytes(&b).unwrap(), s);
        assert!(ItemSet::from_bytes(&b[..7]).is_none());
    }

    #[test]
    fn stable_hash_is_stable() {
        // Pin exact values: determinism across platforms/runs is relied on.
        assert_eq!(stable_hash64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_hash64(b"a"), stable_hash64(b"a"));
        assert_ne!(stable_hash64(b"a"), stable_hash64(b"b"));
    }

    #[test]
    fn hash_triple_order_sensitive() {
        assert_ne!(hash_triple(1, 2, 3), hash_triple(3, 2, 1));
        assert_eq!(hash_triple(1, 2, 3), hash_triple(1, 2, 3));
    }

    #[test]
    fn from_iterator() {
        let s: ItemSet = [3u64, 1, 2].into_iter().collect();
        assert_eq!(s.as_slice(), &[1, 2, 3]);
    }
}
