//! Text records: documents as bags of word ids (§III-C step 1).
//!
//! "For text datasets, we represent each document as a set of words in it."
//! Word ids index a vocabulary; the RCV1-like synthetic corpus in
//! [`crate::generators`] draws them from per-topic Zipfian distributions.

use crate::item::ItemSet;

/// A document: an ordered list of word-id tokens (duplicates allowed —
/// itemization deduplicates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Tokens in document order.
    pub tokens: Vec<u32>,
}

impl Document {
    /// Wrap a token list.
    pub fn new(tokens: Vec<u32>) -> Self {
        Document { tokens }
    }

    /// Number of tokens (with duplicates).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when the document has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Itemize: the *set* of word ids. An empty document maps to a reserved
    /// sentinel item so the sketching layer never sees an empty set.
    pub fn item_set(&self) -> ItemSet {
        if self.tokens.is_empty() {
            return ItemSet::from_items(vec![u64::MAX]);
        }
        self.tokens.iter().map(|&t| t as u64).collect()
    }

    /// Serialize as bytes: `[len, tokens…]` little-endian `u32`s.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 4 * self.tokens.len());
        out.extend_from_slice(&(self.tokens.len() as u32).to_le_bytes());
        for &t in &self.tokens {
            out.extend_from_slice(&t.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_set_dedups() {
        let d = Document::new(vec![3, 1, 3, 2, 1]);
        assert_eq!(d.item_set().as_slice(), &[1, 2, 3]);
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn empty_document_sentinel() {
        let d = Document::new(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.item_set().as_slice(), &[u64::MAX]);
    }

    #[test]
    fn bytes_layout() {
        let d = Document::new(vec![7, 8]);
        let b = d.to_bytes();
        assert_eq!(b.len(), 12);
        assert_eq!(&b[0..4], &2u32.to_le_bytes());
        assert_eq!(&b[8..12], &8u32.to_le_bytes());
    }

    #[test]
    fn shared_topic_docs_similar() {
        let a = Document::new(vec![1, 2, 3, 4, 5]);
        let b = Document::new(vec![1, 2, 3, 4, 9]);
        let c = Document::new(vec![100, 101]);
        assert!(a.item_set().jaccard(&b.item_set()) > 0.5);
        assert_eq!(a.item_set().jaccard(&c.item_set()), 0.0);
    }
}
