//! A minimal XML reader producing [`LabeledTree`]s.
//!
//! The paper's tree corpora (SwissProt, Treebank — Table I) come from the
//! UW XML repository as large XML dumps: one document whose top-level
//! children are the records. This module parses exactly the subset such
//! dumps need — nested elements with optional attributes, text content,
//! comments, CDATA and processing instructions (all non-element content is
//! skipped) — and converts each record element into a tree whose node
//! labels are interned tag names.
//!
//! Not a general XML parser: no namespaces, DTDs, or entity expansion.
//! Malformed structure (mismatched tags, truncation) is reported, not
//! guessed at.

use std::collections::HashMap;

use crate::dataset::Dataset;
use crate::tree::LabeledTree;

/// Errors from XML parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Input ended inside a construct.
    Truncated,
    /// A closing tag did not match the open element.
    Mismatch {
        /// Tag that was open.
        expected: String,
        /// Tag that tried to close it.
        found: String,
    },
    /// Structurally invalid markup.
    Malformed(String),
    /// The document had no record elements.
    NoRecords,
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XmlError::Truncated => write!(f, "truncated XML"),
            XmlError::Mismatch { expected, found } => {
                write!(f, "closing </{found}> does not match <{expected}>")
            }
            XmlError::Malformed(m) => write!(f, "malformed XML: {m}"),
            XmlError::NoRecords => write!(f, "document holds no record elements"),
        }
    }
}

impl std::error::Error for XmlError {}

/// Interns tag names into `u32` labels, stable within one parse.
#[derive(Debug, Default)]
pub struct TagInterner {
    map: HashMap<String, u32>,
}

impl TagInterner {
    /// Label for `tag`, allocating on first sight.
    pub fn intern(&mut self, tag: &str) -> u32 {
        let next = self.map.len() as u32;
        *self.map.entry(tag.to_owned()).or_insert(next)
    }

    /// Number of distinct tags seen.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True before any tag is interned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[derive(Debug)]
enum Event {
    Open(String),
    Close(String),
    SelfClose(String),
}

/// Tokenize the element structure of `input` (attributes/text skipped).
fn events(input: &str) -> Result<Vec<Event>, XmlError> {
    let bytes = input.as_bytes();
    let mut events = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1; // text content
            continue;
        }
        let rest = &input[i..];
        if rest.starts_with("<!--") {
            i += rest.find("-->").map(|p| p + 3).ok_or(XmlError::Truncated)?;
        } else if rest.starts_with("<![CDATA[") {
            i += rest.find("]]>").map(|p| p + 3).ok_or(XmlError::Truncated)?;
        } else if rest.starts_with("<!") || rest.starts_with("<?") {
            i += rest.find('>').map(|p| p + 1).ok_or(XmlError::Truncated)?;
        } else {
            let end = rest.find('>').ok_or(XmlError::Truncated)?;
            let inner = &rest[1..end];
            if let Some(name) = inner.strip_prefix('/') {
                events.push(Event::Close(name.trim().to_owned()));
            } else {
                let self_closing = inner.ends_with('/');
                let inner = inner.strip_suffix('/').unwrap_or(inner).trim();
                let name = inner
                    .split_whitespace()
                    .next()
                    .ok_or_else(|| XmlError::Malformed("empty tag".into()))?
                    .to_owned();
                if name.is_empty() {
                    return Err(XmlError::Malformed("empty tag name".into()));
                }
                if self_closing {
                    events.push(Event::SelfClose(name));
                } else {
                    events.push(Event::Open(name));
                }
            }
            i += end + 1;
        }
    }
    Ok(events)
}

/// Parse one XML document into a single [`LabeledTree`] (the document
/// element becomes the root).
pub fn parse_tree(input: &str, interner: &mut TagInterner) -> Result<LabeledTree, XmlError> {
    let mut trees = parse_record_trees(input, None, interner)?;
    if trees.len() != 1 {
        return Err(XmlError::Malformed(format!(
            "expected one document element, found {}",
            trees.len()
        )));
    }
    Ok(trees.pop().expect("length checked"))
}

/// Parse a dump into one tree per record.
///
/// With `record_tag = Some(tag)`, each element named `tag` (at any depth)
/// becomes a record tree. With `None`, each *top-level* element does.
pub fn parse_record_trees(
    input: &str,
    record_tag: Option<&str>,
    interner: &mut TagInterner,
) -> Result<Vec<LabeledTree>, XmlError> {
    // Stack entry: (tag, node index in the current record, or None when
    // outside any record).
    let mut trees = Vec::new();
    let mut stack: Vec<(String, Option<u32>)> = Vec::new();
    // Current record under construction.
    let mut parents: Vec<u32> = Vec::new();
    let mut labels: Vec<u32> = Vec::new();
    let mut in_record = false;

    let handle_open = |tag: &str,
                           stack: &mut Vec<(String, Option<u32>)>,
                           parents: &mut Vec<u32>,
                           labels: &mut Vec<u32>,
                           in_record: &mut bool|
     -> Option<u32> {
        let starts_record = !*in_record
            && match record_tag {
                Some(t) => tag == t,
                None => stack.is_empty(),
            };
        if starts_record {
            *in_record = true;
            parents.clear();
            labels.clear();
        }
        if *in_record {
            let node = parents.len() as u32;
            let parent = stack
                .iter()
                .rev()
                .find_map(|(_, n)| *n)
                .unwrap_or(node);
            parents.push(if node == 0 { 0 } else { parent });
            labels.push(0); // patched by caller (needs interner)
            Some(node)
        } else {
            None
        }
    };

    for event in events(input)? {
        match event {
            Event::Open(tag) => {
                let node = handle_open(&tag, &mut stack, &mut parents, &mut labels, &mut in_record);
                if let Some(n) = node {
                    labels[n as usize] = interner.intern(&tag);
                }
                stack.push((tag, node));
            }
            Event::SelfClose(tag) => {
                let node = handle_open(&tag, &mut stack, &mut parents, &mut labels, &mut in_record);
                if let Some(n) = node {
                    labels[n as usize] = interner.intern(&tag);
                    if n == 0 {
                        // A self-closing record: a single-node tree.
                        trees.push(
                            LabeledTree::new(parents.clone(), labels.clone())
                                .map_err(|e| XmlError::Malformed(e.to_string()))?,
                        );
                        in_record = false;
                    }
                }
            }
            Event::Close(tag) => {
                let (open_tag, node) = stack.pop().ok_or_else(|| {
                    XmlError::Malformed(format!("stray closing </{tag}>"))
                })?;
                if open_tag != tag {
                    return Err(XmlError::Mismatch {
                        expected: open_tag,
                        found: tag,
                    });
                }
                if node == Some(0) {
                    trees.push(
                        LabeledTree::new(parents.clone(), labels.clone())
                            .map_err(|e| XmlError::Malformed(e.to_string()))?,
                    );
                    in_record = false;
                }
            }
        }
    }
    if let Some((tag, _)) = stack.pop() {
        return Err(XmlError::Malformed(format!("unclosed <{tag}>")));
    }
    if trees.is_empty() {
        return Err(XmlError::NoRecords);
    }
    Ok(trees)
}

/// Parse an XML dump straight into a tree [`Dataset`].
pub fn dataset_from_xml(
    name: &str,
    input: &str,
    record_tag: Option<&str>,
) -> Result<Dataset, XmlError> {
    let mut interner = TagInterner::default();
    let trees = parse_record_trees(input, record_tag, &mut interner)?;
    Ok(Dataset::from_trees(name, trees))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SWISSPROT_LIKE: &str = r#"<?xml version="1.0"?>
<!-- UW repository style dump -->
<root>
  <Entry id="A1">
    <Protein><Name>x</Name></Protein>
    <Ref db="PIR"/>
    <Ref db="EMBL"/>
  </Entry>
  <Entry id="A2">
    <Protein><Name>y</Name></Protein>
    <Keyword/>
  </Entry>
</root>
"#;

    #[test]
    fn parses_records_by_tag() {
        let ds = dataset_from_xml("sp", SWISSPROT_LIKE, Some("Entry")).unwrap();
        assert_eq!(ds.len(), 2);
        // Entry -> Protein -> Name + 2x Ref = 5 nodes in record 1.
        assert_eq!(ds.items[0].payload.element_count(), 5);
        assert_eq!(ds.items[1].payload.element_count(), 4);
        // Shared structure => similar pivot sets.
        assert!(ds.items[0].items.jaccard(&ds.items[1].items) > 0.0);
    }

    #[test]
    fn parses_top_level_records() {
        let mut interner = TagInterner::default();
        let trees =
            parse_record_trees("<a><b/></a><c/>", None, &mut interner).unwrap();
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].len(), 2);
        assert_eq!(trees[1].len(), 1);
        assert_eq!(interner.len(), 3);
    }

    #[test]
    fn single_document_tree() {
        let mut interner = TagInterner::default();
        let t = parse_tree("<a><b><c/></b><b/></a>", &mut interner).unwrap();
        assert_eq!(t.len(), 4);
        // Labels: both <b> nodes share a label; <a> is the root.
        assert_eq!(t.labels()[1], t.labels()[3]);
        assert_eq!(t.parents()[1], 0);
        assert_eq!(t.parents()[2], 1);
    }

    #[test]
    fn interner_is_stable_across_records() {
        let ds = dataset_from_xml("sp", SWISSPROT_LIKE, Some("Entry")).unwrap();
        // Both entries' roots carry the same label (same tag name) — their
        // pivot sets could not overlap otherwise.
        let (crate::dataset::Payload::Tree(t1), crate::dataset::Payload::Tree(t2)) =
            (&ds.items[0].payload, &ds.items[1].payload)
        else {
            panic!("tree payloads expected")
        };
        assert_eq!(t1.labels()[0], t2.labels()[0]);
    }

    #[test]
    fn skips_non_element_content() {
        let mut interner = TagInterner::default();
        let input = "<?pi data?><!-- note --><a>text<![CDATA[<fake/>]]><b/></a>";
        let t = parse_tree(input, &mut interner).unwrap();
        assert_eq!(t.len(), 2, "CDATA/PI/comment must not create nodes");
    }

    #[test]
    fn reports_mismatched_tags() {
        let mut interner = TagInterner::default();
        assert_eq!(
            parse_tree("<a><b></a></b>", &mut interner),
            Err(XmlError::Mismatch {
                expected: "b".into(),
                found: "a".into()
            })
        );
    }

    #[test]
    fn reports_truncation_and_strays() {
        let mut interner = TagInterner::default();
        assert_eq!(parse_tree("<a><b>", &mut interner), Err(XmlError::Malformed("unclosed <b>".into())));
        assert!(matches!(
            parse_tree("</a>", &mut interner),
            Err(XmlError::Malformed(_))
        ));
        assert_eq!(parse_tree("<a", &mut interner), Err(XmlError::Truncated));
    }

    #[test]
    fn missing_record_tag_yields_no_records() {
        assert!(matches!(
            dataset_from_xml("x", "<root><a/></root>", Some("Entry")),
            Err(XmlError::NoRecords)
        ));
    }

    #[test]
    fn attributes_ignored() {
        let mut interner = TagInterner::default();
        let a = parse_tree(r#"<a x="1" y="2"><b z="3"/></a>"#, &mut interner).unwrap();
        let b = parse_tree("<a><b/></a>", &mut interner).unwrap();
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.parents(), b.parents());
    }
}
