//! Seeded synthetic dataset generators.
//!
//! Stand-ins for the paper's corpora (Table I): SwissProt/Treebank trees,
//! UK/Arabic web graphs, and the RCV1 text corpus. Each generator plants an
//! explicit **cluster structure** (families of similar records — the strata
//! the framework should discover) with **Zipf-skewed cluster sizes** (the
//! statistical skew that hurts naive partitioning). Ground-truth cluster
//! ids are recorded on every item so tests can score the stratifier.
//!
//! All generators are deterministic functions of their seed.

use rand::Rng;

use crate::dataset::{DataItem, DataKind, Dataset, Payload};
use crate::text::Document;
use crate::tree::LabeledTree;

type Rng64 = rand_chacha::ChaCha8Rng;

fn rng_from(seed: u64) -> Rng64 {
    use rand_chacha::rand_core::SeedableRng;
    Rng64::seed_from_u64(seed)
}

/// A sampler for Zipf-distributed ranks `0..n` with exponent `s`.
///
/// Precomputes the CDF once; each draw is a binary search.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `n ≥ 1` ranks with exponent `s ≥ 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf support must be non-empty");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be finite, >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draw a rank in `0..n` (rank 0 is the most likely).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

// ---------------------------------------------------------------------------
// Trees
// ---------------------------------------------------------------------------

/// Configuration for the synthetic tree corpus.
#[derive(Debug, Clone)]
pub struct TreeGenConfig {
    /// Number of trees to generate.
    pub num_trees: usize,
    /// Number of ground-truth families (strata).
    pub num_families: usize,
    /// Minimum nodes per tree.
    pub min_nodes: usize,
    /// Maximum nodes per tree.
    pub max_nodes: usize,
    /// Size of the label vocabulary.
    pub label_vocab: u32,
    /// Probability a node's label is re-drawn when deriving a tree from its
    /// family template (0 = identical labels, 1 = unrelated). Applied on
    /// top of group dropout as independent per-label noise.
    pub mutation_rate: f64,
    /// Zipf exponent for family sizes (0 = uniform; ~1 = heavy skew).
    pub family_skew: f64,
    /// Template labels are partitioned into contiguous *motif groups* of
    /// this size; a member tree keeps or redraws each group atomically.
    /// Group-level dropout bounds pattern co-occurrence: pivots within one
    /// group rise and fall together (a small frequent motif), while pivots
    /// across groups co-occur only with probability `group_keep²` — so the
    /// frequent-pattern space stays motif-sized instead of exploding
    /// combinatorially, as with real XML corpora.
    pub group_size: usize,
    /// Probability a member tree keeps a template group's labels.
    pub group_keep: f64,
}

impl Default for TreeGenConfig {
    fn default() -> Self {
        TreeGenConfig {
            num_trees: 2000,
            num_families: 24,
            min_nodes: 20,
            max_nodes: 60,
            label_vocab: 400,
            mutation_rate: 0.12,
            family_skew: 0.9,
            group_size: 6,
            group_keep: 0.7,
        }
    }
}

/// Generate a clustered tree corpus.
///
/// Each family has a template tree (random parent structure + labels);
/// members copy the template and mutate a fraction of the labels plus
/// occasionally re-hang a subtree, so within-family Jaccard similarity of
/// pivot sets is high and across-family similarity is near zero.
pub fn gen_trees(cfg: &TreeGenConfig, seed: u64) -> Dataset {
    assert!(cfg.min_nodes >= 2 && cfg.max_nodes >= cfg.min_nodes);
    assert!(cfg.num_families >= 1);
    let mut rng = rng_from(seed);
    // Family templates.
    let mut templates = Vec::with_capacity(cfg.num_families);
    for f in 0..cfg.num_families {
        let n = rng.gen_range(cfg.min_nodes..=cfg.max_nodes);
        // Random recursive tree: parent(v) uniform in 0..v.
        let parent: Vec<u32> = (0..n)
            .map(|v| if v == 0 { 0 } else { rng.gen_range(0..v) as u32 })
            .collect();
        // Family label base: disjoint-ish label ranges create separation.
        let base = (f as u32 * 97) % cfg.label_vocab;
        let labels: Vec<u32> = (0..n)
            .map(|_| (base + rng.gen_range(0..cfg.label_vocab / 4)) % cfg.label_vocab)
            .collect();
        templates.push((parent, labels));
    }
    let family_dist = ZipfSampler::new(cfg.num_families, cfg.family_skew);
    let mut items = Vec::with_capacity(cfg.num_trees);
    for id in 0..cfg.num_trees {
        let fam = family_dist.sample(&mut rng);
        let (parent, labels) = &templates[fam];
        let mut labels = labels.clone();
        let mut parent = parent.clone();
        // Motif-group dropout: redraw whole label groups atomically.
        let group_size = cfg.group_size.max(1);
        for group in labels.chunks_mut(group_size) {
            if !rng.gen_bool(cfg.group_keep) {
                for l in group.iter_mut() {
                    *l = rng.gen_range(0..cfg.label_vocab);
                }
            }
        }
        // Independent per-label noise on top.
        for l in labels.iter_mut() {
            if rng.gen_bool(cfg.mutation_rate) {
                *l = rng.gen_range(0..cfg.label_vocab);
            }
        }
        // Occasionally re-hang one node (keeping parent index < node keeps
        // it a tree).
        if parent.len() > 2 && rng.gen_bool(0.3) {
            let v = rng.gen_range(1..parent.len());
            parent[v] = rng.gen_range(0..v) as u32;
        }
        let tree = LabeledTree::new(parent, labels).expect("generated structure is a tree");
        items.push(DataItem {
            id: id as u64,
            items: tree.item_set(),
            payload: Payload::Tree(tree),
            truth_cluster: Some(fam as u32),
        });
    }
    Dataset::new(format!("trees-syn-{seed}"), DataKind::Tree, items)
}

// ---------------------------------------------------------------------------
// Graphs
// ---------------------------------------------------------------------------

/// Configuration for the synthetic web-like graph.
#[derive(Debug, Clone)]
pub struct GraphGenConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of hosts (ground-truth clusters; web pages on one host link
    /// to near-identical target sets).
    pub num_hosts: usize,
    /// Mean out-degree.
    pub mean_degree: usize,
    /// Fraction of a vertex's links drawn from its host's shared hub list
    /// (high ⇒ strong within-host similarity, like real web graphs).
    pub host_affinity: f64,
    /// Zipf exponent for host sizes.
    pub host_skew: f64,
    /// Zipf exponent for global target popularity (power-law in-degree).
    pub popularity_skew: f64,
}

impl Default for GraphGenConfig {
    fn default() -> Self {
        GraphGenConfig {
            num_vertices: 8000,
            num_hosts: 32,
            mean_degree: 24,
            host_affinity: 0.8,
            host_skew: 0.8,
            popularity_skew: 1.1,
        }
    }
}

/// Generate a host-clustered, power-law web-like graph dataset (one record
/// per vertex, as in the UK/Arabic LAW corpora).
pub fn gen_graph(cfg: &GraphGenConfig, seed: u64) -> Dataset {
    assert!(cfg.num_hosts >= 1 && cfg.num_vertices >= cfg.num_hosts);
    let mut rng = rng_from(seed);
    let n = cfg.num_vertices;

    // Assign vertices to hosts with Zipf-skewed host sizes.
    let host_dist = ZipfSampler::new(cfg.num_hosts, cfg.host_skew);
    let mut host_of = vec![0u32; n];
    for h in host_of.iter_mut() {
        *h = host_dist.sample(&mut rng) as u32;
    }
    // Each host has a shared hub list: the targets its pages mostly link to.
    let hub_list_len = (cfg.mean_degree * 2).max(8);
    let global_pop = ZipfSampler::new(n, cfg.popularity_skew);
    let mut host_hubs: Vec<Vec<u32>> = Vec::with_capacity(cfg.num_hosts);
    for _ in 0..cfg.num_hosts {
        let hubs: Vec<u32> = (0..hub_list_len)
            .map(|_| global_pop.sample(&mut rng) as u32)
            .collect();
        host_hubs.push(hubs);
    }

    let mut lists: Vec<Vec<u32>> = Vec::with_capacity(n);
    for &host in host_of.iter() {
        let host = host as usize;
        // Degree: geometric-ish spread around the mean.
        let deg = 1 + rng.gen_range(0..cfg.mean_degree * 2);
        let mut list = Vec::with_capacity(deg);
        for _ in 0..deg {
            if rng.gen_bool(cfg.host_affinity) {
                let hub = host_hubs[host][rng.gen_range(0..hub_list_len)];
                list.push(hub);
            } else {
                list.push(global_pop.sample(&mut rng) as u32);
            }
        }
        lists.push(list);
    }
    let graph = crate::graph::AdjacencyGraph::from_adjacency(lists);
    let items = (0..n)
        .map(|v| DataItem {
            id: v as u64,
            items: graph.vertex_item_set(v),
            payload: Payload::Adjacency(graph.neighbors(v).to_vec()),
            truth_cluster: Some(host_of[v]),
        })
        .collect();
    Dataset::new(format!("graph-syn-{seed}"), DataKind::Graph, items)
}

// ---------------------------------------------------------------------------
// Text
// ---------------------------------------------------------------------------

/// Configuration for the synthetic RCV1-like corpus.
#[derive(Debug, Clone)]
pub struct TextGenConfig {
    /// Number of documents.
    pub num_docs: usize,
    /// Number of topics (ground-truth clusters).
    pub num_topics: usize,
    /// Vocabulary size.
    pub vocab_size: u32,
    /// Minimum tokens per document.
    pub min_len: usize,
    /// Maximum tokens per document.
    pub max_len: usize,
    /// Fraction of tokens drawn from the document's topic (vs. global
    /// background vocabulary).
    pub topic_purity: f64,
    /// Zipf exponent for topic sizes.
    pub topic_skew: f64,
    /// Zipf exponent for word frequencies within a topic.
    pub word_skew: f64,
}

impl Default for TextGenConfig {
    fn default() -> Self {
        TextGenConfig {
            num_docs: 4000,
            num_topics: 20,
            vocab_size: 20_000,
            min_len: 30,
            max_len: 120,
            topic_purity: 0.85,
            topic_skew: 0.9,
            word_skew: 1.05,
        }
    }
}

/// Generate a topic-clustered corpus with Zipfian word frequencies.
pub fn gen_text(cfg: &TextGenConfig, seed: u64) -> Dataset {
    assert!(cfg.num_topics >= 1 && cfg.vocab_size as usize >= cfg.num_topics * 4);
    assert!(cfg.min_len >= 1 && cfg.max_len >= cfg.min_len);
    let mut rng = rng_from(seed);
    let topic_dist = ZipfSampler::new(cfg.num_topics, cfg.topic_skew);
    // Each topic owns a contiguous vocab slice; words are Zipf within it.
    let slice = cfg.vocab_size / cfg.num_topics as u32;
    let word_dist = ZipfSampler::new(slice as usize, cfg.word_skew);
    let background = ZipfSampler::new(cfg.vocab_size as usize, cfg.word_skew);

    let mut items = Vec::with_capacity(cfg.num_docs);
    for id in 0..cfg.num_docs {
        let topic = topic_dist.sample(&mut rng);
        let base = topic as u32 * slice;
        let len = rng.gen_range(cfg.min_len..=cfg.max_len);
        let mut tokens = Vec::with_capacity(len);
        for _ in 0..len {
            if rng.gen_bool(cfg.topic_purity) {
                tokens.push(base + word_dist.sample(&mut rng) as u32);
            } else {
                tokens.push(background.sample(&mut rng) as u32);
            }
        }
        let doc = Document::new(tokens);
        items.push(DataItem {
            id: id as u64,
            items: doc.item_set(),
            payload: Payload::Text(doc),
            truth_cluster: Some(topic as u32),
        });
    }
    Dataset::new(format!("text-syn-{seed}"), DataKind::Text, items)
}

// ---------------------------------------------------------------------------
// Table-I presets (scaled-down synthetic equivalents)
// ---------------------------------------------------------------------------

/// Scale factor semantics: `scale = 1.0` gives laptop-friendly sizes
/// (thousands of records, seconds per experiment); the paper's corpora are
/// 1–3 orders of magnitude larger but identically structured.
fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(16)
}

/// SwissProt-like tree corpus: many medium trees, moderate families.
///
/// The mutation rate is set so family members share *small* frequent
/// fragments rather than a giant identical pivot core — matching real
/// protein-annotation trees, whose frequent subtrees are a few nodes, and
/// keeping the Apriori search space in the paper's operating regime.
pub fn swissprot_syn(seed: u64, scale: f64) -> Dataset {
    let cfg = TreeGenConfig {
        num_trees: scaled(2400, scale),
        num_families: 8,
        min_nodes: 25,
        max_nodes: 75,
        label_vocab: 500,
        mutation_rate: 0.02,
        family_skew: 0.3,
        group_size: 6,
        group_keep: 0.55,
    };
    let mut ds = gen_trees(&cfg, seed);
    ds.name = "swissprot-syn".into();
    ds
}

/// Treebank-like tree corpus: deeper recursion, skewier families (parse
/// trees of natural language are highly repetitive).
pub fn treebank_syn(seed: u64, scale: f64) -> Dataset {
    let cfg = TreeGenConfig {
        num_trees: scaled(2200, scale),
        num_families: 8,
        min_nodes: 15,
        max_nodes: 55,
        label_vocab: 300,
        mutation_rate: 0.02,
        family_skew: 0.3,
        group_size: 5,
        group_keep: 0.55,
    };
    let mut ds = gen_trees(&cfg, seed);
    ds.name = "treebank-syn".into();
    ds
}

/// UK-webgraph-like dataset: strong host locality.
pub fn uk_syn(seed: u64, scale: f64) -> Dataset {
    let cfg = GraphGenConfig {
        num_vertices: scaled(9000, scale),
        num_hosts: 36,
        mean_degree: 26,
        host_affinity: 0.85,
        host_skew: 0.9,
        popularity_skew: 1.15,
    };
    let mut ds = gen_graph(&cfg, seed);
    ds.name = "uk-syn".into();
    ds
}

/// Arabic-webgraph-like dataset: larger and denser than UK.
pub fn arabic_syn(seed: u64, scale: f64) -> Dataset {
    let cfg = GraphGenConfig {
        num_vertices: scaled(13_000, scale),
        num_hosts: 44,
        mean_degree: 36,
        host_affinity: 0.82,
        host_skew: 0.85,
        popularity_skew: 1.1,
    };
    let mut ds = gen_graph(&cfg, seed);
    ds.name = "arabic-syn".into();
    ds
}

/// RCV1-like news corpus.
pub fn rcv1_syn(seed: u64, scale: f64) -> Dataset {
    let cfg = TextGenConfig {
        num_docs: scaled(5000, scale),
        num_topics: 24,
        vocab_size: 24_000,
        min_len: 40,
        max_len: 160,
        topic_purity: 0.85,
        topic_skew: 0.95,
        word_skew: 1.05,
    };
    let mut ds = gen_text(&cfg, seed);
    ds.name = "rcv1-syn".into();
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_rank0_most_frequent() {
        let z = ZipfSampler::new(50, 1.0);
        let mut rng = rng_from(3);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[49] * 5);
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = rng_from(4);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 5000.0).abs() < 600.0, "not uniform: {counts:?}");
        }
    }

    #[test]
    fn tree_gen_is_deterministic() {
        let cfg = TreeGenConfig {
            num_trees: 50,
            ..TreeGenConfig::default()
        };
        let a = gen_trees(&cfg, 7);
        let b = gen_trees(&cfg, 7);
        assert_eq!(a.items.len(), b.items.len());
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.items, y.items);
            assert_eq!(x.truth_cluster, y.truth_cluster);
        }
    }

    #[test]
    fn tree_gen_seed_changes_output() {
        let cfg = TreeGenConfig {
            num_trees: 30,
            ..TreeGenConfig::default()
        };
        let a = gen_trees(&cfg, 1);
        let b = gen_trees(&cfg, 2);
        assert!(a.items.iter().zip(&b.items).any(|(x, y)| x.items != y.items));
    }

    #[test]
    fn tree_families_are_separable() {
        // Within-family Jaccard must exceed across-family on average —
        // otherwise the stratifier has nothing to find.
        let cfg = TreeGenConfig {
            num_trees: 120,
            num_families: 4,
            ..TreeGenConfig::default()
        };
        let ds = gen_trees(&cfg, 11);
        let mut within = Vec::new();
        let mut across = Vec::new();
        for i in 0..ds.items.len().min(60) {
            for j in (i + 1)..ds.items.len().min(60) {
                let sim = ds.items[i].items.jaccard(&ds.items[j].items);
                if ds.items[i].truth_cluster == ds.items[j].truth_cluster {
                    within.push(sim);
                } else {
                    across.push(sim);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&within) > mean(&across) + 0.1,
            "within {} vs across {}",
            mean(&within),
            mean(&across)
        );
    }

    #[test]
    fn graph_gen_host_locality() {
        let cfg = GraphGenConfig {
            num_vertices: 400,
            num_hosts: 4,
            ..GraphGenConfig::default()
        };
        let ds = gen_graph(&cfg, 5);
        assert_eq!(ds.len(), 400);
        let mut within = Vec::new();
        let mut across = Vec::new();
        for i in (0..200).step_by(3) {
            for j in ((i + 1)..200).step_by(7) {
                let sim = ds.items[i].items.jaccard(&ds.items[j].items);
                if ds.items[i].truth_cluster == ds.items[j].truth_cluster {
                    within.push(sim);
                } else {
                    across.push(sim);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(mean(&within) > mean(&across));
    }

    #[test]
    fn text_gen_topic_structure() {
        let cfg = TextGenConfig {
            num_docs: 200,
            num_topics: 5,
            ..TextGenConfig::default()
        };
        let ds = gen_text(&cfg, 9);
        assert_eq!(ds.len(), 200);
        assert!(ds.items.iter().all(|i| !i.items.is_empty()));
        // Zipf-skewed topics: topic 0 should dominate.
        let t0 = ds
            .items
            .iter()
            .filter(|i| i.truth_cluster == Some(0))
            .count();
        assert!(t0 > 200 / 5, "topic skew missing: {t0}");
    }

    #[test]
    fn presets_have_expected_kinds_and_sizes() {
        let s = swissprot_syn(1, 0.02);
        assert_eq!(s.kind, DataKind::Tree);
        assert!(s.len() >= 16);
        let u = uk_syn(1, 0.01);
        assert_eq!(u.kind, DataKind::Graph);
        let r = rcv1_syn(1, 0.01);
        assert_eq!(r.kind, DataKind::Text);
        assert_eq!(r.name, "rcv1-syn");
    }

    #[test]
    fn skewed_family_sizes() {
        let cfg = TreeGenConfig {
            num_trees: 600,
            num_families: 10,
            family_skew: 1.0,
            ..TreeGenConfig::default()
        };
        let ds = gen_trees(&cfg, 13);
        let mut counts = vec![0usize; 10];
        for it in &ds.items {
            counts[it.truth_cluster.unwrap() as usize] += 1;
        }
        assert!(counts[0] > counts[9], "family sizes should be skewed: {counts:?}");
    }
}
