//! Datasets: uniform containers of itemized records.
//!
//! A [`Dataset`] is what the framework's pipeline consumes: a named list of
//! [`DataItem`]s, each carrying its typed payload (for the workloads) and
//! its universal [`ItemSet`] (for sketching/stratification). For synthetic
//! datasets each item also records the ground-truth cluster it was generated
//! from, which the stratification tests use as a reference labeling.

use crate::graph::AdjacencyGraph;
use crate::item::ItemSet;
use crate::text::Document;
use crate::tree::LabeledTree;

/// The domain a dataset comes from (paper Table I: Tree / Graph / Text).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataKind {
    /// Labeled trees (SwissProt, Treebank).
    Tree,
    /// Per-vertex adjacency records (UK, Arabic web graphs).
    Graph,
    /// Documents (RCV1).
    Text,
}

impl std::fmt::Display for DataKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataKind::Tree => write!(f, "tree"),
            DataKind::Graph => write!(f, "graph"),
            DataKind::Text => write!(f, "text"),
        }
    }
}

/// The typed payload of a record.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A labeled tree.
    Tree(LabeledTree),
    /// One vertex's sorted adjacency list.
    Adjacency(Vec<u32>),
    /// A document's token stream.
    Text(Document),
}

impl Payload {
    /// Byte serialization of the payload — the unit the KV store holds and
    /// the compression workloads consume.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Payload::Tree(t) => t.to_bytes(),
            Payload::Adjacency(ns) => {
                let mut out = Vec::with_capacity(4 + 4 * ns.len());
                out.extend_from_slice(&(ns.len() as u32).to_le_bytes());
                for &n in ns {
                    out.extend_from_slice(&n.to_le_bytes());
                }
                out
            }
            Payload::Text(d) => d.to_bytes(),
        }
    }

    /// Abstract size of the payload in "elements" (nodes, neighbors,
    /// tokens) — used by size-sensitive cost accounting.
    pub fn element_count(&self) -> usize {
        match self {
            Payload::Tree(t) => t.len(),
            Payload::Adjacency(ns) => ns.len().max(1),
            Payload::Text(d) => d.len().max(1),
        }
    }
}

/// One distributable record.
#[derive(Debug, Clone, PartialEq)]
pub struct DataItem {
    /// Stable id, unique within the dataset.
    pub id: u64,
    /// Universal set representation (hashed pivots / neighbors / words).
    pub items: ItemSet,
    /// The typed original.
    pub payload: Payload,
    /// Ground-truth generator cluster (`None` for loaded real data). Used
    /// only by tests and quality metrics, never by the framework itself.
    pub truth_cluster: Option<u32>,
}

/// A named, homogeneous collection of records.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name (e.g. `"treebank-syn"`).
    pub name: String,
    /// Data domain.
    pub kind: DataKind,
    /// The records.
    pub items: Vec<DataItem>,
}

impl Dataset {
    /// Construct a dataset, assigning ids `0..n` if items carry `id = 0`
    /// placeholders is the caller's concern; this constructor trusts ids.
    pub fn new(name: impl Into<String>, kind: DataKind, items: Vec<DataItem>) -> Self {
        Dataset {
            name: name.into(),
            kind,
            items,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the dataset has no records.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total element count across payloads (paper Table I's "Nodes"/"docs"
    /// scale column).
    pub fn total_elements(&self) -> usize {
        self.items.iter().map(|i| i.payload.element_count()).sum()
    }

    /// Total serialized size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.items.iter().map(|i| i.payload.to_bytes().len()).sum()
    }

    /// Item sets of all records, in record order (borrowed).
    pub fn item_sets(&self) -> Vec<&ItemSet> {
        self.items.iter().map(|i| &i.items).collect()
    }

    /// Build a graph dataset: one record per vertex.
    pub fn from_graph(name: impl Into<String>, graph: &AdjacencyGraph) -> Self {
        let items = (0..graph.num_nodes())
            .map(|v| DataItem {
                id: v as u64,
                items: graph.vertex_item_set(v),
                payload: Payload::Adjacency(graph.neighbors(v).to_vec()),
                truth_cluster: None,
            })
            .collect();
        Dataset::new(name, DataKind::Graph, items)
    }

    /// Build a text dataset from documents.
    pub fn from_documents(name: impl Into<String>, docs: Vec<Document>) -> Self {
        let items = docs
            .into_iter()
            .enumerate()
            .map(|(i, d)| DataItem {
                id: i as u64,
                items: d.item_set(),
                payload: Payload::Text(d),
                truth_cluster: None,
            })
            .collect();
        Dataset::new(name, DataKind::Text, items)
    }

    /// Build a tree dataset from trees.
    pub fn from_trees(name: impl Into<String>, trees: Vec<LabeledTree>) -> Self {
        let items = trees
            .into_iter()
            .enumerate()
            .map(|(i, t)| DataItem {
                id: i as u64,
                items: t.item_set(),
                payload: Payload::Tree(t),
                truth_cluster: None,
            })
            .collect();
        Dataset::new(name, DataKind::Tree, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_documents_assigns_ids_and_item_sets() {
        let ds = Dataset::from_documents(
            "t",
            vec![Document::new(vec![1, 2]), Document::new(vec![2, 3])],
        );
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.kind, DataKind::Text);
        assert_eq!(ds.items[0].id, 0);
        assert_eq!(ds.items[1].id, 1);
        assert_eq!(ds.items[1].items.as_slice(), &[2, 3]);
        assert_eq!(ds.total_elements(), 4);
    }

    #[test]
    fn from_graph_one_record_per_vertex() {
        let g = AdjacencyGraph::from_adjacency(vec![vec![1], vec![0], vec![0, 1]]);
        let ds = Dataset::from_graph("g", &g);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.kind, DataKind::Graph);
        match &ds.items[2].payload {
            Payload::Adjacency(ns) => assert_eq!(ns, &[0, 1]),
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn payload_bytes_nonempty() {
        let p = Payload::Adjacency(vec![1, 2, 3]);
        assert_eq!(p.to_bytes().len(), 16);
        assert_eq!(p.element_count(), 3);
    }

    #[test]
    fn dataset_totals() {
        let ds = Dataset::from_documents("x", vec![Document::new(vec![9; 10])]);
        assert_eq!(ds.total_elements(), 10);
        assert_eq!(ds.total_bytes(), 4 + 40);
    }
}
