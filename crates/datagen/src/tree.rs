//! Labeled trees, Prüfer encoding, and LCA-pivot extraction (§III-C step 1).
//!
//! A tree is itemized in two steps, following the paper (after Tatikonda &
//! Parthasarathy, ICDE 2010):
//!
//! 1. The tree is canonically represented through its **Prüfer sequence**.
//! 2. **Pivots** `(a, p, q)` are extracted, where `a` is the *least common
//!    ancestor* (in label space) of node pair `(p, q)`; the set of hashed
//!    pivots is the tree's [`ItemSet`](crate::item::ItemSet).
//!
//! Pivot pairs are drawn from consecutive entries of the Prüfer-order leaf
//! sequence, which keeps extraction linear in tree size while remaining
//! sensitive to both structure and labels.

use crate::item::{hash_triple, ItemSet};
use std::fmt;

/// Errors from tree construction or Prüfer decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The parent array does not describe a single rooted tree.
    NotATree(String),
    /// Prüfer decoding needs a sequence over nodes `0..n` with `n = len+2`.
    InvalidPrufer(String),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::NotATree(m) => write!(f, "not a tree: {m}"),
            TreeError::InvalidPrufer(m) => write!(f, "invalid Prüfer sequence: {m}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A pivot triple `(ancestor_label, label_p, label_q)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pivot {
    /// Label of the least common ancestor of `p` and `q`.
    pub ancestor: u32,
    /// Label of the first descendant.
    pub p: u32,
    /// Label of the second descendant.
    pub q: u32,
}

impl Pivot {
    /// Hash the pivot into the universal item space. The descendant pair is
    /// order-normalized so `(a,p,q)` and `(a,q,p)` are the same item.
    pub fn to_item(self) -> u64 {
        let (lo, hi) = if self.p <= self.q {
            (self.p, self.q)
        } else {
            (self.q, self.p)
        };
        hash_triple(self.ancestor, lo, hi)
    }
}

/// A rooted labeled tree stored as a parent array.
///
/// Node `0` is the root (`parent[0]` is ignored); `parent[v] < v` is *not*
/// required, but the parent pointers must form a tree rooted at 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledTree {
    /// `parent[v]` is the parent of node `v`; `parent[0]` is `0` by
    /// convention.
    parent: Vec<u32>,
    /// `labels[v]` is the label of node `v`.
    labels: Vec<u32>,
    /// `depth[v]` (root = 0), precomputed for LCA walks.
    depth: Vec<u32>,
}

impl LabeledTree {
    /// Build a tree from a parent array and labels.
    pub fn new(parent: Vec<u32>, labels: Vec<u32>) -> Result<Self, TreeError> {
        let n = parent.len();
        if n == 0 {
            return Err(TreeError::NotATree("empty".into()));
        }
        if labels.len() != n {
            return Err(TreeError::NotATree(format!(
                "{} labels for {} nodes",
                labels.len(),
                n
            )));
        }
        if n > u32::MAX as usize {
            return Err(TreeError::NotATree("too many nodes".into()));
        }
        // Compute depths; detect cycles / unreachable nodes with a visited
        // walk that path-compresses into `depth`.
        let mut depth = vec![u32::MAX; n];
        depth[0] = 0;
        for v in 0..n {
            if depth[v] != u32::MAX {
                continue;
            }
            // Walk up to a node with a known depth.
            let mut path = Vec::new();
            let mut cur = v;
            while depth[cur] == u32::MAX {
                path.push(cur);
                let p = parent[cur] as usize;
                if p >= n {
                    return Err(TreeError::NotATree(format!("parent {p} out of range")));
                }
                if p == cur {
                    return Err(TreeError::NotATree(format!(
                        "node {cur} is its own parent but is not the root"
                    )));
                }
                if path.len() > n {
                    return Err(TreeError::NotATree("cycle detected".into()));
                }
                cur = p;
            }
            let mut d = depth[cur];
            for &u in path.iter().rev() {
                d += 1;
                depth[u] = d;
            }
        }
        Ok(LabeledTree {
            parent,
            labels,
            depth,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True for the (disallowed) empty tree; always false for constructed
    /// trees, provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Node labels.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Parent array (entry 0 is the root's self-loop by convention).
    pub fn parents(&self) -> &[u32] {
        &self.parent
    }

    /// Least common ancestor of nodes `u` and `v` (indices), by the
    /// classic depth-equalizing walk. `O(depth)` per query — fine for the
    /// small record trees handled here.
    pub fn lca(&self, mut u: usize, mut v: usize) -> usize {
        while self.depth[u] > self.depth[v] {
            u = self.parent[u] as usize;
        }
        while self.depth[v] > self.depth[u] {
            v = self.parent[v] as usize;
        }
        while u != v {
            u = self.parent[u] as usize;
            v = self.parent[v] as usize;
        }
        u
    }

    /// Extract the pivot set (paper §III-C step 1).
    ///
    /// Pairs are formed from consecutive nodes of the Prüfer *leaf order*
    /// (the order in which leaves are pruned during encoding), plus
    /// consecutive entries of the Prüfer sequence itself. This gives
    /// `O(n)` pivots per tree covering both deep and shallow structure.
    pub fn pivots(&self) -> Vec<Pivot> {
        let n = self.len();
        if n == 1 {
            // Degenerate: a single node has no pairs; emit a self pivot so
            // the item set is non-empty.
            let l = self.labels[0];
            return vec![Pivot {
                ancestor: l,
                p: l,
                q: l,
            }];
        }
        let (seq, prune_order) = prufer_encode_with_order(self);
        let mut pivots = Vec::with_capacity(2 * n);
        // Consecutive pruned leaves.
        for w in prune_order.windows(2) {
            let (u, v) = (w[0], w[1]);
            let a = self.lca(u, v);
            pivots.push(Pivot {
                ancestor: self.labels[a],
                p: self.labels[u],
                q: self.labels[v],
            });
        }
        // Consecutive Prüfer entries (internal structure).
        for w in seq.windows(2) {
            let (u, v) = (w[0] as usize, w[1] as usize);
            let a = self.lca(u, v);
            pivots.push(Pivot {
                ancestor: self.labels[a],
                p: self.labels[u],
                q: self.labels[v],
            });
        }
        if pivots.is_empty() {
            // n = 2: no consecutive pairs exist; fall back to the edge.
            pivots.push(Pivot {
                ancestor: self.labels[0],
                p: self.labels[0],
                q: self.labels[1 % n],
            });
        }
        pivots
    }

    /// The tree's universal-set representation: hashed pivots.
    pub fn item_set(&self) -> ItemSet {
        self.pivots().iter().map(|p| p.to_item()).collect()
    }

    /// Serialize to bytes: `[n, parent…, label…]` little-endian `u32`s.
    /// Used by the byte-oriented KV storage layout and LZ77 workload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.len() as u32;
        let mut out = Vec::with_capacity(4 + 8 * self.len());
        out.extend_from_slice(&n.to_le_bytes());
        for &p in &self.parent {
            out.extend_from_slice(&p.to_le_bytes());
        }
        for &l in &self.labels {
            out.extend_from_slice(&l.to_le_bytes());
        }
        out
    }
}

/// Prüfer-encode a tree of `n ≥ 2` nodes into its length `n−2` sequence.
///
/// The tree is treated as unrooted for encoding (standard Prüfer); labels
/// play no role here. Returns the sequence of node indices.
pub fn prufer_encode(tree: &LabeledTree) -> Vec<u32> {
    prufer_encode_with_order(tree).0
}

/// Prüfer encoding that also returns the leaf-pruning order (used for pivot
/// extraction). For `n < 2` both vectors are empty; for `n = 2` the
/// sequence is empty and the order contains one leaf.
fn prufer_encode_with_order(tree: &LabeledTree) -> (Vec<u32>, Vec<usize>) {
    let n = tree.len();
    if n < 2 {
        return (Vec::new(), Vec::new());
    }
    // Build undirected degree counts from the parent array.
    let mut degree = vec![0u32; n];
    for v in 1..n {
        degree[v] += 1;
        degree[tree.parent[v] as usize] += 1;
    }
    // Adjacency via parent pointers: neighbors(v) = parent(v) ∪ children(v).
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 1..n {
        children[tree.parent[v] as usize].push(v as u32);
    }
    let mut removed = vec![false; n];
    let mut seq = Vec::with_capacity(n.saturating_sub(2));
    let mut order = Vec::with_capacity(n.saturating_sub(2) + 1);
    // Min-heap of current leaves (classic O(n log n) encoding).
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for _ in 0..n - 2 {
        let leaf = loop {
            let std::cmp::Reverse(v) = heap.pop().expect("tree always has a leaf");
            if !removed[v] && degree[v] == 1 {
                break v;
            }
        };
        removed[leaf] = true;
        order.push(leaf);
        // The unique remaining neighbor.
        let neighbor = neighbor_of(tree, &children, &removed, leaf);
        seq.push(neighbor as u32);
        degree[leaf] -= 1;
        degree[neighbor] -= 1;
        if degree[neighbor] == 1 {
            heap.push(std::cmp::Reverse(neighbor));
        }
    }
    // Record one of the two remaining nodes for the pruning order.
    if let Some(last_leaf) = (0..n).find(|&v| !removed[v] && degree[v] == 1) {
        order.push(last_leaf);
    }
    (seq, order)
}

fn neighbor_of(
    tree: &LabeledTree,
    children: &[Vec<u32>],
    removed: &[bool],
    v: usize,
) -> usize {
    if v != 0 {
        let p = tree.parent[v] as usize;
        if !removed[p] {
            return p;
        }
    }
    children[v]
        .iter()
        .map(|&c| c as usize)
        .find(|&c| !removed[c])
        .expect("leaf has exactly one live neighbor")
}

/// Decode a Prüfer sequence over nodes `0..n` (where `n = seq.len() + 2`)
/// into a tree rooted at node `n−1`, assigning the given labels.
pub fn prufer_decode(seq: &[u32], labels: Vec<u32>) -> Result<LabeledTree, TreeError> {
    let n = seq.len() + 2;
    if labels.len() != n {
        return Err(TreeError::InvalidPrufer(format!(
            "{} labels for {} nodes",
            labels.len(),
            n
        )));
    }
    if seq.iter().any(|&s| s as usize >= n) {
        return Err(TreeError::InvalidPrufer("entry out of range".into()));
    }
    let mut degree = vec![1u32; n];
    for &s in seq {
        degree[s as usize] += 1;
    }
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    // Build undirected edges, then root at n-1.
    let mut edges = Vec::with_capacity(n - 1);
    for &s in seq {
        let std::cmp::Reverse(leaf) = heap.pop().expect("valid sequence has a leaf");
        edges.push((leaf, s as usize));
        degree[leaf] -= 1;
        degree[s as usize] -= 1;
        if degree[s as usize] == 1 {
            heap.push(std::cmp::Reverse(s as usize));
        }
    }
    let std::cmp::Reverse(u) = heap.pop().expect("two nodes remain");
    let std::cmp::Reverse(v) = heap.pop().expect("two nodes remain");
    edges.push((u, v));

    // Root the undirected tree at node 0 with a BFS.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in &edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut parent = vec![0u32; n];
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[0] = true;
    queue.push_back(0usize);
    while let Some(x) = queue.pop_front() {
        for &y in &adj[x] {
            if !visited[y] {
                visited[y] = true;
                parent[y] = x as u32;
                queue.push_back(y);
            }
        }
    }
    if visited.iter().any(|&v| !v) {
        return Err(TreeError::InvalidPrufer("decoded graph is disconnected".into()));
    }
    LabeledTree::new(parent, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small fixed tree:
    /// ```text
    ///        0
    ///       / \
    ///      1   2
    ///     / \   \
    ///    3   4   5
    /// ```
    fn sample_tree() -> LabeledTree {
        LabeledTree::new(vec![0, 0, 0, 1, 1, 2], vec![10, 11, 12, 13, 14, 15]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(LabeledTree::new(vec![], vec![]).is_err());
        assert!(LabeledTree::new(vec![0, 0], vec![1]).is_err());
        // Cycle 1 -> 2 -> 1.
        assert!(LabeledTree::new(vec![0, 2, 1], vec![0, 0, 0]).is_err());
        // Out-of-range parent.
        assert!(LabeledTree::new(vec![0, 9], vec![0, 0]).is_err());
        // Self-parent at non-root.
        assert!(LabeledTree::new(vec![0, 1], vec![0, 0]).is_err());
    }

    #[test]
    fn depths_and_lca() {
        let t = sample_tree();
        assert_eq!(t.lca(3, 4), 1);
        assert_eq!(t.lca(3, 5), 0);
        assert_eq!(t.lca(1, 4), 1);
        assert_eq!(t.lca(0, 5), 0);
        assert_eq!(t.lca(2, 2), 2);
    }

    #[test]
    fn prufer_encode_known_value() {
        // Path 0-1-2-3 (parents: 1->0, 2->1, 3->2). Classic Prüfer of a
        // path prunes leaf 0 first (neighbor 1), then leaf 1 (neighbor 2):
        // sequence [1, 2].
        let t = LabeledTree::new(vec![0, 0, 1, 2], vec![0, 1, 2, 3]).unwrap();
        assert_eq!(prufer_encode(&t), vec![1, 2]);
    }

    #[test]
    fn prufer_star_encodes_to_center() {
        // Star centered at 0 with leaves 1..=4 -> sequence [0, 0, 0].
        let t = LabeledTree::new(vec![0, 0, 0, 0, 0], vec![9; 5]).unwrap();
        assert_eq!(prufer_encode(&t), vec![0, 0, 0]);
    }

    #[test]
    fn prufer_roundtrip_preserves_edge_set() {
        let t = sample_tree();
        let seq = prufer_encode(&t);
        let t2 = prufer_decode(&seq, t.labels().to_vec()).unwrap();
        // Same undirected edge multiset.
        let edges = |t: &LabeledTree| {
            let mut e: Vec<(usize, usize)> = (1..t.len())
                .map(|v| {
                    let p = t.parents()[v] as usize;
                    (p.min(v), p.max(v))
                })
                .collect();
            e.sort_unstable();
            e
        };
        assert_eq!(edges(&t), edges(&t2));
    }

    #[test]
    fn prufer_decode_rejects_bad_input() {
        assert!(prufer_decode(&[5], vec![0, 0, 0]).is_err());
        assert!(prufer_decode(&[0], vec![0, 0]).is_err());
    }

    #[test]
    fn pivots_nonempty_and_deterministic() {
        let t = sample_tree();
        let p1 = t.pivots();
        let p2 = t.pivots();
        assert!(!p1.is_empty());
        assert_eq!(p1, p2);
    }

    #[test]
    fn pivot_item_is_pair_symmetric() {
        let a = Pivot {
            ancestor: 1,
            p: 2,
            q: 3,
        };
        let b = Pivot {
            ancestor: 1,
            p: 3,
            q: 2,
        };
        assert_eq!(a.to_item(), b.to_item());
    }

    #[test]
    fn similar_trees_have_similar_item_sets() {
        let t1 = sample_tree();
        // Same structure, one label changed.
        let mut labels = t1.labels().to_vec();
        labels[5] = 99;
        let t2 = LabeledTree::new(t1.parents().to_vec(), labels).unwrap();
        // A completely different tree (path with different labels).
        let t3 = LabeledTree::new(vec![0, 0, 1, 2, 3, 4], vec![70, 71, 72, 73, 74, 75]).unwrap();
        let (s1, s2, s3) = (t1.item_set(), t2.item_set(), t3.item_set());
        assert!(s1.jaccard(&s2) > s1.jaccard(&s3));
        assert_eq!(s1.jaccard(&s3), 0.0);
    }

    #[test]
    fn single_node_tree_itemizes() {
        let t = LabeledTree::new(vec![0], vec![7]).unwrap();
        assert_eq!(t.item_set().len(), 1);
    }

    #[test]
    fn two_node_tree_pivots() {
        let t = LabeledTree::new(vec![0, 0], vec![1, 2]).unwrap();
        // No consecutive pairs exist for n = 2; the edge fallback must keep
        // the item set non-empty.
        assert!(!t.item_set().is_empty());
    }

    #[test]
    fn to_bytes_layout() {
        let t = LabeledTree::new(vec![0, 0], vec![5, 6]).unwrap();
        let b = t.to_bytes();
        assert_eq!(b.len(), 4 + 2 * 4 + 2 * 4);
        assert_eq!(&b[0..4], &2u32.to_le_bytes());
    }
}
