//! Property-based tests for the data model: ItemSet algebra against a
//! HashSet reference, Prüfer codec invariants, LCA correctness on random
//! trees, and serialization roundtrips.

use std::collections::HashSet;

use proptest::prelude::*;

use pareto_datagen::{prufer_decode, prufer_encode, Document, ItemSet, LabeledTree};

/// A random tree given as its parent array (parent[v] < v guarantees
/// acyclicity) plus labels.
fn random_tree() -> impl Strategy<Value = LabeledTree> {
    (2usize..40).prop_flat_map(|n| {
        let parents: Vec<BoxedStrategy<u32>> = (0..n)
            .map(|v| {
                if v == 0 {
                    Just(0u32).boxed()
                } else {
                    (0..v as u32).boxed()
                }
            })
            .collect();
        let labels = proptest::collection::vec(0u32..50, n);
        (parents, labels).prop_map(|(parent, labels)| {
            LabeledTree::new(parent, labels).expect("parent[v] < v is a tree")
        })
    })
}

proptest! {
    /// ItemSet set algebra matches std HashSet.
    #[test]
    fn itemset_matches_hashset(
        a in proptest::collection::vec(0u64..200, 0..64),
        b in proptest::collection::vec(0u64..200, 0..64),
    ) {
        let sa = ItemSet::from_items(a.clone());
        let sb = ItemSet::from_items(b.clone());
        let ha: HashSet<u64> = a.into_iter().collect();
        let hb: HashSet<u64> = b.into_iter().collect();
        prop_assert_eq!(sa.len(), ha.len());
        prop_assert_eq!(sa.intersection_size(&sb), ha.intersection(&hb).count());
        prop_assert_eq!(sa.union_size(&sb), ha.union(&hb).count());
        let expected_j = if ha.union(&hb).count() == 0 {
            1.0
        } else {
            ha.intersection(&hb).count() as f64 / ha.union(&hb).count() as f64
        };
        prop_assert!((sa.jaccard(&sb) - expected_j).abs() < 1e-12);
        for item in &ha {
            prop_assert!(sa.contains(*item));
        }
    }

    /// ItemSet byte serialization roundtrips.
    #[test]
    fn itemset_bytes_roundtrip(items in proptest::collection::vec(any::<u64>(), 0..64)) {
        let s = ItemSet::from_items(items);
        prop_assert_eq!(ItemSet::from_bytes(&s.to_bytes()).unwrap(), s);
    }

    /// Prüfer encode/decode preserves the undirected edge set of any tree.
    #[test]
    fn prufer_roundtrip(tree in random_tree()) {
        let seq = prufer_encode(&tree);
        prop_assert_eq!(seq.len(), tree.len() - 2);
        let decoded = prufer_decode(&seq, tree.labels().to_vec()).unwrap();
        let edges = |t: &LabeledTree| -> Vec<(usize, usize)> {
            let mut e: Vec<(usize, usize)> = (1..t.len())
                .map(|v| {
                    let p = t.parents()[v] as usize;
                    (p.min(v), p.max(v))
                })
                .collect();
            e.sort_unstable();
            e
        };
        prop_assert_eq!(edges(&tree), edges(&decoded));
    }

    /// LCA agrees with a brute-force ancestor-set computation.
    #[test]
    fn lca_matches_bruteforce(tree in random_tree(), pair in any::<(u32, u32)>()) {
        let n = tree.len();
        let u = pair.0 as usize % n;
        let v = pair.1 as usize % n;
        let ancestors = |mut x: usize| -> Vec<usize> {
            let mut path = vec![x];
            while x != 0 {
                x = tree.parents()[x] as usize;
                path.push(x);
            }
            path
        };
        let au = ancestors(u);
        let av: std::collections::HashSet<usize> = ancestors(v).into_iter().collect();
        let expected = *au.iter().find(|a| av.contains(a)).expect("root is common");
        prop_assert_eq!(tree.lca(u, v), expected);
        prop_assert_eq!(tree.lca(v, u), expected);
    }

    /// Pivot item sets are non-empty and invariant across calls.
    #[test]
    fn pivots_stable(tree in random_tree()) {
        let s1 = tree.item_set();
        let s2 = tree.item_set();
        prop_assert!(!s1.is_empty());
        prop_assert_eq!(s1, s2);
    }

    /// Identical label/structure ⇒ identical item sets; relabeling the
    /// whole tree changes them (with overwhelming likelihood).
    #[test]
    fn pivots_label_sensitive(tree in random_tree()) {
        let shifted = LabeledTree::new(
            tree.parents().to_vec(),
            tree.labels().iter().map(|&l| l + 1000).collect(),
        ).unwrap();
        prop_assert_eq!(tree.item_set().jaccard(&tree.item_set()), 1.0);
        prop_assert!(tree.item_set().jaccard(&shifted.item_set()) < 0.5);
    }

    /// Document itemization: every token id appears, deduplicated.
    #[test]
    fn document_itemization(tokens in proptest::collection::vec(0u32..1000, 0..200)) {
        let d = Document::new(tokens.clone());
        let set = d.item_set();
        if tokens.is_empty() {
            prop_assert_eq!(set.len(), 1); // sentinel
        } else {
            let distinct: HashSet<u32> = tokens.iter().copied().collect();
            prop_assert_eq!(set.len(), distinct.len());
            for t in distinct {
                prop_assert!(set.contains(t as u64));
            }
        }
    }
}
