//! Client-side retry: seeded exponential backoff with deterministic
//! jitter.
//!
//! The delay for attempt `a` of request `r` is a *pure function* of
//! `(policy, r, a)` — the jitter comes from the same splitmix-style hash
//! the fault injector uses ([`pareto_cluster::fault::raw_draw`]), not
//! from an ambient RNG — so a replayed traffic trace retries at exactly
//! the same (simulated) instants and the soak summary is bit-identical
//! across runs.

use pareto_cluster::fault::raw_draw;

/// Backoff policy. Delays are in abstract time units: sim ticks in the
/// soak harness, milliseconds in the live client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: u64,
    /// Hard cap applied after the exponential growth and jitter.
    pub max_delay: u64,
    /// Total attempts (first try included); `attempts = 1` disables
    /// retries.
    pub attempts: u32,
    /// Seed for the jitter hash.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { base: 4, max_delay: 256, attempts: 4, seed: 0x52_45_54_52 }
    }
}

impl RetryPolicy {
    /// Whether attempt number `attempt` (0-based: 0 is the first try)
    /// may run at all.
    pub fn may_attempt(&self, attempt: u32) -> bool {
        attempt < self.attempts
    }

    /// Delay to wait *before* retry number `retry` (1-based: 1 follows
    /// the first failure) of request `request_id`.
    ///
    /// Full jitter over an exponentially growing window:
    /// `delay = 1 + hash(seed, request_id, retry) % (base << (retry-1))`,
    /// capped at `max_delay`. The `1 +` keeps every delay strictly
    /// positive so a retry never lands at the same instant as the
    /// failure that caused it.
    pub fn backoff_delay(&self, request_id: u64, retry: u32) -> u64 {
        let retry = retry.max(1);
        let window = self
            .base
            .max(1)
            .saturating_mul(1u64.checked_shl(retry - 1).unwrap_or(u64::MAX))
            .min(self.max_delay.max(1));
        let jitter = raw_draw(self.seed, request_id as usize, u64::from(retry)) % window;
        (1 + jitter).min(self.max_delay.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic_and_positive() {
        let p = RetryPolicy::default();
        for req in 0..50u64 {
            for retry in 1..=5u32 {
                let a = p.backoff_delay(req, retry);
                let b = p.backoff_delay(req, retry);
                assert_eq!(a, b);
                assert!(a >= 1);
                assert!(a <= p.max_delay);
            }
        }
    }

    #[test]
    fn windows_grow_exponentially() {
        let p = RetryPolicy { base: 4, max_delay: 1 << 30, attempts: 8, seed: 9 };
        // The jitter window for retry r is base << (r-1); sampled maxima
        // over many requests should approach it and never exceed it.
        for retry in 1..=6u32 {
            let window = 4u64 << (retry - 1);
            let max_seen = (0..2000u64)
                .map(|req| p.backoff_delay(req, retry))
                .max()
                .unwrap();
            assert!(max_seen <= window);
            assert!(max_seen > window / 2, "window {window}, saw {max_seen}");
        }
    }

    #[test]
    fn attempts_budget() {
        let p = RetryPolicy { attempts: 3, ..RetryPolicy::default() };
        assert!(p.may_attempt(0));
        assert!(p.may_attempt(2));
        assert!(!p.may_attempt(3));
    }

    #[test]
    fn different_requests_get_different_jitter() {
        let p = RetryPolicy::default();
        let delays: std::collections::BTreeSet<u64> =
            (0..32u64).map(|req| p.backoff_delay(req, 3)).collect();
        assert!(delays.len() > 1, "jitter collapsed to one value");
    }
}
