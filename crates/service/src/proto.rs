//! Request/response messages carried inside [`crate::codec`] frames.
//!
//! The protocol is deliberately small: a tenant asks for a plan at some
//! α (optionally after appending synthetic records — the "replan" path),
//! and gets back exactly one of *served*, *shed*, or a typed *error*.
//! Degraded service is not a fourth terminal state on the wire: a
//! degraded response is a [`Response::Served`] with `degraded: true` and
//! the `source_digest` of the cached plan it was lifted from, so clients
//! handle it with the same code path as a fresh plan.
//!
//! Encoding is bit-exact (floats travel as IEEE-754 bit patterns), so
//! `decode(encode(m)) == m` byte-for-byte — pinned by the round-trip
//! tests and proptests in this module.

use crate::codec::{CodecError, PayloadReader, PayloadWriter};

/// What the client wants planned.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// Plan the tenant's dataset at scalarization weight `alpha`.
    Plan {
        /// Scalarization weight in `[0, 1]`.
        alpha: f64,
    },
    /// Append `append` synthetic records to the tenant's dataset, then
    /// plan at `alpha` — the incremental-replan path.
    Replan {
        /// Records to append before planning.
        append: u32,
        /// Scalarization weight in `[0, 1]`.
        alpha: f64,
    },
}

/// One plan request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// Tenant name; sessions, breakers, and datasets are per-tenant.
    pub tenant: String,
    /// Cooperative deadline in stage-budget units (`0` = none): the
    /// number of planning stages the request may *start*. See
    /// [`pareto_core::Deadline::Budget`].
    pub deadline_budget: u64,
    /// The operation.
    pub kind: RequestKind,
}

/// Why a request ended in a typed error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The deadline expired before planning finished and no cached plan
    /// was available to degrade onto.
    DeadlineExceeded,
    /// The tenant's circuit breaker is open and no cached plan exists.
    BreakerOpen,
    /// The solver failed (injected stall or LP failure).
    SolverFailed,
    /// The request itself was invalid (bad α, unknown tenant, …).
    InvalidRequest,
}

impl ErrorKind {
    fn tag(self) -> u8 {
        match self {
            ErrorKind::DeadlineExceeded => 0,
            ErrorKind::BreakerOpen => 1,
            ErrorKind::SolverFailed => 2,
            ErrorKind::InvalidRequest => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CodecError> {
        Ok(match tag {
            0 => ErrorKind::DeadlineExceeded,
            1 => ErrorKind::BreakerOpen,
            2 => ErrorKind::SolverFailed,
            3 => ErrorKind::InvalidRequest,
            tag => return Err(CodecError::BadTag { what: "error kind", tag }),
        })
    }

    /// Stable label for metrics and summaries.
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::DeadlineExceeded => "deadline",
            ErrorKind::BreakerOpen => "breaker_open",
            ErrorKind::SolverFailed => "solver_failed",
            ErrorKind::InvalidRequest => "invalid",
        }
    }
}

/// One terminal answer per request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A plan (fresh or degraded).
    Served {
        /// Echo of [`Request::id`].
        id: u64,
        /// Dataset chain digest the plan was computed over.
        digest: u64,
        /// Integer partition sizes (sum to the dataset length).
        sizes: Vec<u32>,
        /// Predicted makespan in seconds (0 for strategies without an
        /// optimizer point).
        makespan_s: f64,
        /// True when this is a stale cached plan served because the
        /// fresh solve was impossible (breaker open or deadline too
        /// tight for a cold solve).
        degraded: bool,
        /// For degraded responses, the dataset digest the cached plan
        /// was originally computed over; equals `digest` when fresh.
        source_digest: u64,
    },
    /// Load-shed at admission: the queue was full. Never a hang — the
    /// client gets this synchronously and may retry with backoff.
    Shed {
        /// Echo of [`Request::id`].
        id: u64,
        /// Queue depth observed at rejection (== capacity).
        queue_depth: u32,
    },
    /// A typed failure.
    Error {
        /// Echo of [`Request::id`].
        id: u64,
        /// Failure class.
        kind: ErrorKind,
        /// Human-readable detail (not used programmatically).
        detail: String,
    },
}

impl Response {
    /// The correlation id this response answers.
    pub fn id(&self) -> u64 {
        match self {
            Response::Served { id, .. }
            | Response::Shed { id, .. }
            | Response::Error { id, .. } => *id,
        }
    }
}

const REQ_PLAN: u8 = 0x01;
const REQ_REPLAN: u8 = 0x02;
const RESP_SERVED: u8 = 0x10;
const RESP_SHED: u8 = 0x11;
const RESP_ERROR: u8 = 0x12;

impl Request {
    /// Serialize to payload bytes (frame separately via
    /// [`crate::codec::encode_frame`]).
    pub fn encode(&self) -> Result<Vec<u8>, CodecError> {
        let mut w = PayloadWriter::new();
        match &self.kind {
            RequestKind::Plan { alpha } => {
                w.put_u8(REQ_PLAN);
                w.put_u64(self.id);
                w.put_str(&self.tenant)?;
                w.put_u64(self.deadline_budget);
                w.put_f64(*alpha);
            }
            RequestKind::Replan { append, alpha } => {
                w.put_u8(REQ_REPLAN);
                w.put_u64(self.id);
                w.put_str(&self.tenant)?;
                w.put_u64(self.deadline_budget);
                w.put_u32(*append);
                w.put_f64(*alpha);
            }
        }
        Ok(w.into_bytes())
    }

    /// Decode from payload bytes; the whole payload must be consumed.
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut r = PayloadReader::new(payload);
        let tag = r.get_u8()?;
        let id = r.get_u64()?;
        let tenant = r.get_str()?;
        let deadline_budget = r.get_u64()?;
        let kind = match tag {
            REQ_PLAN => RequestKind::Plan { alpha: r.get_f64()? },
            REQ_REPLAN => {
                let append = r.get_u32()?;
                RequestKind::Replan { append, alpha: r.get_f64()? }
            }
            tag => return Err(CodecError::BadTag { what: "request", tag }),
        };
        r.finish()?;
        let alpha = match kind {
            RequestKind::Plan { alpha } | RequestKind::Replan { alpha, .. } => alpha,
        };
        if !(0.0..=1.0).contains(&alpha) {
            return Err(CodecError::BadValue {
                what: "alpha",
                detail: format!("{alpha} outside [0, 1]"),
            });
        }
        Ok(Request { id, tenant, deadline_budget, kind })
    }
}

impl Response {
    /// Serialize to payload bytes.
    pub fn encode(&self) -> Result<Vec<u8>, CodecError> {
        let mut w = PayloadWriter::new();
        match self {
            Response::Served { id, digest, sizes, makespan_s, degraded, source_digest } => {
                w.put_u8(RESP_SERVED);
                w.put_u64(*id);
                w.put_u64(*digest);
                w.put_u32(sizes.len() as u32);
                for &s in sizes {
                    w.put_u32(s);
                }
                w.put_f64(*makespan_s);
                w.put_u8(u8::from(*degraded));
                w.put_u64(*source_digest);
            }
            Response::Shed { id, queue_depth } => {
                w.put_u8(RESP_SHED);
                w.put_u64(*id);
                w.put_u32(*queue_depth);
            }
            Response::Error { id, kind, detail } => {
                w.put_u8(RESP_ERROR);
                w.put_u64(*id);
                w.put_u8(kind.tag());
                w.put_str(detail)?;
            }
        }
        Ok(w.into_bytes())
    }

    /// Decode from payload bytes; the whole payload must be consumed.
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut r = PayloadReader::new(payload);
        let tag = r.get_u8()?;
        let resp = match tag {
            RESP_SERVED => {
                let id = r.get_u64()?;
                let digest = r.get_u64()?;
                let n = r.get_u32()? as usize;
                // Bound the claimed length by what the payload can
                // actually hold, so a corrupt count cannot force a huge
                // allocation before the reads start failing.
                if n > payload.len() / 4 {
                    return Err(CodecError::BadValue {
                        what: "sizes length",
                        detail: format!("{n} entries cannot fit the payload"),
                    });
                }
                let mut sizes = Vec::with_capacity(n);
                for _ in 0..n {
                    sizes.push(r.get_u32()?);
                }
                let makespan_s = r.get_f64()?;
                let degraded = match r.get_u8()? {
                    0 => false,
                    1 => true,
                    tag => return Err(CodecError::BadTag { what: "degraded flag", tag }),
                };
                let source_digest = r.get_u64()?;
                Response::Served { id, digest, sizes, makespan_s, degraded, source_digest }
            }
            RESP_SHED => Response::Shed { id: r.get_u64()?, queue_depth: r.get_u32()? },
            RESP_ERROR => {
                let id = r.get_u64()?;
                let kind = ErrorKind::from_tag(r.get_u8()?)?;
                let detail = r.get_str()?;
                Response::Error { id, kind, detail }
            }
            tag => return Err(CodecError::BadTag { what: "response", tag }),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_frame, encode_frame};

    fn round_trip_request(req: &Request) {
        let bytes = req.encode().unwrap();
        let back = Request::decode(&bytes).unwrap();
        assert_eq!(&back, req);
        // And byte-identical re-encode.
        assert_eq!(back.encode().unwrap(), bytes);
    }

    fn round_trip_response(resp: &Response) {
        let bytes = resp.encode().unwrap();
        let back = Response::decode(&bytes).unwrap();
        assert_eq!(&back, resp);
        assert_eq!(back.encode().unwrap(), bytes);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(&Request {
            id: 42,
            tenant: "acme".into(),
            deadline_budget: 5,
            kind: RequestKind::Plan { alpha: 0.75 },
        });
        round_trip_request(&Request {
            id: u64::MAX,
            tenant: "".into(),
            deadline_budget: 0,
            kind: RequestKind::Replan { append: 128, alpha: 0.0 },
        });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(&Response::Served {
            id: 1,
            digest: 0xABCD,
            sizes: vec![10, 20, 30, 0],
            makespan_s: 12.5,
            degraded: true,
            source_digest: 0x1234,
        });
        round_trip_response(&Response::Shed { id: 2, queue_depth: 64 });
        round_trip_response(&Response::Error {
            id: 3,
            kind: ErrorKind::BreakerOpen,
            detail: "breaker open for tenant acme".into(),
        });
    }

    #[test]
    fn request_through_frame_round_trips() {
        let req = Request {
            id: 7,
            tenant: "t0".into(),
            deadline_budget: 6,
            kind: RequestKind::Plan { alpha: 0.5 },
        };
        let frame = encode_frame(&req.encode().unwrap()).unwrap();
        let (payload, _) = decode_frame(&frame).unwrap();
        assert_eq!(Request::decode(payload).unwrap(), req);
    }

    #[test]
    fn out_of_range_alpha_rejected() {
        let req = Request {
            id: 1,
            tenant: "t".into(),
            deadline_budget: 0,
            kind: RequestKind::Plan { alpha: 1.5 },
        };
        let bytes = req.encode().unwrap();
        assert!(matches!(
            Request::decode(&bytes),
            Err(CodecError::BadValue { what: "alpha", .. })
        ));
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(matches!(
            Request::decode(&[0xEE]),
            Err(CodecError::Truncated { .. }) | Err(CodecError::BadTag { .. })
        ));
        assert!(matches!(
            Response::decode(&[0xEE, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(CodecError::BadTag { what: "response", .. })
        ));
    }

    #[test]
    fn truncated_response_never_panics() {
        let resp = Response::Served {
            id: 9,
            digest: 5,
            sizes: vec![1, 2, 3],
            makespan_s: 1.0,
            degraded: false,
            source_digest: 5,
        };
        let bytes = resp.encode().unwrap();
        for cut in 0..bytes.len() {
            assert!(Response::decode(&bytes[..cut]).is_err());
        }
    }
}
