//! Wire codec: length-prefixed frames plus a primitive payload reader.
//!
//! Every message on the wire — TCP socket or in-process channel, the
//! transports share the codec — is one *frame*:
//!
//! ```text
//! +------+------+----------------+
//! | PSV1 | len  |    payload     |
//! | 4 B  | u32  |   len bytes    |
//! +------+------+----------------+
//! ```
//!
//! `len` is big-endian and bounded by [`MAX_FRAME`]; an oversized length
//! is rejected *before* any allocation, so a hostile peer cannot OOM the
//! server with an 8-byte header. Malformed input of every kind — torn
//! frames, truncated payloads, bad magic, unknown tags, trailing garbage,
//! invalid UTF-8 — decodes to a typed [`CodecError`], never a panic
//! (proptested in the crate's test suite).
//!
//! Inside the payload, messages are built from fixed-width big-endian
//! integers, IEEE-754 bit-pattern floats (so encoding is bit-exact), and
//! u16-length-prefixed UTF-8 strings. There is no self-description: the
//! reader and writer must agree on shape, which [`crate::proto`] pins
//! with round-trip tests.

/// Frame magic: protocol "Pareto SerVe", version 1.
pub const MAGIC: [u8; 4] = *b"PSV1";

/// Hard ceiling on a frame payload (1 MiB). Plans for the paper-scale
/// clusters serialize to a few KiB; anything near the ceiling is a
/// corrupt or hostile frame.
pub const MAX_FRAME: usize = 1 << 20;

/// Bytes of framing overhead preceding every payload.
pub const HEADER_LEN: usize = MAGIC.len() + 4;

/// A wire-format malformation. Every decoder path returns one of these;
/// none panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ends before the frame does. Streaming readers treat
    /// this as "read more bytes", batch decoders as corruption.
    Truncated {
        /// Total bytes the frame needs.
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// Declared payload length exceeds [`MAX_FRAME`].
    Oversized {
        /// The declared length.
        len: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic {
        /// What was found instead.
        found: [u8; 4],
    },
    /// An enum tag byte no decoder recognizes.
    BadTag {
        /// Which message or field was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// Payload bytes left over after a complete message was decoded.
    Trailing {
        /// How many bytes remained.
        extra: usize,
    },
    /// A length-prefixed string is not valid UTF-8.
    BadUtf8,
    /// A field decoded but holds a nonsensical value.
    BadValue {
        /// Which field.
        what: &'static str,
        /// Why it was rejected.
        detail: String,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            CodecError::Oversized { len } => {
                write!(f, "oversized frame: {len} bytes exceeds max {MAX_FRAME}")
            }
            CodecError::BadMagic { found } => write!(f, "bad frame magic {found:?}"),
            CodecError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            CodecError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after message")
            }
            CodecError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            CodecError::BadValue { what, detail } => write!(f, "bad {what}: {detail}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Wrap a payload in a frame (magic + length prefix).
///
/// Panics never: payloads over [`MAX_FRAME`] are a programming error on
/// the *encoding* side, so they are reported as [`CodecError::Oversized`]
/// rather than silently emitting a frame every decoder would reject.
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, CodecError> {
    if payload.len() > MAX_FRAME {
        return Err(CodecError::Oversized { len: payload.len() });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Decode one frame from the front of `buf`, returning the payload and
/// the total bytes consumed. [`CodecError::Truncated`] means the buffer
/// holds a frame prefix but not all of it yet.
pub fn decode_frame(buf: &[u8]) -> Result<(&[u8], usize), CodecError> {
    if buf.len() < HEADER_LEN {
        return Err(CodecError::Truncated {
            needed: HEADER_LEN,
            have: buf.len(),
        });
    }
    let found = [buf[0], buf[1], buf[2], buf[3]];
    if found != MAGIC {
        return Err(CodecError::BadMagic { found });
    }
    let len = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if len > MAX_FRAME {
        return Err(CodecError::Oversized { len });
    }
    let total = HEADER_LEN + len;
    if buf.len() < total {
        return Err(CodecError::Truncated {
            needed: total,
            have: buf.len(),
        });
    }
    Ok((&buf[HEADER_LEN..total], total))
}

/// Payload writer: append-only primitive encoder.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// Fresh empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish, yielding the raw payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a tag/boolean byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append an f64 as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a u16-length-prefixed UTF-8 string. Strings longer than
    /// `u16::MAX` bytes are a [`CodecError::BadValue`] on the way in, so
    /// the wire never carries a silently-clipped name.
    pub fn put_str(&mut self, s: &str) -> Result<(), CodecError> {
        let len = u16::try_from(s.len()).map_err(|_| CodecError::BadValue {
            what: "string length",
            detail: format!("{} bytes exceeds u16 prefix", s.len()),
        })?;
        self.buf.extend_from_slice(&len.to_be_bytes());
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

/// Payload reader: cursor over a payload slice, every accessor typed.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Start reading at the front of `payload`.
    pub fn new(payload: &'a [u8]) -> Self {
        PayloadReader { buf: payload, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated {
            needed: usize::MAX,
            have: self.buf.len(),
        })?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated {
                needed: end,
                have: self.buf.len(),
            });
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a big-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an f64 from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a u16-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let b = self.take(2)?;
        let len = u16::from_be_bytes([b[0], b[1]]) as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    /// Assert the payload is fully consumed; leftovers are
    /// [`CodecError::Trailing`].
    pub fn finish(self) -> Result<(), CodecError> {
        let extra = self.buf.len() - self.pos;
        if extra == 0 {
            Ok(())
        } else {
            Err(CodecError::Trailing { extra })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let frame = encode_frame(b"hello").unwrap();
        let (payload, consumed) = decode_frame(&frame).unwrap();
        assert_eq!(payload, b"hello");
        assert_eq!(consumed, frame.len());
    }

    #[test]
    fn empty_payload_is_legal() {
        let frame = encode_frame(b"").unwrap();
        let (payload, consumed) = decode_frame(&frame).unwrap();
        assert!(payload.is_empty());
        assert_eq!(consumed, HEADER_LEN);
    }

    #[test]
    fn torn_header_and_torn_payload_are_truncated() {
        let frame = encode_frame(b"abcdef").unwrap();
        for cut in 0..frame.len() {
            match decode_frame(&frame[..cut]) {
                Err(CodecError::Truncated { needed, have }) => {
                    assert_eq!(have, cut);
                    assert!(needed > cut);
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(
            decode_frame(&frame),
            Err(CodecError::Oversized { len: u32::MAX as usize })
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = encode_frame(b"x").unwrap();
        frame[0] = b'Q';
        assert!(matches!(
            decode_frame(&frame),
            Err(CodecError::BadMagic { .. })
        ));
    }

    #[test]
    fn reader_types_round_trip() {
        let mut w = PayloadWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_str("tenant-α").unwrap();
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_str().unwrap(), "tenant-α");
        r.finish().unwrap();
    }

    #[test]
    fn trailing_bytes_are_typed() {
        let mut w = PayloadWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        r.get_u8().unwrap();
        assert_eq!(r.finish(), Err(CodecError::Trailing { extra: 1 }));
    }

    #[test]
    fn bad_utf8_is_typed() {
        let bytes = [0u8, 2, 0xFF, 0xFE];
        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.get_str(), Err(CodecError::BadUtf8));
    }
}
