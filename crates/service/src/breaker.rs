//! Per-tenant circuit breaker.
//!
//! Classic three-state machine, driven entirely by caller-supplied
//! monotonic time (sim ticks in the soak harness, a request ordinal or
//! wall milliseconds in the live server) so its transitions are
//! deterministic and testable:
//!
//! ```text
//!            K consecutive solver failures
//!   Closed ────────────────────────────────▶ Open
//!     ▲                                        │ cooldown elapses
//!     │ probe succeeds                         ▼
//!     └─────────────────────────────────── HalfOpen
//!                 probe fails: back to Open (cooldown restarts)
//! ```
//!
//! While `Open`, the server never attempts a fresh solve for the tenant
//! — it serves the freshest cached plan flagged `degraded` (or a typed
//! `BreakerOpen` error if none exists). `HalfOpen` admits exactly one
//! probe solve; its outcome decides the next state.

/// Breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: solves flow through.
    Closed,
    /// Tripped: no fresh solves until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe solve is in flight.
    HalfOpen,
}

impl BreakerState {
    /// Stable label for metrics.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// A state change, reported so callers can count transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// The state entered.
    pub to: BreakerState,
    /// The time supplied with the triggering call.
    pub at: u64,
}

/// The breaker proper. One per tenant.
#[derive(Debug, Clone)]
pub struct Breaker {
    threshold: u32,
    cooldown: u64,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: u64,
}

impl Breaker {
    /// A closed breaker tripping after `threshold` consecutive failures
    /// and re-probing `cooldown` time units after opening. A zero
    /// threshold is floored to 1 (a breaker that trips on nothing at all
    /// would permanently deny service).
    pub fn new(threshold: u32, cooldown: u64) -> Self {
        Breaker {
            threshold: threshold.max(1),
            cooldown,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: 0,
        }
    }

    /// Current state, advancing `Open → HalfOpen` if the cooldown has
    /// elapsed by `now`.
    pub fn state(&mut self, now: u64) -> BreakerState {
        if self.state == BreakerState::Open && now.saturating_sub(self.opened_at) >= self.cooldown
        {
            self.state = BreakerState::HalfOpen;
        }
        self.state
    }

    /// May a fresh solve be attempted at `now`? `Closed` and `HalfOpen`
    /// admit (half-open admits the probe; a concurrent-probe gate is the
    /// caller's job since admission is serialized per tenant anyway).
    pub fn allow(&mut self, now: u64) -> bool {
        self.state(now) != BreakerState::Open
    }

    /// Record a successful solve; resets the failure streak, and closes
    /// a half-open breaker. Returns the transition, if one happened.
    pub fn on_success(&mut self, now: u64) -> Option<Transition> {
        self.consecutive_failures = 0;
        match self.state(now) {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Closed;
                Some(Transition { to: BreakerState::Closed, at: now })
            }
            _ => None,
        }
    }

    /// Record a solver failure. In `Closed`, trips to `Open` once the
    /// streak reaches the threshold; in `HalfOpen`, the failed probe
    /// re-opens immediately (cooldown restarts at `now`).
    pub fn on_failure(&mut self, now: u64) -> Option<Transition> {
        match self.state(now) {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = now;
                    return Some(Transition { to: BreakerState::Open, at: now });
                }
                None
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.opened_at = now;
                self.consecutive_failures = self.threshold;
                Some(Transition { to: BreakerState::Open, at: now })
            }
            BreakerState::Open => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_k_consecutive_failures() {
        let mut b = Breaker::new(3, 10);
        assert_eq!(b.on_failure(0), None);
        assert_eq!(b.on_failure(1), None);
        assert_eq!(
            b.on_failure(2),
            Some(Transition { to: BreakerState::Open, at: 2 })
        );
        assert!(!b.allow(3));
    }

    #[test]
    fn success_resets_the_streak() {
        let mut b = Breaker::new(2, 10);
        b.on_failure(0);
        b.on_success(1);
        assert_eq!(b.on_failure(2), None);
        assert!(b.allow(3));
    }

    #[test]
    fn cooldown_half_opens_and_probe_decides() {
        let mut b = Breaker::new(1, 10);
        b.on_failure(0);
        assert!(!b.allow(5));
        // Cooldown elapses: half-open admits a probe.
        assert!(b.allow(10));
        assert_eq!(b.state(10), BreakerState::HalfOpen);
        // Failed probe re-opens with a fresh cooldown.
        assert_eq!(
            b.on_failure(11),
            Some(Transition { to: BreakerState::Open, at: 11 })
        );
        assert!(!b.allow(20));
        assert!(b.allow(21));
        // Successful probe closes.
        assert_eq!(
            b.on_success(21),
            Some(Transition { to: BreakerState::Closed, at: 21 })
        );
        assert_eq!(b.state(22), BreakerState::Closed);
    }

    #[test]
    fn zero_threshold_floors_to_one() {
        let mut b = Breaker::new(0, 5);
        assert_eq!(
            b.on_failure(0),
            Some(Transition { to: BreakerState::Open, at: 0 })
        );
    }
}
