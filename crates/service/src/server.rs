//! The plan service: per-tenant sessions over a shared cache, the
//! degradation ladder, and the live bounded-thread-pool server.
//!
//! [`PlanService`] is the transport-free core — one `handle` call maps a
//! decoded [`Request`] to exactly one [`Response`]. Both the live
//! [`Server`] (threads, sockets) and the deterministic soak harness
//! ([`crate::soak`]) drive the *same* core, so the resilience logic the
//! soak certifies is the logic production requests traverse.
//!
//! The degradation ladder, most-preferred first:
//!
//! 1. **Fresh solve** — breaker closed (or half-open probe), deadline
//!    admits it: plan through the tenant's warm [`PlanSession`].
//! 2. **Degraded serve** — breaker open, injected solver stall, or the
//!    deadline expired mid-plan: answer with the tenant's freshest
//!    previously-served plan, flagged `degraded: true` and carrying the
//!    `source_digest` it was computed over. Partial stage artifacts from
//!    the aborted solve stay in the shared cache, so the *next* attempt
//!    resumes where this one stopped.
//! 3. **Typed error** — nothing cached to degrade onto: a
//!    [`proto::ErrorKind`] names the cause. Never a panic, never a hang.
//!
//! Load-shedding happens *before* any of this, at admission
//! ([`crate::admission`]), and is likewise typed.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use pareto_cluster::fault::mix64;
use pareto_cluster::{NodeSpec, SimCluster};
use pareto_core::framework::{FrameworkConfig, Plan, Strategy};
use pareto_core::{Deadline, PlanError, PlanSession, SharedPlanCache};
use pareto_telemetry::{metrics, Telemetry};
use pareto_workloads::WorkloadKind;

use crate::admission::{Admission, BoundedQueue};
use crate::breaker::Breaker;
use crate::codec::{decode_frame, encode_frame, CodecError};
use crate::proto::{ErrorKind, Request, RequestKind, Response};

/// Workload every tenant session plans for.
const WORKLOAD: WorkloadKind = WorkloadKind::FrequentPatterns { support: 0.15 };

/// Service-wide knobs shared by the live server and the soak harness.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Master seed: tenant datasets, jitter, and chaos all derive from
    /// it.
    pub seed: u64,
    /// Cluster size for the planning substrate.
    pub nodes: usize,
    /// Planning threads inside each solve (plans are bit-identical at
    /// any value; never part of any fingerprint).
    pub threads: usize,
    /// Shared plan-cache capacity (artifact entries, all tenants).
    pub cache_capacity: usize,
    /// Consecutive solver failures that trip a tenant's breaker.
    pub breaker_threshold: u32,
    /// Time units an open breaker waits before admitting a probe.
    pub breaker_cooldown: u64,
    /// Scale of each tenant's synthetic dataset.
    pub dataset_scale: f64,
    /// Admission queue capacity; offers beyond it are shed.
    pub queue_capacity: usize,
    /// Worker threads in the live server's pool.
    pub workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            seed: 0x5EED,
            nodes: 4,
            threads: 1,
            cache_capacity: 64,
            breaker_threshold: 3,
            breaker_cooldown: 48,
            dataset_scale: 0.02,
            queue_capacity: 8,
            workers: 2,
        }
    }
}

/// The freshest successfully-served plan for a tenant — the degraded
/// answer when a fresh solve is impossible.
#[derive(Debug, Clone)]
pub struct PlanSummary {
    /// Dataset chain digest the plan was computed over.
    pub digest: u64,
    /// Integer partition sizes.
    pub sizes: Vec<u32>,
    /// Predicted makespan (0 when the strategy had no optimizer point).
    pub makespan_s: f64,
}

fn summarize(plan: &Plan, digest: u64) -> PlanSummary {
    PlanSummary {
        digest,
        sizes: plan.sizes.iter().map(|&s| s as u32).collect(),
        makespan_s: plan
            .pareto
            .as_ref()
            .map(|p| p.predicted_makespan)
            .unwrap_or(0.0),
    }
}

struct Tenant {
    session: PlanSession<'static>,
    breaker: Breaker,
    last_good: Option<PlanSummary>,
    /// Monotonic count of replan appends, salting each append's
    /// synthetic records so repeats stay distinct.
    appends: u64,
}

/// Stable 64-bit hash of a tenant name (FNV-1a folded through mix64).
fn tenant_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    mix64(h)
}

/// The transport-free service core.
pub struct PlanService {
    cluster: Arc<SimCluster>,
    plan_cfg: FrameworkConfig,
    cfg: ServiceConfig,
    cache: SharedPlanCache,
    tenants: Mutex<BTreeMap<String, Arc<Mutex<Tenant>>>>,
    telemetry: Option<Arc<Telemetry>>,
}

impl PlanService {
    /// Build the service: one simulated cluster, one shared cache, no
    /// tenants yet (sessions materialize on first request).
    pub fn new(cfg: ServiceConfig, telemetry: Option<Arc<Telemetry>>) -> Self {
        let mut cluster = SimCluster::new(NodeSpec::paper_cluster(
            cfg.nodes, 400.0, 2, 9, cfg.seed,
        ));
        if let Some(tel) = &telemetry {
            cluster = cluster.with_telemetry(tel.clone());
        }
        let plan_cfg = FrameworkConfig {
            strategy: Strategy::HetEnergyAware { alpha: 0.99 },
            seed: cfg.seed,
            threads: cfg.threads,
            ..FrameworkConfig::default()
        };
        let cache = SharedPlanCache::new(cfg.cache_capacity);
        PlanService {
            cluster: Arc::new(cluster),
            plan_cfg,
            cfg,
            cache,
            tenants: Mutex::new(BTreeMap::new()),
            telemetry,
        }
    }

    /// The shared artifact cache (all tenants dedupe through it).
    pub fn cache(&self) -> &SharedPlanCache {
        &self.cache
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    fn tenant(&self, name: &str) -> Arc<Mutex<Tenant>> {
        let mut map = self.tenants.lock();
        if let Some(t) = map.get(name) {
            return t.clone();
        }
        // Each tenant plans its own deterministic synthetic dataset,
        // derived from (service seed, tenant name) so a restarted server
        // rebuilds identical sessions.
        let ds_seed = mix64(self.cfg.seed ^ tenant_hash(name));
        let dataset = pareto_datagen::rcv1_syn(ds_seed, self.cfg.dataset_scale);
        let mut session = PlanSession::new_shared(
            self.cluster.clone(),
            self.plan_cfg.clone(),
            dataset,
            WORKLOAD,
        )
        .with_shared_cache(self.cache.clone());
        if let Some(tel) = &self.telemetry {
            session = session.with_telemetry(tel.clone());
        }
        let tenant = Arc::new(Mutex::new(Tenant {
            session,
            breaker: Breaker::new(self.cfg.breaker_threshold, self.cfg.breaker_cooldown),
            last_good: None,
            appends: 0,
        }));
        map.insert(name.to_string(), tenant.clone());
        tenant
    }

    /// Record a terminal outcome on the
    /// [`metrics::SERVICE_REQUESTS_TOTAL`] counter. Inert: counting
    /// never feeds back into any decision.
    pub fn record_outcome(&self, outcome: &'static str) {
        if let Some(tel) = &self.telemetry {
            tel.counter_add(metrics::SERVICE_REQUESTS_TOTAL, &[("outcome", outcome)], 1);
        }
    }

    /// Record a client retry attempt.
    pub fn record_retry(&self, reason: &'static str) {
        if let Some(tel) = &self.telemetry {
            tel.counter_add(metrics::SERVICE_RETRIES_TOTAL, &[("reason", reason)], 1);
        }
    }

    /// Record a coalesced (folded) request.
    pub fn record_coalesced(&self) {
        if let Some(tel) = &self.telemetry {
            tel.counter_add(metrics::SERVICE_COALESCED_TOTAL, &[], 1);
        }
    }

    fn record_transition(&self, to: &'static str) {
        if let Some(tel) = &self.telemetry {
            tel.counter_add(
                metrics::SERVICE_BREAKER_TRANSITIONS_TOTAL,
                &[("to", to)],
                1,
            );
        }
    }

    /// The coalescing key for a request: a fingerprint of everything
    /// that determines its answer. `Plan` requests against the same
    /// tenant/dataset/α collide (and fold into one solve); `Replan`
    /// requests are salted with their id — each append mutates the
    /// dataset, so folding two would silently drop records.
    pub fn work_key(&self, req: &Request) -> u64 {
        let tenant = self.tenant(&req.tenant);
        let t = tenant.lock();
        let fp = t.session.dataset_fingerprint().0;
        drop(t);
        match req.kind {
            RequestKind::Plan { alpha } => {
                mix64(mix64(tenant_hash(&req.tenant) ^ fp) ^ alpha.to_bits())
            }
            RequestKind::Replan { .. } => {
                mix64(mix64(tenant_hash(&req.tenant) ^ fp) ^ req.id.wrapping_mul(0x9E37_79B9))
            }
        }
    }

    /// Serve one request (the coalescing *leader* path; followers are
    /// answered by the transport from the leader's response). `now` is
    /// caller-supplied monotonic time (sim ticks or request ordinals) —
    /// it drives the breaker, nothing else. `inject_stall` is the chaos
    /// hook: `true` makes the solver fail as if stalled, exactly like a
    /// [`pareto_cluster::FaultKind::SolverStall`] event.
    pub fn handle(&self, req: &Request, now: u64, inject_stall: bool) -> Response {
        let tenant = self.tenant(&req.tenant);
        let mut t = tenant.lock();

        let alpha = match req.kind {
            RequestKind::Plan { alpha } | RequestKind::Replan { alpha, .. } => alpha,
        };
        if !(0.0..=1.0).contains(&alpha) || !alpha.is_finite() {
            self.record_outcome("error");
            return Response::Error {
                id: req.id,
                kind: ErrorKind::InvalidRequest,
                detail: format!("alpha {alpha} outside [0, 1]"),
            };
        }

        // Replan deltas mutate the dataset before the solve; the append
        // happens even if the solve below degrades, matching a client
        // that has already shipped its records.
        if let RequestKind::Replan { append, .. } = req.kind {
            t.appends += 1;
            let salt = mix64(self.cfg.seed ^ tenant_hash(&req.tenant) ^ t.appends);
            let extra = pareto_datagen::rcv1_syn(salt, 0.002 * f64::from(append.min(8)))
                .items;
            t.session.append_items(extra);
        }

        // Rung 2/3: breaker open — no fresh solve at all.
        if !t.breaker.allow(now) {
            return self.degrade_or_error(
                &mut t,
                req.id,
                ErrorKind::BreakerOpen,
                "circuit breaker open".into(),
            );
        }

        t.session.set_alpha(alpha);
        t.session.set_deadline(if req.deadline_budget > 0 {
            Deadline::Budget(req.deadline_budget)
        } else {
            Deadline::None
        });

        if inject_stall {
            if let Some(tr) = t.breaker.on_failure(now) {
                self.record_transition(tr.to.label());
            }
            return self.degrade_or_error(
                &mut t,
                req.id,
                ErrorKind::SolverFailed,
                "injected solver stall".into(),
            );
        }

        match t.session.plan() {
            Ok(plan) => {
                if let Some(tr) = t.breaker.on_success(now) {
                    self.record_transition(tr.to.label());
                }
                let digest = t.session.dataset_fingerprint().0;
                let summary = summarize(&plan, digest);
                t.last_good = Some(summary.clone());
                self.record_outcome("served");
                Response::Served {
                    id: req.id,
                    digest,
                    sizes: summary.sizes,
                    makespan_s: summary.makespan_s,
                    degraded: false,
                    source_digest: digest,
                }
            }
            Err(PlanError::DeadlineExceeded { stage }) => {
                // Completed stages are already in the shared cache; the
                // next attempt resumes from them. Deadlines are load
                // signals, not solver health — the breaker ignores them.
                self.degrade_or_error(
                    &mut t,
                    req.id,
                    ErrorKind::DeadlineExceeded,
                    format!("deadline exceeded before the {stage} stage"),
                )
            }
            Err(e) => {
                if let Some(tr) = t.breaker.on_failure(now) {
                    self.record_transition(tr.to.label());
                }
                self.degrade_or_error(&mut t, req.id, ErrorKind::SolverFailed, e.to_string())
            }
        }
    }

    /// Rungs 2 and 3 of the ladder: the freshest cached plan flagged
    /// `degraded`, else the typed error.
    fn degrade_or_error(
        &self,
        t: &mut Tenant,
        id: u64,
        kind: ErrorKind,
        detail: String,
    ) -> Response {
        match &t.last_good {
            Some(s) => {
                self.record_outcome("degraded");
                Response::Served {
                    id,
                    digest: t.session.dataset_fingerprint().0,
                    sizes: s.sizes.clone(),
                    makespan_s: s.makespan_s,
                    degraded: true,
                    source_digest: s.digest,
                }
            }
            None => {
                self.record_outcome("error");
                Response::Error { id, kind, detail }
            }
        }
    }
}

/// One pending reply: fulfilled exactly once by a worker (or immediately
/// by admission control on shed).
struct ReplySlot {
    slot: Mutex<Option<Response>>,
    ready: Condvar,
}

impl ReplySlot {
    fn new() -> Arc<Self> {
        Arc::new(ReplySlot { slot: Mutex::new(None), ready: Condvar::new() })
    }

    fn fulfill(&self, resp: Response) {
        let mut guard = self.slot.lock();
        *guard = Some(resp);
        self.ready.notify_all();
    }

    fn wait(&self) -> Response {
        let mut guard = self.slot.lock();
        loop {
            if let Some(resp) = guard.take() {
                return resp;
            }
            self.ready.wait(&mut guard);
        }
    }
}

struct Job {
    request: Request,
    key: u64,
    reply: Arc<ReplySlot>,
}

/// In-flight coalescing table: work key → follower `(id, slot)` pairs.
/// A key's presence means a leader is queued or executing; attach and
/// complete are atomic under one lock, so a follower can never register
/// against a leader that already finished.
type CoalesceTable = BTreeMap<u64, Vec<(u64, Arc<ReplySlot>)>>;

struct ServerShared {
    service: Arc<PlanService>,
    queue: Mutex<BoundedQueue<Job>>,
    work_ready: Condvar,
    inflight: Mutex<CoalesceTable>,
    now: AtomicU64,
    shutdown: AtomicBool,
}

/// The live server: a bounded worker pool consuming the admission queue,
/// fed by in-process calls ([`Server::call`]) and/or TCP connections
/// ([`Server::serve_tcp`]) — both transports speak the same
/// [`crate::codec`] frames.
pub struct Server {
    shared: Arc<ServerShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start `cfg.workers` worker threads over a `cfg.queue_capacity`
    /// admission queue.
    pub fn start(service: Arc<PlanService>) -> Self {
        let cfg = service.config().clone();
        let shared = Arc::new(ServerShared {
            service,
            queue: Mutex::new(BoundedQueue::new(cfg.queue_capacity)),
            work_ready: Condvar::new(),
            inflight: Mutex::new(CoalesceTable::new()),
            now: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Server { shared, workers }
    }

    /// Submit a request in-process, blocking until its terminal
    /// response. Sheds synchronously when the queue is full; folds into
    /// an in-flight identical solve when one exists.
    pub fn call(&self, request: Request) -> Response {
        submit(&self.shared, request).wait()
    }

    /// Submit the *encoded frame* a remote client would send, returning
    /// the encoded response frame — the in-process channel with the wire
    /// codec applied, used by codec-conformance tests.
    pub fn call_frame(&self, frame: &[u8]) -> Result<Vec<u8>, CodecError> {
        let (payload, _) = decode_frame(frame)?;
        let request = Request::decode(payload)?;
        let response = self.call(request);
        encode_frame(&response.encode()?)
    }

    /// Accept TCP connections on `listener` until shutdown, one handler
    /// thread per connection, frames per [`crate::codec`]. Returns the
    /// acceptor's join handle.
    pub fn serve_tcp(&self, listener: TcpListener) -> JoinHandle<()> {
        let shared = self.shared.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { break };
                let shared = shared.clone();
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, &shared);
                });
            }
        })
    }

    /// Stop the workers and wait for them. In-flight jobs finish;
    /// queued-but-unstarted jobs are answered with a typed shed.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Drain anything still queued so no caller hangs.
        let mut q = self.shared.queue.lock();
        while let Some(job) = q.pop() {
            let depth = q.len();
            job.reply.fulfill(Response::Shed {
                id: job.request.id,
                queue_depth: depth as u32,
            });
        }
    }
}

/// The submission path shared by in-process calls and TCP handlers:
/// coalesce, then admit or shed — every path fulfills the returned slot
/// exactly once (possibly via a worker), so callers never hang.
fn submit(shared: &Arc<ServerShared>, request: Request) -> Arc<ReplySlot> {
    let reply = ReplySlot::new();
    let key = shared.service.work_key(&request);
    if matches!(request.kind, RequestKind::Plan { .. }) {
        let mut table = shared.inflight.lock();
        if let Some(followers) = table.get_mut(&key) {
            // Identical solve in flight: fold into it, no queue slot.
            followers.push((request.id, reply.clone()));
            drop(table);
            shared.service.record_coalesced();
            return reply;
        }
        table.insert(key, Vec::new());
    }
    let id = request.id;
    let admission = shared
        .queue
        .lock()
        .offer(Job { request, key, reply: reply.clone() });
    match admission {
        Admission::Queued { .. } => shared.work_ready.notify_one(),
        Admission::Shed { item: _, queue_depth } => {
            // Retire the key and shed the leader plus anyone who folded
            // in between the insert above and this rejection.
            let followers = shared.inflight.lock().remove(&key).unwrap_or_default();
            shared.service.record_outcome("shed");
            reply.fulfill(Response::Shed { id, queue_depth: queue_depth as u32 });
            for (fid, slot) in followers {
                shared.service.record_outcome("shed");
                slot.fulfill(Response::Shed { id: fid, queue_depth: queue_depth as u32 });
            }
        }
    }
    reply
}

fn worker_loop(shared: &ServerShared) {
    loop {
        let job = {
            let mut q = shared.queue.lock();
            loop {
                if let Some(job) = q.pop() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                shared.work_ready.wait(&mut q);
            }
        };
        let now = shared.now.fetch_add(1, Ordering::SeqCst);
        let response = shared.service.handle(&job.request, now, false);
        // Retire the work key and answer coalesced followers with the
        // leader's response, re-stamped with their correlation ids.
        let followers = shared.inflight.lock().remove(&job.key).unwrap_or_default();
        job.reply.fulfill(response.clone());
        for (fid, slot) in followers {
            let mut resp = response.clone();
            restamp(&mut resp, fid);
            // A coalesced answer is still that request's own terminal
            // outcome.
            match &resp {
                Response::Served { degraded: false, .. } => {
                    shared.service.record_outcome("served")
                }
                Response::Served { degraded: true, .. } => {
                    shared.service.record_outcome("degraded")
                }
                Response::Shed { .. } => shared.service.record_outcome("shed"),
                Response::Error { .. } => shared.service.record_outcome("error"),
            }
            slot.fulfill(resp);
        }
    }
}

fn restamp(resp: &mut Response, id: u64) {
    match resp {
        Response::Served { id: slot, .. }
        | Response::Shed { id: slot, .. }
        | Response::Error { id: slot, .. } => *slot = id,
    }
}

/// Read exactly one frame from a stream (blocking), growing the buffer
/// until the decoder stops reporting `Truncated`. Returns `None` on a
/// clean EOF at a frame boundary.
fn read_frame(stream: &mut TcpStream) -> Result<Option<Vec<u8>>, CodecError> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 4096];
    loop {
        match decode_frame(&buf) {
            Ok((payload, _)) => return Ok(Some(payload.to_vec())),
            Err(CodecError::Truncated { .. }) => {}
            Err(e) => return Err(e),
        }
        let n = stream.read(&mut chunk).map_err(|_| CodecError::Truncated {
            needed: buf.len() + 1,
            have: buf.len(),
        })?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(CodecError::Truncated {
                needed: buf.len() + 1,
                have: buf.len(),
            });
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<ServerShared>) -> std::io::Result<()> {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()),
            // Malformed frame: answer with a typed error and drop the
            // connection (framing is lost past this point).
            Err(e) => {
                let resp = Response::Error {
                    id: 0,
                    kind: ErrorKind::InvalidRequest,
                    detail: e.to_string(),
                };
                if let Ok(payload) = resp.encode() {
                    if let Ok(frame) = encode_frame(&payload) {
                        let _ = stream.write_all(&frame);
                    }
                }
                return Ok(());
            }
        };
        let response = match Request::decode(&payload) {
            Ok(request) => submit(shared, request).wait(),
            Err(e) => Response::Error {
                id: 0,
                kind: ErrorKind::InvalidRequest,
                detail: e.to_string(),
            },
        };
        let frame = response
            .encode()
            .and_then(|p| encode_frame(&p))
            .unwrap_or_default();
        stream.write_all(&frame)?;
    }
}

/// A blocking TCP client speaking the frame codec.
pub struct TcpClient {
    stream: TcpStream,
}

impl TcpClient {
    /// Connect to a server address.
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<Self> {
        Ok(TcpClient { stream: TcpStream::connect(addr)? })
    }

    /// Send one request, wait for its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, CodecError> {
        let frame = encode_frame(&request.encode()?)?;
        self.stream
            .write_all(&frame)
            .map_err(|e| CodecError::BadValue { what: "socket write", detail: e.to_string() })?;
        let payload = read_frame(&mut self.stream)?.ok_or(CodecError::Truncated {
            needed: 1,
            have: 0,
        })?;
        Response::decode(&payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ServiceConfig {
        ServiceConfig {
            dataset_scale: 0.01,
            nodes: 3,
            workers: 2,
            queue_capacity: 4,
            ..ServiceConfig::default()
        }
    }

    fn plan_req(id: u64, tenant: &str, alpha: f64) -> Request {
        Request {
            id,
            tenant: tenant.into(),
            deadline_budget: 0,
            kind: RequestKind::Plan { alpha },
        }
    }

    #[test]
    fn fresh_solve_serves_and_caches() {
        let svc = PlanService::new(small_cfg(), None);
        let resp = svc.handle(&plan_req(1, "acme", 0.9), 0, false);
        match resp {
            Response::Served { id, degraded, sizes, digest, source_digest, .. } => {
                assert_eq!(id, 1);
                assert!(!degraded);
                assert_eq!(digest, source_digest);
                assert!(!sizes.is_empty());
            }
            other => panic!("expected Served, got {other:?}"),
        }
    }

    #[test]
    fn stall_storm_trips_breaker_then_degrades() {
        let cfg = ServiceConfig { breaker_threshold: 2, breaker_cooldown: 100, ..small_cfg() };
        let svc = PlanService::new(cfg, None);
        // Seed a good plan so degradation has a source.
        let first = svc.handle(&plan_req(1, "acme", 0.9), 0, false);
        let good_digest = match first {
            Response::Served { digest, .. } => digest,
            other => panic!("expected Served, got {other:?}"),
        };
        // Two stalls trip the breaker (threshold 2); both degrade.
        for (i, now) in [(2u64, 1u64), (3, 2)] {
            match svc.handle(&plan_req(i, "acme", 0.9), now, true) {
                Response::Served { degraded: true, source_digest, .. } => {
                    assert_eq!(source_digest, good_digest);
                }
                other => panic!("expected degraded, got {other:?}"),
            }
        }
        // Breaker now open: no stall injected, still degraded (no solve).
        match svc.handle(&plan_req(4, "acme", 0.9), 3, false) {
            Response::Served { degraded: true, source_digest, .. } => {
                assert_eq!(source_digest, good_digest);
            }
            other => panic!("expected degraded (breaker open), got {other:?}"),
        }
    }

    #[test]
    fn breaker_open_without_cache_is_typed_error() {
        let cfg = ServiceConfig { breaker_threshold: 1, ..small_cfg() };
        let svc = PlanService::new(cfg, None);
        // First request stalls: nothing cached, breaker trips.
        match svc.handle(&plan_req(1, "cold", 0.9), 0, true) {
            Response::Error { kind: ErrorKind::SolverFailed, .. } => {}
            other => panic!("expected SolverFailed, got {other:?}"),
        }
        match svc.handle(&plan_req(2, "cold", 0.9), 1, false) {
            Response::Error { kind: ErrorKind::BreakerOpen, .. } => {}
            other => panic!("expected BreakerOpen, got {other:?}"),
        }
    }

    #[test]
    fn tight_deadline_cold_is_typed_error_then_resumes_from_cache() {
        let svc = PlanService::new(small_cfg(), None);
        let mut req = plan_req(1, "deadline", 0.9);
        req.deadline_budget = 2; // sketch + stratify only
        match svc.handle(&req, 0, false) {
            Response::Error { kind: ErrorKind::DeadlineExceeded, .. } => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // The two completed stages were cached; a budget of 3 more
        // stages now finishes what a cold solve (5 stages) could not.
        let mut retry = plan_req(2, "deadline", 0.9);
        retry.deadline_budget = 5;
        match svc.handle(&retry, 1, false) {
            Response::Served { degraded: false, .. } => {}
            other => panic!("expected Served after resume, got {other:?}"),
        }
    }

    #[test]
    fn half_open_probe_recovers_service() {
        let cfg = ServiceConfig { breaker_threshold: 1, breaker_cooldown: 10, ..small_cfg() };
        let svc = PlanService::new(cfg, None);
        svc.handle(&plan_req(1, "acme", 0.9), 0, false); // seed cache
        svc.handle(&plan_req(2, "acme", 0.9), 1, true); // trip
        // Before cooldown: degraded.
        match svc.handle(&plan_req(3, "acme", 0.9), 5, false) {
            Response::Served { degraded: true, .. } => {}
            other => panic!("expected degraded, got {other:?}"),
        }
        // After cooldown: half-open probe solves fresh and closes.
        match svc.handle(&plan_req(4, "acme", 0.9), 11, false) {
            Response::Served { degraded: false, .. } => {}
            other => panic!("expected fresh serve, got {other:?}"),
        }
    }

    #[test]
    fn server_in_process_round_trip_and_shutdown() {
        let svc = Arc::new(PlanService::new(small_cfg(), None));
        let server = Server::start(svc);
        let resp = server.call(plan_req(7, "acme", 0.8));
        assert!(matches!(resp, Response::Served { id: 7, degraded: false, .. }));
        // Warm second call hits the cache (same α).
        let resp = server.call(plan_req(8, "acme", 0.8));
        assert!(matches!(resp, Response::Served { id: 8, .. }));
        server.shutdown();
    }

    #[test]
    fn server_tcp_round_trip() {
        let svc = Arc::new(PlanService::new(small_cfg(), None));
        let server = Server::start(svc);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let acceptor = server.serve_tcp(listener);
        let mut client = TcpClient::connect(addr).unwrap();
        let resp = client.call(&plan_req(21, "remote", 0.7)).unwrap();
        assert!(matches!(resp, Response::Served { id: 21, .. }));
        drop(client);
        server.shutdown();
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(addr);
        let _ = acceptor.join();
    }

    #[test]
    fn call_frame_speaks_the_wire_codec() {
        let svc = Arc::new(PlanService::new(small_cfg(), None));
        let server = Server::start(svc);
        let req = plan_req(9, "acme", 0.6);
        let frame = encode_frame(&req.encode().unwrap()).unwrap();
        let resp_frame = server.call_frame(&frame).unwrap();
        let (payload, _) = decode_frame(&resp_frame).unwrap();
        let resp = Response::decode(payload).unwrap();
        assert_eq!(resp.id(), 9);
        server.shutdown();
    }
}
