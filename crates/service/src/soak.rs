//! Deterministic closed-loop soak: thousands of seeded mixed requests —
//! plans, replans, injected solver stalls and crashes, overload — driven
//! through the *real* [`PlanService`] core by a single-threaded
//! discrete-event simulation in simulated time.
//!
//! Nothing in the loop reads a wall clock or an ambient RNG: arrivals,
//! think times, α/tenant/deadline choices, chaos, and retry jitter all
//! derive from the seed via the same splitmix hashing the fault injector
//! uses, and service durations are seeded functions of the outcome. The
//! summary JSON is therefore **bit-identical** across runs and across
//! planning thread counts (plans themselves are thread-invariant), which
//! CI enforces by diffing two runs byte-for-byte.
//!
//! The simulated executor models `sim_workers` slots over a bounded
//! admission queue — the same [`BoundedQueue`] the live server wraps —
//! so overload genuinely sheds, coalescing genuinely folds, and the
//! breaker sees the same call sequence a live fleet would produce for
//! this trace.

use std::collections::BTreeMap;
use std::sync::Arc;

use pareto_cluster::fault::{mix64, raw_draw};
use pareto_cluster::{FaultPlan, FaultSpec};
use pareto_telemetry::json::Value;
use pareto_telemetry::Telemetry;

use crate::admission::{Admission, BoundedQueue};
use crate::proto::{Request, RequestKind, Response};
use crate::retry::RetryPolicy;
use crate::server::{PlanService, ServiceConfig};

/// Soak-run knobs.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// The service under test.
    pub service: ServiceConfig,
    /// Logical requests to issue (retries don't count).
    pub requests: usize,
    /// Distinct tenants (each with its own dataset, session, breaker).
    pub tenants: usize,
    /// Closed-loop clients; each waits for its outcome, thinks, and
    /// issues again. More clients than executor slots ⇒ overload.
    pub clients: usize,
    /// Simulated executor slots (independent of planning threads).
    pub sim_workers: usize,
    /// Client retry policy (applies to shed responses).
    pub retry: RetryPolicy,
    /// Percent of requests that are replans (append + plan).
    pub replan_pct: u8,
    /// Arm seeded chaos: solver stalls and crashes from
    /// [`FaultSpec::serving`].
    pub chaos: bool,
    /// Think times are drawn from `[1, think_max]` sim ticks.
    pub think_max: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            service: ServiceConfig {
                queue_capacity: 4,
                dataset_scale: 0.01,
                ..ServiceConfig::default()
            },
            requests: 1000,
            tenants: 4,
            clients: 12,
            sim_workers: 2,
            retry: RetryPolicy::default(),
            replan_pct: 20,
            chaos: true,
            think_max: 6,
        }
    }
}

/// Terminal-outcome tally: every logical request lands in exactly one
/// bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Outcomes {
    /// Fresh plans served.
    pub served: u64,
    /// Cached plans served with `degraded: true`.
    pub degraded: u64,
    /// Shed with retries exhausted.
    pub shed: u64,
    /// Typed errors.
    pub error: u64,
}

impl Outcomes {
    /// Total terminal outcomes.
    pub fn total(&self) -> u64 {
        self.served + self.degraded + self.shed + self.error
    }
}

/// What a soak run produced.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Deterministic summary document (compact JSON, sorted keys).
    pub json: String,
    /// Terminal outcomes.
    pub outcomes: Outcomes,
    /// Logical requests issued.
    pub issued: u64,
    /// Shed responses observed (including retried-away ones).
    pub shed_events: u64,
    /// Retry attempts scheduled.
    pub retries: u64,
    /// Requests folded into an in-flight identical solve.
    pub coalesced: u64,
    /// Injected solver stalls consumed.
    pub stalls_injected: u64,
    /// Injected node crashes consumed.
    pub crashes_injected: u64,
    /// Invariant violations detected (must be 0).
    pub audit_violations: u64,
    /// Shared-cache stage hits across all tenants.
    pub cache_hits: u64,
    /// Shared-cache stage misses.
    pub cache_misses: u64,
    /// Shared-cache evictions under capacity pressure.
    pub cache_evictions: u64,
    /// p50 terminal latency in sim ticks.
    pub latency_p50: u64,
    /// p99 terminal latency in sim ticks.
    pub latency_p99: u64,
}

/// One logical request attempt moving through the system.
#[derive(Debug, Clone)]
struct Pending {
    req: Request,
    client: usize,
    first_issued: u64,
    attempt: u32,
}

#[derive(Debug, Clone)]
enum Event {
    /// A client issues its next logical request.
    Issue { client: usize },
    /// A shed request re-enters after backoff.
    Redispatch { pending: Pending },
    /// An executor slot finishes.
    Complete { worker: usize },
}

struct Running {
    key: u64,
    leader: Pending,
    response: Response,
}

struct QueuedItem {
    key: u64,
    pending: Pending,
}

struct Sim {
    cfg: SoakConfig,
    service: PlanService,
    events: BTreeMap<(u64, u64), Event>,
    seq: u64,
    queue: BoundedQueue<QueuedItem>,
    workers: Vec<Option<Running>>,
    inflight: BTreeMap<u64, Vec<Pending>>,
    issued: u64,
    next_id: u64,
    start_ordinal: u64,
    client_turns: Vec<u64>,
    stall_budget: Vec<u32>,
    crash_budget: Vec<bool>,
    outcomes: Outcomes,
    errors: BTreeMap<&'static str, u64>,
    latencies: Vec<u64>,
    shed_events: u64,
    retries: u64,
    coalesced: u64,
    stalls_injected: u64,
    crashes_injected: u64,
    violations: u64,
    draw_seed: u64,
}

impl Sim {
    fn new(cfg: SoakConfig, telemetry: Option<Arc<Telemetry>>) -> Self {
        let service = PlanService::new(cfg.service.clone(), telemetry);
        let nodes = cfg.service.nodes.max(1);
        let (stall_budget, crash_budget) = if cfg.chaos {
            let plan = FaultPlan::generate(cfg.service.seed, nodes, &FaultSpec::serving());
            (
                (0..nodes).map(|n| plan.solver_stalls(n)).collect(),
                (0..nodes).map(|n| plan.crash_time(n).is_some()).collect(),
            )
        } else {
            (vec![0; nodes], vec![false; nodes])
        };
        let workers = (0..cfg.sim_workers.max(1)).map(|_| None).collect();
        let queue = BoundedQueue::new(cfg.service.queue_capacity);
        let draw_seed = mix64(cfg.service.seed ^ 0x5_0A_4B_17);
        let client_turns = vec![0; cfg.clients.max(1)];
        Sim {
            cfg,
            service,
            events: BTreeMap::new(),
            seq: 0,
            queue,
            workers,
            inflight: BTreeMap::new(),
            issued: 0,
            next_id: 1,
            start_ordinal: 0,
            client_turns,
            stall_budget,
            crash_budget,
            outcomes: Outcomes::default(),
            errors: BTreeMap::new(),
            latencies: Vec::new(),
            shed_events: 0,
            retries: 0,
            coalesced: 0,
            stalls_injected: 0,
            crashes_injected: 0,
            violations: 0,
            draw_seed,
        }
    }

    fn schedule(&mut self, at: u64, event: Event) {
        let key = (at, self.seq);
        self.seq += 1;
        self.events.insert(key, event);
    }

    fn draw(&self, a: usize, b: u64) -> u64 {
        raw_draw(self.draw_seed, a, b)
    }

    /// Build logical request number `self.issued` for `client`.
    fn make_request(&mut self, client: usize) -> Pending {
        let ordinal = self.issued as usize;
        let id = self.next_id;
        self.next_id += 1;
        let tenant = format!("t{}", self.draw(ordinal, 1) % self.cfg.tenants.max(1) as u64);
        let alpha = [0.9, 0.95, 0.99, 0.999][(self.draw(ordinal, 2) % 4) as usize];
        let replan = (self.draw(ordinal, 3) % 100) < u64::from(self.cfg.replan_pct);
        // Budgets: mostly unconstrained, a slice too tight for a cold
        // 5-stage solve (2), a slice that only just fits (5).
        let deadline_budget = [0, 0, 0, 2, 5, 8][(self.draw(ordinal, 4) % 6) as usize];
        let kind = if replan {
            RequestKind::Replan {
                append: 1 + (self.draw(ordinal, 5) % 3) as u32,
                alpha,
            }
        } else {
            RequestKind::Plan { alpha }
        };
        Pending {
            req: Request { id, tenant, deadline_budget, kind },
            client,
            first_issued: 0, // stamped at dispatch
            attempt: 0,
        }
    }

    /// Admission: coalesce, start, queue, or shed.
    fn dispatch(&mut self, mut pending: Pending, now: u64) {
        if pending.attempt == 0 && pending.first_issued == 0 {
            pending.first_issued = now;
        }
        let key = self.service.work_key(&pending.req);
        if matches!(pending.req.kind, RequestKind::Plan { .. }) {
            if let Some(followers) = self.inflight.get_mut(&key) {
                followers.push(pending);
                self.coalesced += 1;
                self.service.record_coalesced();
                return;
            }
        }
        self.inflight.insert(key, Vec::new());
        if let Some(worker) = self.workers.iter().position(Option::is_none) {
            self.start(worker, key, pending, now);
            return;
        }
        match self.queue.offer(QueuedItem { key, pending }) {
            Admission::Queued { .. } => {}
            Admission::Shed { item, queue_depth: _ } => {
                self.inflight.remove(&key);
                self.shed_pending(item.pending, now);
            }
        }
    }

    fn shed_pending(&mut self, pending: Pending, now: u64) {
        self.shed_events += 1;
        self.service.record_outcome("shed");
        let next_retry = pending.attempt + 1;
        if self.cfg.retry.may_attempt(next_retry) {
            self.retries += 1;
            self.service.record_retry("shed");
            let delay = self.cfg.retry.backoff_delay(pending.req.id, next_retry);
            let pending = Pending { attempt: next_retry, ..pending };
            self.schedule(now + delay, Event::Redispatch { pending });
        } else {
            self.outcomes.shed += 1;
            self.finish_client(pending.client, pending.first_issued, now);
        }
    }

    /// Start executing `pending` on `worker` at `now`.
    fn start(&mut self, worker: usize, key: u64, pending: Pending, now: u64) {
        let nodes = self.cfg.service.nodes.max(1);
        let node = (self.start_ordinal % nodes as u64) as usize;
        self.start_ordinal += 1;
        let mut stall = false;
        if self.cfg.chaos {
            if self.stall_budget[node] > 0 {
                self.stall_budget[node] -= 1;
                self.stalls_injected += 1;
                stall = true;
            } else if self.crash_budget[node] {
                self.crash_budget[node] = false;
                self.crashes_injected += 1;
                stall = true;
            }
        }
        let response = self.service.handle(&pending.req, now, stall);
        let duration = match &response {
            Response::Served { degraded: false, .. } => {
                6 + self.draw(pending.req.id as usize, 401) % 6
            }
            Response::Served { degraded: true, .. } => {
                2 + self.draw(pending.req.id as usize, 402) % 2
            }
            _ => 1 + self.draw(pending.req.id as usize, 403) % 2,
        };
        self.workers[worker] = Some(Running { key, leader: pending, response });
        self.schedule(now + duration, Event::Complete { worker });
    }

    /// Record a terminal response for one logical request.
    fn terminal(&mut self, pending: &Pending, response: &Response, now: u64) {
        match response {
            Response::Served { degraded, sizes, digest, source_digest, .. } => {
                if *degraded {
                    self.outcomes.degraded += 1;
                    if *source_digest == 0 {
                        self.violations += 1;
                    }
                } else {
                    self.outcomes.served += 1;
                    if digest != source_digest {
                        self.violations += 1;
                    }
                }
                if sizes.is_empty() || sizes.iter().all(|&s| s == 0) {
                    self.violations += 1;
                }
            }
            Response::Error { kind, .. } => {
                self.outcomes.error += 1;
                *self.errors.entry(kind.label()).or_insert(0) += 1;
            }
            Response::Shed { .. } => {
                // Shed is terminal only through shed_pending.
                self.violations += 1;
            }
        }
        self.finish_client(pending.client, pending.first_issued, now);
    }

    /// Record latency and put the client back into its think loop.
    fn finish_client(&mut self, client: usize, first_issued: u64, now: u64) {
        self.latencies.push(now.saturating_sub(first_issued));
        let turn = self.client_turns[client];
        self.client_turns[client] += 1;
        let think = 1 + self.draw(client, 1000 + turn) % self.cfg.think_max.max(1);
        self.schedule(now + think, Event::Issue { client });
    }

    fn step(&mut self, at: u64, event: Event) {
        match event {
            Event::Issue { client } => {
                if (self.issued as usize) < self.cfg.requests {
                    let pending = self.make_request(client);
                    self.issued += 1;
                    self.dispatch(pending, at);
                }
                // Otherwise the client retires: no further events.
            }
            Event::Redispatch { pending } => self.dispatch(pending, at),
            Event::Complete { worker } => {
                let Some(run) = self.workers[worker].take() else {
                    self.violations += 1;
                    return;
                };
                let followers = self.inflight.remove(&run.key).unwrap_or_default();
                self.terminal(&run.leader, &run.response, at);
                for f in followers {
                    // The leader's answer, re-stamped: same plan, the
                    // follower's own correlation id and outcome slot.
                    match &run.response {
                        Response::Served { degraded, .. } => self.service.record_outcome(
                            if *degraded { "degraded" } else { "served" },
                        ),
                        Response::Error { .. } => self.service.record_outcome("error"),
                        Response::Shed { .. } => self.service.record_outcome("shed"),
                    }
                    self.terminal(&f, &run.response, at);
                }
                if let Some(item) = self.queue.pop() {
                    self.start(worker, item.key, item.pending, at);
                }
            }
        }
    }

    fn percentile(sorted: &[u64], pct: u64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let idx = ((sorted.len() as u64 - 1) * pct) / 100;
        sorted[idx as usize]
    }

    fn report(mut self) -> SoakReport {
        // Drain invariants: nothing queued, nothing running, nothing
        // coalesced-but-unanswered, every issued request terminal.
        if !self.queue.is_empty()
            || self.workers.iter().any(Option::is_some)
            || !self.inflight.is_empty()
        {
            self.violations += 1;
        }
        if self.outcomes.total() != self.issued {
            self.violations += 1;
        }
        self.latencies.sort_unstable();
        let p50 = Self::percentile(&self.latencies, 50);
        let p99 = Self::percentile(&self.latencies, 99);
        let max = self.latencies.last().copied().unwrap_or(0);

        let stats = self.service.cache().stats();
        let (mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64);
        for (_, kind, count) in stats.events() {
            match kind {
                "hit" => hits += count,
                "miss" => misses += count,
                "evict" => evictions += count,
                _ => {}
            }
        }
        let hit_rate = hits as f64 / (hits + misses).max(1) as f64;

        let errors = Value::Obj(
            self.errors
                .iter()
                .map(|(k, v)| ((*k).to_string(), Value::Num(*v as f64)))
                .collect(),
        );
        let doc = Value::obj(vec![
            (
                "config",
                Value::obj(vec![
                    ("seed", Value::Num(self.cfg.service.seed as f64)),
                    ("requests", Value::Num(self.cfg.requests as f64)),
                    ("tenants", Value::Num(self.cfg.tenants as f64)),
                    ("clients", Value::Num(self.cfg.clients as f64)),
                    ("sim_workers", Value::Num(self.cfg.sim_workers as f64)),
                    (
                        "queue_capacity",
                        Value::Num(self.cfg.service.queue_capacity as f64),
                    ),
                    ("chaos", Value::Bool(self.cfg.chaos)),
                    ("replan_pct", Value::Num(f64::from(self.cfg.replan_pct))),
                ]),
            ),
            (
                "outcomes",
                Value::obj(vec![
                    ("served", Value::Num(self.outcomes.served as f64)),
                    ("degraded", Value::Num(self.outcomes.degraded as f64)),
                    ("shed", Value::Num(self.outcomes.shed as f64)),
                    ("error", Value::Num(self.outcomes.error as f64)),
                ]),
            ),
            ("errors", errors),
            (
                "events",
                Value::obj(vec![
                    ("shed_events", Value::Num(self.shed_events as f64)),
                    ("retries", Value::Num(self.retries as f64)),
                    ("coalesced", Value::Num(self.coalesced as f64)),
                    ("stalls_injected", Value::Num(self.stalls_injected as f64)),
                    ("crashes_injected", Value::Num(self.crashes_injected as f64)),
                ]),
            ),
            (
                "latency_ticks",
                Value::obj(vec![
                    ("p50", Value::Num(p50 as f64)),
                    ("p99", Value::Num(p99 as f64)),
                    ("max", Value::Num(max as f64)),
                ]),
            ),
            (
                "cache",
                Value::obj(vec![
                    ("hits", Value::Num(hits as f64)),
                    ("misses", Value::Num(misses as f64)),
                    ("evictions", Value::Num(evictions as f64)),
                    ("hit_rate", Value::Num(hit_rate)),
                ]),
            ),
            (
                "audit",
                Value::obj(vec![
                    ("issued", Value::Num(self.issued as f64)),
                    ("terminal", Value::Num(self.outcomes.total() as f64)),
                    ("violations", Value::Num(self.violations as f64)),
                ]),
            ),
        ]);
        SoakReport {
            json: doc.to_json(),
            outcomes: self.outcomes,
            issued: self.issued,
            shed_events: self.shed_events,
            retries: self.retries,
            coalesced: self.coalesced,
            stalls_injected: self.stalls_injected,
            crashes_injected: self.crashes_injected,
            audit_violations: self.violations,
            cache_hits: hits,
            cache_misses: misses,
            cache_evictions: evictions,
            latency_p50: p50,
            latency_p99: p99,
        }
    }
}

/// Run the soak to completion. `telemetry` is observational only: the
/// report is built from the simulation's own bookkeeping and the shared
/// cache, so attaching or detaching a recorder never changes a byte of
/// the summary (the inertness suite pins this).
pub fn run_soak(cfg: SoakConfig, telemetry: Option<Arc<Telemetry>>) -> SoakReport {
    let mut sim = Sim::new(cfg, telemetry);
    // Stagger the closed-loop clients over the first think window.
    for client in 0..sim.cfg.clients.max(1) {
        let at = 1 + sim.draw(client, 0) % sim.cfg.think_max.max(1);
        sim.schedule(at, Event::Issue { client });
    }
    while let Some((&(at, seq), _)) = sim.events.iter().next() {
        let event = sim.events.remove(&(at, seq)).expect("event just observed");
        sim.step(at, event);
    }
    sim.report()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SoakConfig {
        SoakConfig {
            requests: 60,
            tenants: 2,
            clients: 6,
            ..SoakConfig::default()
        }
    }

    #[test]
    fn soak_is_deterministic() {
        let a = run_soak(tiny(), None);
        let b = run_soak(tiny(), None);
        assert_eq!(a.json, b.json);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn every_request_is_terminal_exactly_once() {
        let r = run_soak(tiny(), None);
        assert_eq!(r.issued, 60);
        assert_eq!(r.outcomes.total(), r.issued);
        assert_eq!(r.audit_violations, 0);
    }

    #[test]
    fn overload_sheds_and_chaos_stalls() {
        let cfg = SoakConfig {
            requests: 120,
            clients: 16,
            sim_workers: 1,
            service: ServiceConfig {
                queue_capacity: 2,
                dataset_scale: 0.01,
                ..ServiceConfig::default()
            },
            ..SoakConfig::default()
        };
        let r = run_soak(cfg, None);
        assert!(r.shed_events > 0, "overload must shed");
        assert!(r.stalls_injected > 0, "serving chaos must stall");
        assert_eq!(r.audit_violations, 0);
    }
}
