//! Plan-serving daemon for the Pareto framework.
//!
//! Turns the planning engine into a multi-tenant *service*: clients
//! submit plan/replan requests (length-prefixed frames over TCP or an
//! in-process channel — one codec for both), a bounded worker pool
//! executes them through per-tenant warm [`pareto_core::PlanSession`]s
//! over one fleet-wide shared artifact cache, and a resilience core
//! keeps tail behavior typed and bounded:
//!
//! * **Admission control** ([`admission`]) — a bounded queue that sheds
//!   deterministically with a typed [`proto::Response::Shed`]; a full
//!   server never hangs a client.
//! * **Deadlines** — cooperative cancellation checkpoints between
//!   planning stages ([`pareto_core::Deadline`]); an expired request
//!   returns a typed error but keeps its completed stage artifacts
//!   cached for the next attempt.
//! * **Retry/backoff** ([`retry`]) — client-side seeded exponential
//!   backoff with deterministic jitter.
//! * **Circuit breaking** ([`breaker`]) — per-tenant, tripping after K
//!   consecutive solver failures; open breakers skip the solver
//!   entirely.
//! * **Graceful degradation** ([`server`]) — breaker open or deadline
//!   unmeetable ⇒ the freshest cached plan, flagged `degraded: true`
//!   with the digest it was computed over.
//! * **Coalescing** ([`admission::Coalescer`]) — concurrent identical
//!   requests fold into one solve.
//!
//! The [`soak`] module replays thousands of seeded mixed requests —
//! including injected solver stalls and overload — through the same
//! service core in simulated time, so its latency/outcome summary is
//! bit-identical run to run and across planning thread counts (CI diffs
//! the JSON byte-for-byte).

pub mod admission;
pub mod breaker;
pub mod codec;
pub mod proto;
pub mod retry;
pub mod server;
pub mod soak;

pub use admission::{Admission, BoundedQueue, CoalesceRole, Coalescer};
pub use breaker::{Breaker, BreakerState, Transition};
pub use codec::{decode_frame, encode_frame, CodecError, MAX_FRAME};
pub use proto::{ErrorKind, Request, RequestKind, Response};
pub use retry::RetryPolicy;
pub use server::{PlanService, Server, ServiceConfig, TcpClient};
pub use soak::{run_soak, SoakConfig, SoakReport};
