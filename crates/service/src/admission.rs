//! Admission control: a bounded queue with deterministic load-shedding,
//! plus the request coalescer.
//!
//! Both structures are pure state machines over caller-held locks — no
//! threads, no clocks — so the deterministic soak harness and the live
//! thread-pool server share them verbatim. The live server wraps
//! [`BoundedQueue`] in a `Mutex`/`Condvar` pair ([`crate::server`]); the
//! soak harness drives it from its single-threaded event loop.
//!
//! Shedding is *synchronous and typed*: `offer` on a full queue returns
//! [`Admission::Shed`] immediately — the caller answers the client with
//! a [`crate::proto::Response::Shed`] right away. A client can always
//! distinguish "rejected under load" from "still waiting"; nothing ever
//! hangs on a full queue.

use std::collections::{BTreeMap, VecDeque};

/// Outcome of offering a request to the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission<T> {
    /// Enqueued; position is the depth at admission (0 = next to run).
    Queued {
        /// Queue depth before this item was appended.
        position: usize,
    },
    /// Rejected: the queue was at capacity. The item comes back so the
    /// caller can answer its client with a typed shed.
    Shed {
        /// The rejected item.
        item: T,
        /// The capacity (== observed depth) at rejection.
        queue_depth: usize,
    },
}

/// A capacity-bounded FIFO.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    /// Total items ever admitted.
    pub admitted: u64,
    /// Total offers rejected.
    pub shed: u64,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items (floored to 1:
    /// a zero-capacity queue would shed every request unconditionally,
    /// which is a misconfiguration, not a policy).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            items: VecDeque::new(),
            capacity: capacity.max(1),
            admitted: 0,
            shed: 0,
        }
    }

    /// Offer an item: enqueue or shed, never block.
    pub fn offer(&mut self, item: T) -> Admission<T> {
        if self.items.len() >= self.capacity {
            self.shed += 1;
            return Admission::Shed { item, queue_depth: self.items.len() };
        }
        let position = self.items.len();
        self.items.push_back(item);
        self.admitted += 1;
        Admission::Queued { position }
    }

    /// Dequeue the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Role assigned to a request by the coalescer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalesceRole {
    /// First request for this work key: runs the computation.
    Leader,
    /// Identical work is already in flight: this request waits for the
    /// leader's result instead of computing.
    Follower,
}

/// Folds concurrent identical requests into one computation.
///
/// The work key is a fingerprint of everything that determines the
/// answer — tenant, dataset digest, α, request kind — computed by the
/// server. The first arrival becomes the [`CoalesceRole::Leader`];
/// later arrivals while the leader is in flight become followers and are
/// answered with the leader's response (re-stamped with their own ids).
#[derive(Debug, Default)]
pub struct Coalescer {
    inflight: BTreeMap<u64, Vec<u64>>,
    /// Total requests that attached as followers.
    pub coalesced: u64,
}

impl Coalescer {
    /// Fresh coalescer with nothing in flight.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register request `id` for work `key`.
    pub fn attach(&mut self, key: u64, id: u64) -> CoalesceRole {
        match self.inflight.get_mut(&key) {
            None => {
                self.inflight.insert(key, Vec::new());
                CoalesceRole::Leader
            }
            Some(followers) => {
                followers.push(id);
                self.coalesced += 1;
                CoalesceRole::Follower
            }
        }
    }

    /// The leader for `key` finished: returns the follower request ids
    /// to answer (in attach order) and retires the key.
    pub fn complete(&mut self, key: u64) -> Vec<u64> {
        self.inflight.remove(&key).unwrap_or_default()
    }

    /// Number of distinct work keys currently in flight.
    pub fn inflight_keys(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_sheds_at_capacity_and_recovers() {
        let mut q = BoundedQueue::new(2);
        assert_eq!(q.offer('a'), Admission::Queued { position: 0 });
        assert_eq!(q.offer('b'), Admission::Queued { position: 1 });
        // The shed item comes back to the caller.
        assert_eq!(q.offer('c'), Admission::Shed { item: 'c', queue_depth: 2 });
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.offer('d'), Admission::Queued { position: 1 });
        assert_eq!(q.admitted, 3);
        assert_eq!(q.shed, 1);
    }

    #[test]
    fn zero_capacity_floors_to_one() {
        let mut q = BoundedQueue::new(0);
        assert_eq!(q.offer(1), Admission::Queued { position: 0 });
        assert_eq!(q.offer(2), Admission::Shed { item: 2, queue_depth: 1 });
    }

    #[test]
    fn coalescer_folds_concurrent_identical_work() {
        let mut c = Coalescer::new();
        assert_eq!(c.attach(0xAA, 1), CoalesceRole::Leader);
        assert_eq!(c.attach(0xAA, 2), CoalesceRole::Follower);
        assert_eq!(c.attach(0xAA, 3), CoalesceRole::Follower);
        // A different key is independent work.
        assert_eq!(c.attach(0xBB, 4), CoalesceRole::Leader);
        assert_eq!(c.complete(0xAA), vec![2, 3]);
        assert_eq!(c.coalesced, 2);
        // Key retired: the next arrival leads again.
        assert_eq!(c.attach(0xAA, 5), CoalesceRole::Leader);
        assert_eq!(c.complete(0xBB), Vec::<u64>::new());
    }
}
