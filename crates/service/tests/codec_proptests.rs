//! Wire-codec robustness: arbitrary mutilation of frames and payloads
//! must produce typed [`CodecError`]s — never a panic, never a bogus
//! decode — and every well-formed message must round-trip
//! byte-identically.

use pareto_service::codec::{decode_frame, encode_frame, CodecError, HEADER_LEN, MAGIC};
use pareto_service::proto::{ErrorKind, Request, RequestKind, Response};
use proptest::prelude::*;

fn request_from(id: u64, tenant_sel: u8, budget: u64, alpha_sel: u8, replan: bool) -> Request {
    let tenant = match tenant_sel % 4 {
        0 => String::new(),
        1 => "t0".to_string(),
        2 => "tenant-with-a-much-longer-name".to_string(),
        _ => "ünïcödé".to_string(),
    };
    let alpha = [0.0, 0.5, 0.999, 1.0][(alpha_sel % 4) as usize];
    let kind = if replan {
        RequestKind::Replan { append: u32::from(tenant_sel), alpha }
    } else {
        RequestKind::Plan { alpha }
    };
    Request { id, tenant, deadline_budget: budget, kind }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// Requests round-trip bit-exactly through payload + frame encoding.
    #[test]
    fn request_round_trips_byte_identically(
        id in any::<u64>(),
        tenant_sel in any::<u8>(),
        budget in 0u64..32,
        alpha_sel in any::<u8>(),
        replan in any::<bool>(),
    ) {
        let req = request_from(id, tenant_sel, budget, alpha_sel, replan);
        let payload = req.encode().unwrap();
        let frame = encode_frame(&payload).unwrap();
        let (decoded_payload, consumed) = decode_frame(&frame).unwrap();
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(decoded_payload, &payload[..]);
        let back = Request::decode(decoded_payload).unwrap();
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(back.encode().unwrap(), payload);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// Responses round-trip bit-exactly, including float bit patterns
    /// and the degraded/source-digest pair.
    #[test]
    fn response_round_trips_byte_identically(
        id in any::<u64>(),
        digest in any::<u64>(),
        n_sizes in 0usize..6,
        makespan_bits in any::<u64>(),
        degraded in any::<bool>(),
        variant in 0u8..3,
    ) {
        let makespan = f64::from_bits(makespan_bits % (1u64 << 62));
        let resp = match variant {
            0 => Response::Served {
                id,
                digest,
                sizes: (0..n_sizes as u32).map(|i| i * 7 + 1).collect(),
                makespan_s: makespan,
                degraded,
                source_digest: digest ^ 0xFF,
            },
            1 => Response::Shed { id, queue_depth: (digest % 1024) as u32 },
            _ => Response::Error {
                id,
                kind: [ErrorKind::DeadlineExceeded, ErrorKind::BreakerOpen,
                       ErrorKind::SolverFailed, ErrorKind::InvalidRequest]
                    [(digest % 4) as usize],
                detail: format!("detail-{id}"),
            },
        };
        let payload = resp.encode().unwrap();
        let back = Response::decode(&payload).unwrap();
        prop_assert_eq!(&back, &resp);
        prop_assert_eq!(back.encode().unwrap(), payload);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    /// Truncating a valid frame at ANY byte yields `Truncated` (a
    /// streaming reader keeps waiting), never a panic or a wrong decode.
    #[test]
    fn torn_frames_are_always_truncated_errors(
        id in any::<u64>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let req = request_from(id, 2, 5, 1, false);
        let frame = encode_frame(&req.encode().unwrap()).unwrap();
        let cut = ((frame.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < frame.len());
        match decode_frame(&frame[..cut]) {
            Err(CodecError::Truncated { needed, have }) => {
                prop_assert_eq!(have, cut);
                prop_assert!(needed > cut);
            }
            other => prop_assert!(false, "cut {} gave {:?}", cut, other),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    /// Flipping any single byte of a frame either still decodes (the
    /// flip landed in a don't-care payload position and re-validates)
    /// or produces a typed error — it NEVER panics.
    #[test]
    fn mutated_frames_never_panic(
        id in any::<u64>(),
        flip_frac in 0.0f64..1.0,
        flip_bits in 1u8..=255,
    ) {
        let req = request_from(id, 1, 3, 2, true);
        let mut frame = encode_frame(&req.encode().unwrap()).unwrap();
        let pos = ((frame.len() as f64) * flip_frac) as usize % frame.len();
        frame[pos] ^= flip_bits;
        // Must return *something* typed without panicking; if it still
        // frames, request decoding must likewise not panic.
        if let Ok((payload, _)) = decode_frame(&frame) {
            let _ = Request::decode(payload);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    /// Pure garbage bytes never decode to a frame unless they happen to
    /// start with the magic — and even then only with a plausible
    /// bounded length.
    #[test]
    fn random_bytes_never_panic_the_decoder(
        len in 0usize..64,
        seed in any::<u64>(),
    ) {
        let bytes: Vec<u8> = (0..len)
            .map(|i| (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (8 * (i % 8))) as u8)
            .collect();
        if let Ok((payload, consumed)) = decode_frame(&bytes) {
            // Anything that frames must be internally consistent.
            prop_assert!(consumed <= bytes.len());
            prop_assert_eq!(&bytes[..4], &MAGIC[..]);
            prop_assert_eq!(consumed, HEADER_LEN + payload.len());
            let _ = Request::decode(payload);
            let _ = Response::decode(payload);
        }
    }
}

#[test]
fn oversized_declared_length_is_rejected_without_allocation() {
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(pareto_service::MAX_FRAME as u32 + 1).to_be_bytes());
    frame.extend_from_slice(&[0u8; 16]);
    assert!(matches!(
        decode_frame(&frame),
        Err(CodecError::Oversized { .. })
    ));
}
